"""Discrete-event simulation engine.

A minimal execution-driven core in the spirit of the user-level
simulators the paper targets (zsim, Graphite): a virtual clock and an
event heap. Components schedule callbacks; :meth:`Engine.run` executes
them in timestamp order, advancing the shared
:class:`~repro.core.clock.VirtualClock` — which is exactly the clock
the harness components read, so harness logic is unchanged between
live and simulated runs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.clock import VirtualClock
from .events import Event, EventQueue

__all__ = ["Engine"]


class Engine:
    """Runs events against a virtual clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self._queue = EventQueue()
        self._executed = 0

    @property
    def now(self) -> float:
        return self.clock.now()

    @property
    def executed_events(self) -> int:
        return self._executed

    def at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self._queue.push(max(time, self.now), fn, *args)

    def after(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._queue.push(self.now + delay, fn, *args)

    def cancel(self, event: Event) -> None:
        event.cancelled = True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> int:
        """Process events until the queue drains (or ``until``).

        Returns the number of events executed by this call.
        """
        executed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                break
            event = self._queue.pop()
            self.clock.advance_to(event.time)
            event.fn(*event.args)
            executed += 1
            self._executed += 1
            if executed > max_events:
                raise RuntimeError("event budget exhausted (runaway simulation?)")
        return executed

"""Service-time models for simulation.

A :class:`ServiceTimeModel` answers one question: how long does the
next request occupy a worker? Three sources are supported:

- fitted analytic distributions (the calibrated paper profiles);
- empirical profiles captured by timing the live Python mini-apps;
- any :class:`repro.stats.Distribution`.

Dilation factors (contention, simulator speed error, network stack
occupancy) compose multiplicatively/additively around the base draw.
"""

from __future__ import annotations

import random
from typing import List

from ..stats import Distribution, Empirical

__all__ = ["ServiceTimeModel", "profile_application"]


class ServiceTimeModel:
    """Draws per-request service times with optional dilation.

    Parameters
    ----------
    base:
        Base service-time distribution (seconds).
    scale:
        Multiplicative dilation (contention x simulator error).
    added:
        Additive per-request occupancy (network-stack server cost).
    """

    def __init__(
        self, base: Distribution, scale: float = 1.0, added: float = 0.0
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if added < 0:
            raise ValueError("added must be non-negative")
        self.base = base
        self.scale = scale
        self.added = added

    def sample(self, rng: random.Random) -> float:
        return self.base.sample(rng) * self.scale + self.added

    @property
    def mean(self) -> float:
        return self.base.mean * self.scale + self.added

    @property
    def variance(self) -> float:
        return self.base.variance * self.scale ** 2

    @property
    def second_moment(self) -> float:
        return self.variance + self.mean ** 2

    def saturation_qps(self, n_threads: int = 1) -> float:
        """Arrival rate at which ``n_threads`` workers reach 100% load."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return n_threads / self.mean

    def with_dilation(self, scale: float = 1.0, added: float = 0.0) -> "ServiceTimeModel":
        """Compose additional dilation onto this model."""
        return ServiceTimeModel(
            self.base, self.scale * scale, self.added + added
        )

    def __repr__(self) -> str:
        return (
            f"ServiceTimeModel({self.base!r}, scale={self.scale:g}, "
            f"added={self.added:g})"
        )


def profile_application(
    app,
    n_requests: int = 200,
    seed: int = 0,
    clock=None,
) -> Empirical:
    """Measure a live app's service-time distribution (Fig. 2 data).

    Runs ``n_requests`` requests back-to-back (no queueing — pure
    service time) against the already-set-up application and returns
    an :class:`Empirical` distribution of the observed times. The
    result can seed a :class:`ServiceTimeModel`, bridging live mode
    and virtual-time mode.
    """
    import time as _time

    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    client = app.make_client(seed=seed)
    now = clock.now if clock is not None else _time.perf_counter
    samples: List[float] = []
    for _ in range(n_requests):
        payload = client.next_request()
        start = now()
        app.process(payload)
        samples.append(now() - start)
    return Empirical(samples)

"""Per-application profiles calibrated to the paper.

Each :class:`AppProfile` bundles what the simulator needs to reproduce
an application's latency behaviour:

- a service-time distribution whose mean matches the integrated-
  configuration saturation rate (Fig. 5 x-axes) and whose shape
  matches the service-time CDF of Fig. 2;
- a contention model for the multithreaded anomalies of Fig. 4 /
  Sec. VII;
- the zsim-style constant performance error of the simulated system
  (the red percentage annotations of Fig. 5 — the simulated system is
  *faster* than the real one for most applications, by a roughly
  constant factor).

These profiles encode the paper's published numbers, not our Python
mini-apps' wall-clock speeds; :func:`repro.sim.service_models.
profile_application` builds profiles from live measurements instead
when measured behaviour is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..stats import Distribution, LogNormal, MixtureDistribution
from .contention import ContentionModel, NO_CONTENTION
from .service_models import ServiceTimeModel

__all__ = [
    "AppProfile",
    "EXTENSION_PROFILES",
    "PAPER_PROFILES",
    "paper_profile",
]


@dataclass(frozen=True)
class AppProfile:
    """Everything the simulator knows about one application."""

    name: str
    service: Distribution
    contention: ContentionModel = NO_CONTENTION
    #: Simulated-system speed: simulated service time = real * sim_speed.
    #: < 1 means the simulated system is faster (most apps, Fig. 5).
    sim_speed: float = 1.0
    notes: str = ""

    def __post_init__(self) -> None:
        if self.sim_speed <= 0:
            raise ValueError("sim_speed must be positive")

    def service_model(
        self,
        n_threads: int = 1,
        ideal_memory: bool = False,
        simulated_system: bool = False,
        added_occupancy: float = 0.0,
    ) -> ServiceTimeModel:
        """Compose the effective per-request service-time model."""
        scale = self.contention.factor(n_threads, ideal_memory=ideal_memory)
        if simulated_system:
            scale *= self.sim_speed
        return ServiceTimeModel(self.service, scale=scale, added=added_occupancy)


PAPER_PROFILES: Dict[str, AppProfile] = {
    "xapian": AppProfile(
        name="xapian",
        service=LogNormal(mean=800e-6, sigma=0.85),
        contention=ContentionModel(mem_alpha=0.02),
        sim_speed=1.0 / 1.10,
        notes="Broad service times, 200us-2.7ms (Fig. 2); scales well "
        "with threads (Fig. 4); 10% simulation error (Fig. 5).",
    ),
    "masstree": AppProfile(
        name="masstree",
        service=LogNormal(mean=190e-6, sigma=0.25),
        contention=ContentionModel(mem_alpha=0.01),
        sim_speed=1.0 / 1.16,
        notes="Nearly constant service times (Fig. 2); near-ideal "
        "thread scaling (Fig. 4).",
    ),
    "moses": AppProfile(
        name="moses",
        service=LogNormal(mean=1.5e-3, sigma=0.45),
        contention=ContentionModel(mem_alpha=0.10, mem_exponent=2.0),
        sim_speed=1.0 / 1.20,
        notes="Memory-bound: fine at 2 threads, collapses at 4 "
        "(Fig. 4); ideal memory recovers M/G/4 behaviour (Fig. 8).",
    ),
    "sphinx": AppProfile(
        name="sphinx",
        service=LogNormal(mean=0.7, sigma=0.55),
        sim_speed=1.0 / 1.16,
        notes="Seconds-scale, highly variable service times (Fig. 2).",
    ),
    "img-dnn": AppProfile(
        name="img-dnn",
        service=LogNormal(mean=1.25e-3, sigma=0.2),
        sim_speed=1.0 / 1.31,
        notes="Fixed-size DNN pipeline: near-constant service times; "
        "largest simulation error in the suite (31%, Fig. 5/6).",
    ),
    "specjbb": AppProfile(
        name="specjbb",
        service=MixtureDistribution(
            [
                (0.95, LogNormal(mean=31e-6, sigma=0.4)),
                (0.05, LogNormal(mean=200e-6, sigma=0.6)),
            ]
        ),
        contention=ContentionModel(sync_alpha=0.02),
        notes="Sub-100us requests with a long tail (Fig. 2); networked/"
        "loopback saturate 23% below integrated (Fig. 5).",
    ),
    "silo": AppProfile(
        name="silo",
        service=MixtureDistribution(
            [
                (0.98, LogNormal(mean=15e-6, sigma=0.55)),
                (0.02, LogNormal(mean=280e-6, sigma=0.95)),
            ]
        ),
        contention=ContentionModel(sync_alpha=0.12),
        notes="Shortest requests in the suite, with a rare long-"
        "transaction tail (delivery); synchronization-bound thread "
        "scaling (Fig. 4/8); networked saturates 39% below integrated "
        "(Fig. 5).",
    ),
    "shore": AppProfile(
        name="shore",
        service=MixtureDistribution(
            [
                (0.90, LogNormal(mean=330e-6, sigma=0.45)),
                (0.10, LogNormal(mean=1.5e-3, sigma=0.55)),
            ]
        ),
        sim_speed=1.0 / 1.32,
        notes="Narrow body plus buffer-miss long tail (Fig. 2); 32% "
        "simulation error (Fig. 5/6).",
    ),
}


#: Profiles for suite extensions (apps beyond the paper's eight).
#: These are calibrated to our mini-apps' measured behaviour rather
#: than to published figures, and live in a separate dict so that
#: ``PAPER_PROFILES`` keeps its "exactly the paper's applications"
#: contract.
EXTENSION_PROFILES: Dict[str, AppProfile] = {
    "vsearch": AppProfile(
        name="vsearch",
        # IVF probe cost scales with nprobe x probed-list length; the
        # Zipf-skewed query mix over uneven cluster sizes yields a
        # moderately broad lognormal body (measured on the default
        # VsearchApp(n_vectors=4096, nprobe=4) configuration).
        service=LogNormal(mean=300e-6, sigma=0.45),
        contention=ContentionModel(mem_alpha=0.03),
        notes="Sharded IVF vector search (extension): service time "
        "proportional to probed posting-list mass; leaf distribution "
        "used by fig-fanout's simulated scatter-gather arm.",
    ),
}


def paper_profile(name: str) -> AppProfile:
    """Look up the calibrated profile for an application.

    Paper applications resolve from :data:`PAPER_PROFILES`; suite
    extensions (currently ``vsearch``) from :data:`EXTENSION_PROFILES`.
    """
    try:
        return PAPER_PROFILES[name]
    except KeyError:
        pass
    try:
        return EXTENSION_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"no calibrated profile for {name!r}; known: "
            f"{sorted({**PAPER_PROFILES, **EXTENSION_PROFILES})}"
        ) from None

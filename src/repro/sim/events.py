"""Event heap for the discrete-event engine."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback; compare by (time, sequence)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: Tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Min-heap of events with stable FIFO ordering at equal times."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, fn: Callable, *args: Any) -> Event:
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

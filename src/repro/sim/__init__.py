"""Discrete-event simulation substrate (virtual-time load testing).

The paper's integrated harness configuration exists so tail latency
can be measured *in simulation* (Sec. IV-B, VI). This package is that
simulation path: a discrete-event engine driving the same open-loop
methodology against calibrated or measured service-time models, with
network-configuration and multithread-contention effects modelled
explicitly.
"""

from .calibration import (
    EXTENSION_PROFILES,
    PAPER_PROFILES,
    AppProfile,
    paper_profile,
)
from .colocation import BatchColocation, max_safe_batch_share, simulate_colocated
from .contention import NO_CONTENTION, ContentionModel
from .dispatch import (
    compare_dispatch,
    simulate_dispatch,
    simulate_random_dispatch,
)
from .engine import Engine
from .events import Event, EventQueue
from .latency_sim import SimConfig, SimResult, simulate_app, simulate_load
from .network_model import NETWORK_MODELS, NetworkModel, network_model_for
from .server_model import SimulatedServer
from .service_models import ServiceTimeModel, profile_application

__all__ = [
    "EXTENSION_PROFILES",
    "PAPER_PROFILES",
    "AppProfile",
    "paper_profile",
    "BatchColocation",
    "max_safe_batch_share",
    "simulate_colocated",
    "NO_CONTENTION",
    "ContentionModel",
    "compare_dispatch",
    "simulate_dispatch",
    "simulate_random_dispatch",
    "Engine",
    "Event",
    "EventQueue",
    "SimConfig",
    "SimResult",
    "simulate_app",
    "simulate_load",
    "NETWORK_MODELS",
    "NetworkModel",
    "network_model_for",
    "SimulatedServer",
    "ServiceTimeModel",
    "profile_application",
]

"""Request-dispatch policies: why the harness uses one shared queue.

TailBench's server keeps a single request queue shared among all
worker threads (Fig. 1). The alternative — statically partitioning
arrivals across per-worker queues — is common in real servers
(per-connection handling, RSS hashing) and much worse for tails: a
random dispatch can pile requests behind one busy worker while others
idle. This module provides the per-worker-queue server so the two
designs can be compared under identical load.

The partitioned server's dispatch decision is pluggable: any policy
from :mod:`repro.core.balancer` (round-robin, random, power-of-two,
join-shortest-queue) can steer arrivals across the per-worker queues,
quantifying how much smarter dispatch recovers of the shared queue's
tail advantage.
"""

from __future__ import annotations

import collections
import random
from typing import List, Optional, Sequence

from ..core.balancer import LoadBalancer, make_balancer
from ..core.collector import StatsCollector
from ..core.request import Request
from ..core.traffic import ArrivalSchedule, PoissonArrivals
from .calibration import AppProfile
from .engine import Engine
from .latency_sim import SimConfig, SimResult, simulate_load
from .network_model import network_model_for

__all__ = ["simulate_dispatch", "simulate_random_dispatch", "compare_dispatch"]


class _PartitionedServer:
    """n workers, each with its own FIFO, under a dispatch policy.

    ``balancer=None`` selects the legacy uniform-random dispatch: the
    worker is drawn at submit time from the same stream that samples
    service times, which keeps pre-existing random-dispatch runs
    byte-identical. Depth-aware policies instead decide *at the arrival
    instant*, when the per-worker depth vector reflects the simulated
    present.
    """

    def __init__(
        self,
        engine: Engine,
        service_model,
        n_threads: int,
        collector: StatsCollector,
        rng: random.Random,
        balancer: Optional[LoadBalancer] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._engine = engine
        self._service_model = service_model
        self._collector = collector
        self._rng = rng
        self._balancer = balancer
        self._queues: List[collections.deque] = [
            collections.deque() for _ in range(n_threads)
        ]
        self._busy = [False] * n_threads
        self.busy_time = 0.0
        self.dispatched = [0] * n_threads

    def depths(self) -> List[int]:
        """Queued plus in-service requests per worker."""
        return [
            len(queue) + (1 if busy else 0)
            for queue, busy in zip(self._queues, self._busy)
        ]

    def submit(self, generated_at: float) -> None:
        request = Request(payload=None, generated_at=generated_at)
        request.sent_at = generated_at
        if self._balancer is None:
            worker = self._rng.randrange(len(self._queues))
            self._engine.at(generated_at, self._on_arrival, request, worker)
        else:
            self._engine.at(generated_at, self._dispatch, request)

    def _dispatch(self, request: Request) -> None:
        self._on_arrival(request, self._balancer.pick(self.depths()))

    def _on_arrival(self, request: Request, worker: int) -> None:
        request.enqueued_at = self._engine.now
        self.dispatched[worker] += 1
        if self._busy[worker]:
            self._queues[worker].append(request)
        else:
            self._start(request, worker)

    def _start(self, request: Request, worker: int) -> None:
        self._busy[worker] = True
        request.service_start_at = self._engine.now
        service = self._service_model.sample(self._rng)
        self.busy_time += service
        self._engine.after(service, self._finish, request, worker)

    def _finish(self, request: Request, worker: int) -> None:
        request.service_end_at = self._engine.now
        request.response_received_at = self._engine.now
        self._collector.add(request.finish())
        if self._queues[worker]:
            self._start(self._queues[worker].popleft(), worker)
        else:
            self._busy[worker] = False


def simulate_dispatch(
    profile: AppProfile, config: SimConfig, policy: str = "random"
) -> SimResult:
    """Per-worker-queue server under the named dispatch policy.

    ``policy`` is a :mod:`repro.core.balancer` name. ``"random"`` is
    the legacy uniform dispatch and reproduces historical results for
    a given seed exactly.
    """
    service_model = profile.service_model(
        n_threads=config.n_threads,
        ideal_memory=config.ideal_memory,
        simulated_system=config.simulated_system,
        added_occupancy=network_model_for(
            config.configuration
        ).server_occupancy,
    )
    engine = Engine()
    collector = StatsCollector(warmup_requests=config.warmup_requests)
    balancer = (
        None
        if policy == "random"
        else make_balancer(policy, seed=config.seed ^ 0xD15)
    )
    server = _PartitionedServer(
        engine,
        service_model,
        config.n_threads,
        collector,
        random.Random(config.seed ^ 0xD15),
        balancer=balancer,
    )
    schedule = ArrivalSchedule.generate(
        PoissonArrivals(config.qps), config.total_requests, seed=config.seed
    )
    for t in schedule:
        server.submit(t)
    engine.run()
    elapsed = engine.now
    utilization = (
        server.busy_time / (elapsed * config.n_threads) if elapsed else 0.0
    )
    return SimResult(
        profile_name=f"{profile.name}/{policy}-dispatch",
        config=config,
        stats=collector.snapshot(),
        offered_qps=config.qps,
        utilization=utilization,
        virtual_time=elapsed,
        routed_counts=tuple(server.dispatched),
    )


def simulate_random_dispatch(profile: AppProfile, config: SimConfig) -> SimResult:
    """Like :func:`simulate_load` but with per-worker random dispatch."""
    return simulate_dispatch(profile, config, policy="random")


def compare_dispatch(
    profile: AppProfile,
    config: SimConfig,
    extra_policies: Sequence[str] = (),
) -> dict:
    """Shared-queue vs per-worker-queue p95/p99 at identical load.

    Always compares the shared queue against random dispatch; any
    additional balancer names in ``extra_policies`` (e.g. ``"jsq"``,
    ``"power_of_two"``) are simulated on the partitioned server too.
    """
    shared = simulate_load(profile, config)
    results = {
        "shared": shared,
        "random": simulate_random_dispatch(profile, config),
    }
    for policy in extra_policies:
        results[policy] = simulate_dispatch(profile, config, policy=policy)
    return results

"""Top-level virtual-time load testing.

:func:`simulate_load` is the simulator's counterpart of
:func:`repro.core.harness.run_harness`: same methodology (open-loop
Poisson arrivals, warmup discard, per-request timestamp chains), but
executed in virtual time against a calibrated or measured service-time
model. Deterministic given a seed, microsecond-exact, and fast — this
is the configuration the paper runs under zsim (Sec. VI).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.collector import CollectedStats, StatsCollector
from ..core.traffic import ArrivalSchedule, DeterministicArrivals, PoissonArrivals
from ..stats import LatencySummary
from .calibration import AppProfile, paper_profile
from .engine import Engine
from .network_model import network_model_for
from .server_model import SimulatedServer

__all__ = ["SimConfig", "SimResult", "simulate_load", "simulate_app"]


@dataclass(frozen=True)
class SimConfig:
    """Parameters of one virtual-time measurement run."""

    qps: float = 1000.0
    n_threads: int = 1
    configuration: str = "integrated"
    warmup_requests: int = 500
    measure_requests: int = 5000
    seed: int = 0
    #: Model the zsim-simulated system (applies the profile's constant
    #: performance error) rather than the real machine.
    simulated_system: bool = False
    #: Idealized memory (zero-latency/infinite-bandwidth DRAM): removes
    #: memory-contention dilation, keeping synchronization overheads —
    #: the Sec. VII experiment.
    ideal_memory: bool = False
    deterministic_arrivals: bool = False

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.warmup_requests < 0 or self.measure_requests < 1:
            raise ValueError("invalid request counts")

    @property
    def total_requests(self) -> int:
        return self.warmup_requests + self.measure_requests

    def with_qps(self, qps: float) -> "SimConfig":
        return SimConfig(
            qps=qps,
            n_threads=self.n_threads,
            configuration=self.configuration,
            warmup_requests=self.warmup_requests,
            measure_requests=self.measure_requests,
            seed=self.seed,
            simulated_system=self.simulated_system,
            ideal_memory=self.ideal_memory,
            deterministic_arrivals=self.deterministic_arrivals,
        )

    def with_seed(self, seed: int) -> "SimConfig":
        return SimConfig(
            qps=self.qps,
            n_threads=self.n_threads,
            configuration=self.configuration,
            warmup_requests=self.warmup_requests,
            measure_requests=self.measure_requests,
            seed=seed,
            simulated_system=self.simulated_system,
            ideal_memory=self.ideal_memory,
            deterministic_arrivals=self.deterministic_arrivals,
        )


@dataclass(frozen=True)
class SimResult:
    """Outcome of one virtual-time run (mirrors HarnessResult)."""

    profile_name: str
    config: SimConfig
    stats: CollectedStats
    offered_qps: float
    utilization: float
    virtual_time: float

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    @property
    def service(self) -> LatencySummary:
        return self.stats.summary("service")

    @property
    def queue(self) -> LatencySummary:
        return self.stats.summary("queue")

    @property
    def saturated(self) -> bool:
        """Offered load at or beyond the server's service capacity."""
        return self.utilization >= 0.98

    def describe(self) -> str:
        return (
            f"{self.profile_name} [{self.config.configuration}] "
            f"qps={self.offered_qps:g} threads={self.config.n_threads} "
            f"util={self.utilization:.2f}\n"
            f"sojourn: {self.sojourn.describe()}"
        )


def simulate_load(profile: AppProfile, config: SimConfig) -> SimResult:
    """Run one open-loop load test in virtual time."""
    network = network_model_for(config.configuration)
    service_model = profile.service_model(
        n_threads=config.n_threads,
        ideal_memory=config.ideal_memory,
        simulated_system=config.simulated_system,
        added_occupancy=network.server_occupancy,
    )
    engine = Engine()
    collector = StatsCollector(warmup_requests=config.warmup_requests)
    rng = random.Random(config.seed ^ 0x5EED)
    server = SimulatedServer(
        engine, service_model, network, config.n_threads, collector, rng
    )
    process = (
        DeterministicArrivals(config.qps)
        if config.deterministic_arrivals
        else PoissonArrivals(config.qps)
    )
    schedule = ArrivalSchedule.generate(
        process, config.total_requests, seed=config.seed
    )
    for generated_at in schedule:
        server.submit(generated_at)
    engine.run()
    elapsed = engine.now
    return SimResult(
        profile_name=profile.name,
        config=config,
        stats=collector.snapshot(),
        offered_qps=config.qps,
        utilization=server.utilization(elapsed) if elapsed > 0 else 0.0,
        virtual_time=elapsed,
    )


def simulate_app(name: str, config: SimConfig) -> SimResult:
    """Simulate a paper application by name with its calibrated profile."""
    return simulate_load(paper_profile(name), config)

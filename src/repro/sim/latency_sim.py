"""Top-level virtual-time load testing.

:func:`simulate_load` is the simulator's counterpart of
:func:`repro.core.harness.run_harness`: same methodology (open-loop
Poisson arrivals, warmup discard, per-request timestamp chains), but
executed in virtual time against a calibrated or measured service-time
model. Deterministic given a seed, microsecond-exact, and fast — this
is the configuration the paper runs under zsim (Sec. VI).

Fault plans (``SimConfig.faults``) and resilience policies
(``SimConfig.resilience``) replay in virtual time through
:class:`_SimClient`, a single-threaded mirror of the live
:class:`~repro.core.resilience.ResilientClient`: same state machine
(deadlines, attempt timeouts, full-jitter backoff, hedging), same
outcome taxonomy, but with recovery timers as simulator events instead
of a timer thread. Because the event loop is single-threaded and every
random draw comes from seeded streams, the same plan replayed with the
same seed yields byte-identical results.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.balancer import BALANCERS, LoadBalancer, make_balancer, pick_active
from ..batching.config import NO_BATCHING, BatchingConfig
from ..core.collector import CollectedStats, StatsCollector
from ..core.config import (
    NO_CACHE,
    NO_CONTROL,
    NO_FANOUT,
    NO_OBSERVABILITY,
    NO_RESILIENCE,
    CacheConfig,
    ControlPlaneConfig,
    FanoutConfig,
    ObservabilityConfig,
)
from ..core.request import Request
from ..core.resilience import (
    ResilienceConfig,
    _Call,
    backoff_delay,
    effective_attempt_timeout,
)
from ..core.traffic import ArrivalSchedule, DeterministicArrivals, PoissonArrivals
from ..faults import FaultInjector, FaultPlan, Scenario, ScenarioInjector
from ..health.config import NO_HEALTH, HealthConfig
from ..stats import LatencySummary
from .calibration import AppProfile, paper_profile
from .engine import Engine
from .network_model import network_model_for
from .server_model import SimulatedServer

__all__ = ["SimConfig", "SimResult", "simulate_load", "simulate_app"]


@dataclass(frozen=True)
class SimConfig:
    """Parameters of one virtual-time measurement run."""

    qps: float = 1000.0
    n_threads: int = 1
    configuration: str = "integrated"
    warmup_requests: int = 500
    measure_requests: int = 5000
    seed: int = 0
    #: Model the zsim-simulated system (applies the profile's constant
    #: performance error) rather than the real machine.
    simulated_system: bool = False
    #: Idealized memory (zero-latency/infinite-bandwidth DRAM): removes
    #: memory-contention dilation, keeping synchronization overheads —
    #: the Sec. VII experiment.
    ideal_memory: bool = False
    deterministic_arrivals: bool = False
    #: Fault plan to replay in virtual time (None = healthy run).
    faults: Optional[FaultPlan] = None
    #: Client-side recovery policy (deadlines/retries/hedging).
    resilience: ResilienceConfig = NO_RESILIENCE
    #: Bound on the simulated server's request queue (None = unbounded);
    #: arrivals beyond it are shed. With ``n_servers > 1`` the bound
    #: applies per instance, as in the live harness.
    queue_capacity: Optional[int] = None
    #: Independent server replicas behind the balancer, each with its
    #: own queue, worker pool, and service-time stream. 1 reproduces
    #: the original single-server simulator bit-for-bit.
    n_servers: int = 1
    #: Client count, accepted for API parity with the live harness. In
    #: virtual time the round-robin schedule split re-merges into the
    #: identical event sequence, so this never changes results — the
    #: open-loop process is invariant under client count by design.
    n_clients: int = 1
    #: Routing policy (see :mod:`repro.core.balancer`):
    #: ``round_robin`` / ``random`` / ``power_of_two`` / ``jsq``.
    balancer: str = "round_robin"
    #: Tracing/metrics policy (see :mod:`repro.obs`). Off by default;
    #: when on, the simulator emits the same event schema as the live
    #: harness and samples metrics as a recurring virtual-time event.
    observability: ObservabilityConfig = NO_OBSERVABILITY
    #: SLO-driven control plane (see :mod:`repro.control`). Off by
    #: default; control ticks become recurring virtual-time events, so
    #: controlled runs stay deterministic under a fixed seed.
    control: ControlPlaneConfig = NO_CONTROL
    #: Dynamic request batching (see :mod:`repro.batching`). Off by
    #: default; when enabled the simulated servers form the identical
    #: size-or-deadline batches the live worker loop forms, and a
    #: batch's service window is one full-price draw plus
    #: ``sim_marginal_cost`` of each additional member's draw.
    batching: BatchingConfig = NO_BATCHING
    #: Optional piecewise ``((duration, qps), ...)`` load schedule
    #: replacing the constant-rate arrival process (warmup discard is
    #: skipped; the transient is the measurement).
    load_profile: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Failure-aware serving (see :mod:`repro.health`): replica health
    #: tracking, outlier ejection, circuit breakers, retry budget. Off
    #: by default — disabled runs build no health objects and replay
    #: bit-identically to pre-health builds.
    health: HealthConfig = NO_HEALTH
    #: Optional chaos :class:`repro.faults.Scenario`; phase boundaries
    #: become engine events, so scenario replay is deterministic per
    #: seed. Composes over ``faults`` as the steady-state base plan.
    scenario: Optional[Scenario] = None
    #: Scatter-gather request shape (see
    #: :class:`repro.core.FanoutConfig`): each arrival scatters one
    #: pinned sub-request to every server and the end-to-end latency
    #: is the slowest shard's. Off by default; a K=1 fan-out replays
    #: bit-identically to the unsharded simulator per seed (the
    #: sub-request schedule, RNG streams, and event order coincide).
    fanout: FanoutConfig = NO_FANOUT
    #: Request/result caching tier (see :class:`repro.core.CacheConfig`
    #: and :mod:`repro.cache`). Off by default. When enabled, arrivals
    #: carry synthetic Zipfian keys drawn from a *dedicated* RNG stream
    #: and a hit substitutes ``hit_cost`` for the sampled service time
    #: — the sample is consumed either way, and the key stream simply
    #: never exists when disabled, so a cache-off run stays
    #: bit-identical to pre-cache builds per seed.
    cache: CacheConfig = NO_CACHE

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.warmup_requests < 0 or self.measure_requests < 1:
            raise ValueError("invalid request counts")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.balancer not in BALANCERS:
            raise ValueError(
                f"balancer must be one of {sorted(BALANCERS)}, "
                f"got {self.balancer!r}"
            )
        if self.load_profile is not None:
            if not self.load_profile:
                raise ValueError("load_profile must have >= 1 segment")
            for segment in self.load_profile:
                if len(segment) != 2:
                    raise ValueError(
                        "load_profile segments are (duration, qps) pairs"
                    )
                duration, qps = segment
                if duration <= 0 or qps <= 0:
                    raise ValueError(
                        "load_profile durations and qps must be positive"
                    )
        if self.control.enabled and self.control.autoscaler is not None:
            scaler = self.control.autoscaler
            if not (
                scaler.min_servers <= self.n_servers <= scaler.max_servers
            ):
                raise ValueError(
                    "n_servers must lie within the autoscaler's "
                    "[min_servers, max_servers] band"
                )
        if self.fanout.enabled:
            # Same composition rules as the live harness: pinned
            # sub-requests must all be answered for a gather to
            # complete, so layers that retry, reroute, or drop
            # individual requests are excluded.
            if self.n_servers != self.fanout.shards:
                raise ValueError(
                    "fan-out requires n_servers == fanout.shards "
                    f"(n_servers={self.n_servers}, "
                    f"shards={self.fanout.shards})"
                )
            if self.resilience.enabled:
                raise ValueError(
                    "resilience retries/hedges reroute pinned "
                    "sub-requests; disable it under fan-out"
                )
            if self.control.enabled or self.health.enabled:
                raise ValueError(
                    "control-plane and health policies drop or reroute "
                    "requests, breaking the gather contract; disable "
                    "them under fan-out"
                )
            if self.faults is not None or self.scenario is not None:
                raise ValueError(
                    "fault injection can drop sub-requests, leaving "
                    "gathers forever incomplete; fan-out does not "
                    "compose with faults/scenarios"
                )
        if self.cache.enabled:
            if self.batching.enabled:
                raise ValueError(
                    "the batched service window prices whole batches "
                    "and has no per-request hit path; caching does not "
                    "compose with batching"
                )
            if self.fanout.enabled:
                raise ValueError(
                    "fan-out sub-requests carry partial per-shard "
                    "responses; caching does not compose with fan-out"
                )
            if (
                self.resilience.enabled
                or self.health.enabled
                or self.faults is not None
                or self.scenario is not None
            ):
                # The resilient-client mirror submits keyless attempts
                # (every request would miss), which would silently
                # defeat the cache; reject rather than mislead. The
                # live harness does support these combinations — real
                # apps key on real payloads there.
                raise ValueError(
                    "the simulator's synthetic key stream only feeds "
                    "the direct and routed arrival paths; caching does "
                    "not compose with resilience/health/faults in sim "
                    "(use the live harness for those)"
                )

    @property
    def total_requests(self) -> int:
        return self.warmup_requests + self.measure_requests

    def with_qps(self, qps: float) -> "SimConfig":
        return dataclasses.replace(self, qps=qps)

    def with_seed(self, seed: int) -> "SimConfig":
        return dataclasses.replace(self, seed=seed)

    def replace(self, **changes) -> "SimConfig":
        """Copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SimResult:
    """Outcome of one virtual-time run (mirrors HarnessResult)."""

    profile_name: str
    config: SimConfig
    stats: CollectedStats
    offered_qps: float
    utilization: float
    virtual_time: float
    outcomes: Dict[str, int] = field(default_factory=dict)
    goodput_qps: float = 0.0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Workers still alive per server instance at run end.
    alive_workers: Tuple[int, ...] = ()
    #: Requests routed to each server instance by the balancer.
    routed_counts: Tuple[int, ...] = ()
    #: Observability artifacts (trace events, metric series, snapshot);
    #: None unless ``config.observability.tracing`` was enabled.
    obs: Optional[object] = None
    #: Control-plane tallies (mirrors HarnessResult.control_counts).
    control_counts: Dict[str, int] = field(default_factory=dict)
    #: Health-layer tallies (mirrors HarnessResult.health_counts).
    health_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-shard leaf latencies and critical-shard attribution
    #: (:class:`repro.core.fanout.FanoutStats`); None unless
    #: ``config.fanout.enabled``.
    fanout: Optional[object] = None
    #: Caching-tier tallies (hits, misses, expirations, evictions,
    #: rejections); empty unless ``config.cache.enabled``.
    cache_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-instance ``(server_id, completions, active_seconds)`` — the
    #: active window runs from join to drain, so per-server rates stay
    #: honest under autoscaling membership churn.
    server_activity: Tuple[Tuple[int, int, float], ...] = ()

    def per_server_qps(self) -> Dict[int, float]:
        """Completions per second of *active window*, per instance."""
        return {
            server_id: (completed / active if active > 0 else 0.0)
            for server_id, completed, active in self.server_activity
        }

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    def per_server(self, metric: str = "sojourn") -> Dict[int, LatencySummary]:
        """Per-instance latency summaries (see CollectedStats.per_server)."""
        return self.stats.per_server(metric)

    @property
    def service(self) -> LatencySummary:
        return self.stats.summary("service")

    @property
    def queue(self) -> LatencySummary:
        return self.stats.summary("queue")

    @property
    def attempt_latency(self) -> LatencySummary:
        """Per-attempt latency summary (every attempt with a response)."""
        return self.stats.attempt_summary()

    @property
    def retry_amplification(self) -> float:
        """Attempts sent per logical request offered (1.0 = no retries)."""
        offered = self.outcomes.get("offered", 0)
        attempts = self.outcomes.get("attempts", 0)
        if offered == 0 or attempts == 0:
            return 1.0
        return attempts / offered

    @property
    def success_rate(self) -> float:
        """Fraction of offered logical requests that met their deadline."""
        offered = self.outcomes.get("offered", 0)
        if offered == 0:
            return 1.0
        return self.outcomes.get("succeeded", 0) / offered

    @property
    def saturated(self) -> bool:
        """Offered load at or beyond the server's service capacity."""
        return self.utilization >= 0.98

    def describe(self) -> str:
        lines = [
            f"{self.profile_name} [{self.config.configuration}] "
            f"qps={self.offered_qps:g} threads={self.config.n_threads} "
            f"util={self.utilization:.2f}",
            f"sojourn: {self.sojourn.describe()}",
        ]
        if self.config.n_servers > 1:
            lines.append(
                f"topology: {self.config.n_servers} servers "
                f"balancer={self.config.balancer} "
                f"routed={list(self.routed_counts)} "
                f"alive_workers={list(self.alive_workers)}"
            )
        if self.control_counts:
            c = self.control_counts
            lines.append(
                f"control: ticks={c.get('ticks', 0)} "
                f"admitted={c.get('admitted', 0)} "
                f"codel_dropped={c.get('codel_dropped', 0)} "
                f"limit_dropped={c.get('limit_dropped', 0)} "
                f"scale_ups={c.get('scale_ups', 0)} "
                f"scale_downs={c.get('scale_downs', 0)} "
                f"active_servers={c.get('active_servers', 0)}"
            )
        if self.health_counts:
            h = self.health_counts
            lines.append(
                f"health: ejections={h.get('ejections', 0)} "
                f"readmissions={h.get('readmissions', 0)} "
                f"probes={h.get('probes', 0)} "
                f"breaker_opens={h.get('breaker_opens', 0)} "
                f"retries_denied={h.get('retries_denied', 0)}"
            )
        if self.cache_counts:
            cc = self.cache_counts
            looked = cc.get("hits", 0) + cc.get("misses", 0)
            rate = cc.get("hits", 0) / looked if looked else 0.0
            lines.append(
                f"cache: hit_rate={rate:.1%} hits={cc.get('hits', 0)} "
                f"misses={cc.get('misses', 0)} "
                f"expirations={cc.get('expirations', 0)} "
                f"evictions={cc.get('evictions', 0)}"
            )
        if self.outcomes:
            o = self.outcomes
            lines.append(
                f"goodput_qps={self.goodput_qps:.1f} "
                f"succeeded={o.get('succeeded', 0)} "
                f"timed_out={o.get('timed_out', 0)} "
                f"failed={o.get('failed', 0)} shed={o.get('shed', 0)} "
                f"retries={o.get('retries', 0)} "
                f"amplification={self.retry_amplification:.2f}"
            )
        return "\n".join(lines)


class _Topology:
    """Routes attempts across N simulated servers through a balancer.

    Virtual-time mirror of the live transport's routing layer: tracks
    per-server ``outstanding`` (routed minus responded — the depth
    vector the balancer inspects, same signal as the live
    ``Transport.queue_depths``) and lifetime ``routed`` counts, and
    wraps each server's response callback so the slot is released when
    the response event fires. With one server the balancer is never
    consulted, so the single-server event/RNG streams are untouched.

    With a control plane the topology also owns runtime membership,
    mirroring the live transport: the server list is append-only
    (``add_server`` via ``server_factory``), removed replicas drain in
    place, and routing only ever targets the active subset (see
    :func:`repro.core.balancer.pick_active`).
    """

    def __init__(
        self,
        servers: List[SimulatedServer],
        balancer: LoadBalancer,
        engine: Optional[Engine] = None,
        server_factory: Optional[Callable[[int], SimulatedServer]] = None,
        plane=None,
        health=None,
    ) -> None:
        self._servers = servers
        self._balancer = balancer
        self._engine = engine
        self._factory = server_factory
        self._plane = plane
        self._health = health
        self._sink: Optional[Callable[[Request], None]] = None
        self._outstanding = [0] * len(servers)
        self.routed = [0] * len(servers)
        #: Hook run on every runtime-added server (gauge registration).
        self.on_server_added: Optional[Callable[[SimulatedServer], None]] = None

    @property
    def servers(self) -> List[SimulatedServer]:
        return list(self._servers)

    def server(self, server_id: int) -> SimulatedServer:
        return self._servers[server_id]

    def depths(self) -> List[int]:
        return list(self._outstanding)

    def active_ids(self) -> List[int]:
        return [
            server.server_id
            for server in self._servers
            if not server.draining
        ]

    def add_server(self) -> Optional[int]:
        """Grow the replica set by one at runtime (autoscale up)."""
        if self._factory is None:
            return None
        server_id = len(self._servers)
        server = self._factory(server_id)
        self._servers.append(server)
        self._outstanding.append(0)
        self.routed.append(0)
        if self._sink is not None:
            server.set_response_callback(self._sink)
        if self.on_server_added is not None:
            self.on_server_added(server)
        return server_id

    def drain_server(self) -> Optional[int]:
        """Stop routing to the youngest active replica (autoscale down).

        Work already queued on it still completes — the server object
        stays in place, exactly like the live transport's drain.
        """
        active = [s for s in self._servers if not s.draining]
        if len(active) <= 1:
            return None
        server = active[-1]
        server.draining = True
        server.drained_at = (
            self._engine.now if self._engine is not None else None
        )
        return server.server_id

    def submit_attempt(
        self,
        request: Request,
        extra_delay: float = 0.0,
        avoid: Optional[int] = None,
    ) -> int:
        """Route one attempt; returns the chosen server index.

        A request arriving with ``server_id`` already stamped (an
        injected duplicate shadowing its original) skips the balancer
        and lands on that server, as on the live wire.
        """
        if request.server_id is None:
            if self._plane is not None:
                self._plane.classify(request)
            if len(self._servers) == 1:
                request.server_id = 0
            elif self._health is not None:
                now = (
                    request.sent_at
                    if request.sent_at is not None
                    else request.generated_at
                )
                candidates, forced = self._health.route(
                    self.active_ids(), now
                )
                if forced:
                    # Probation probe / breaker trial: route directly.
                    request.server_id = candidates[0]
                else:
                    request.server_id = pick_active(
                        self._balancer, self.depths(), candidates,
                        avoid=avoid,
                    )
            else:
                request.server_id = pick_active(
                    self._balancer,
                    self.depths(),
                    self.active_ids(),
                    avoid=avoid,
                )
        server_id = request.server_id
        self._outstanding[server_id] += 1
        self.routed[server_id] += 1
        self._servers[server_id].submit_request(
            request, extra_delay=extra_delay
        )
        return server_id

    def set_response_callback(
        self, callback: Callable[[Request], None]
    ) -> None:
        """Install the client-side sink behind per-server settling."""

        def sink(request: Request) -> None:
            server_id = request.server_id or 0
            self._outstanding[server_id] = max(
                self._outstanding[server_id] - 1, 0
            )
            if (
                self._plane is not None
                and request.error is None
                and not request.shed
                and not request.discard
            ):
                # Same AIMD signal the live transport feeds: end-to-end
                # sojourn of every successful completion.
                self._plane.observe_sojourn(
                    request.response_received_at - request.generated_at
                )
            if (
                self._health is not None
                and not request.discard
                and request.server_id is not None
            ):
                # Same feed the live transport completion path gives
                # the health layer: every non-discarded response, ok or
                # not, attributed to the replica that served it.
                ok = request.error is None and not request.shed
                self._health.record_attempt(
                    request.server_id,
                    (
                        request.response_received_at - request.sent_at
                        if ok and request.sent_at is not None
                        else None
                    ),
                    ok,
                    request.response_received_at,
                )
            callback(request)

        self._sink = sink
        for server in self._servers:
            server.set_response_callback(sink)


class _SimControlTarget:
    """Bind the control plane to the simulated topology.

    Duck-typed :class:`repro.control.ControlTarget` (kept import-free
    so the control package loads only on controlled runs): controllers
    read virtual-time queue snapshots and load gauges and actuate
    runtime membership on the topology — the identical controller code
    that drives the live transport.
    """

    def __init__(self, topology: _Topology, plane) -> None:
        self._topology = topology
        self._plane = plane

    def active_servers(self) -> List[int]:
        return self._topology.active_ids()

    def queue_snapshot(self, server_id: int, now: float):
        return self._topology.server(server_id).queue_snapshot(now)

    def server_load(self, server_id: int) -> Tuple[int, int, int]:
        server = self._topology.server(server_id)
        return (server.queue_len, server.busy_workers, server.workers_alive)

    def gate(self, server_id: int):
        return self._plane.gate_for(server_id)

    def scale_up(self) -> Optional[int]:
        return self._topology.add_server()

    def scale_down(self) -> Optional[int]:
        return self._topology.drain_server()


class _SimClient:
    """Virtual-time mirror of :class:`repro.core.resilience.ResilientClient`.

    Runs the identical logical-request state machine — deadlines,
    per-attempt timeouts, retries with full-jitter backoff, hedges,
    first-response-wins resolution, late-response accounting — but
    schedules every recovery timer on the simulation engine and applies
    transport faults (drop / delay / duplicate) inline, since the
    simulator has no wire to corrupt. Single-threaded by construction:
    no locks, fully deterministic under a fixed seed.
    """

    def __init__(
        self,
        engine: Engine,
        topology: _Topology,
        config: ResilienceConfig,
        collector: StatsCollector,
        injector: Optional[FaultInjector],
        seed: int = 0,
        tracer=None,
        health=None,
    ) -> None:
        self._engine = engine
        self._topology = topology
        self._config = config
        self._collector = collector
        self._injector = injector
        self._tracer = tracer
        self._health = health
        self._rng = random.Random(seed ^ 0x8E511)
        self._attempt_timeout = effective_attempt_timeout(config)
        self._calls: Dict[int, _Call] = {}
        self._ids = itertools.count()
        topology.set_response_callback(self._on_attempt_complete)

    # -- logical request lifecycle -------------------------------------
    def begin(self, generated_at: float) -> None:
        """Start one logical request (runs at its arrival instant)."""
        config = self._config
        logical_id = next(self._ids)
        deadline = (
            generated_at + config.deadline
            if config.deadline is not None
            else None
        )
        call = _Call(logical_id, None, generated_at, deadline)
        self._calls[logical_id] = call
        self._collector.note("offered")
        if self._health is not None:
            self._health.on_first_attempt()
        self._send_attempt(call, kind="first")
        if deadline is not None:
            self._engine.at(deadline, self._on_deadline, call)
        if config.hedge_after is not None and config.max_hedges > 0:
            self._engine.after(config.hedge_after, self._maybe_hedge, call)

    def finalize(self) -> None:
        """Resolve logical requests left dangling by unrecovered drops.

        Only reachable without a deadline: with one, the deadline event
        always resolves the call inside the simulation.
        """
        for call in list(self._calls.values()):
            self._resolve(call, "failed")

    # -- attempts ------------------------------------------------------
    def _send_attempt(self, call: _Call, kind: str) -> None:
        if call.resolved:
            return
        call.attempt_seq += 1
        attempt_no = call.attempt_seq
        if kind != "hedge":
            call.cur_attempt = attempt_no
        self._collector.note("attempts")
        if kind == "retry":
            self._collector.note("retries")
        elif kind == "hedge":
            self._collector.note("hedges")
        tracer = self._tracer
        if tracer is not None and kind != "first":
            tracer.emit(
                kind, self._engine.now, logical_id=call.logical_id,
                attempt=attempt_no,
            )

        drop = duplicate = False
        extra_delay = 0.0
        if self._injector is not None:
            action = self._injector.transport_action()
            drop, duplicate, extra_delay = action
        if drop and tracer is not None:
            # Mirror the live transport's dropped-attempt trail: the
            # truncated chain plus an explicit fault marker.
            now = self._engine.now
            tracer.emit("generated", call.generated_at,
                        logical_id=call.logical_id, attempt=attempt_no)
            tracer.emit("sent", now, logical_id=call.logical_id,
                        attempt=attempt_no)
            tracer.emit("fault_drop", now, logical_id=call.logical_id,
                        attempt=attempt_no)
        if not drop:
            now = self._engine.now
            request = Request(
                payload=None,
                generated_at=call.generated_at,
                logical_id=call.logical_id,
                attempt=attempt_no,
                deadline=call.deadline,
            )
            request.sent_at = now
            # A hedge steers away from the replica serving the primary
            # attempt, so replica-local trouble cannot slow both copies.
            if extra_delay > 0.0 and tracer is not None:
                tracer.emit(
                    "fault_delay", now, logical_id=call.logical_id,
                    request_id=request.request_id, attempt=attempt_no,
                    value=extra_delay,
                )
            server_id = self._topology.submit_attempt(
                request,
                extra_delay=extra_delay,
                avoid=call.last_server if kind == "hedge" else None,
            )
            if kind != "hedge":
                call.last_server = server_id
            if duplicate:
                dup = Request(
                    payload=None,
                    generated_at=call.generated_at,
                    logical_id=call.logical_id,
                    attempt=attempt_no,
                    deadline=call.deadline,
                    discard=True,
                )
                dup.sent_at = now
                dup.server_id = server_id
                if tracer is not None:
                    tracer.emit(
                        "fault_duplicate", now, logical_id=call.logical_id,
                        request_id=dup.request_id, attempt=attempt_no,
                        server_id=server_id,
                    )
                self._topology.submit_attempt(dup, extra_delay=extra_delay)
        if kind != "hedge" and self._attempt_timeout is not None:
            # Clamp to the remaining deadline budget (mirrors the live
            # client): backoff sleeps erode the budget, and an attempt
            # timer running past the deadline would only extend virtual
            # time after the request has already timed out.
            timeout = effective_attempt_timeout(
                self._config, now=self._engine.now, deadline=call.deadline
            )
            if timeout is not None and timeout > 0.0:
                self._engine.after(
                    timeout, self._on_attempt_timeout, call, attempt_no
                )

    def _on_attempt_complete(self, request: Request) -> None:
        if request.discard:
            return  # injected duplicate: response intentionally ignored
        now = request.response_received_at
        if request.sent_at is not None:
            self._collector.record_attempt(max(now - request.sent_at, 0.0))
        call = self._calls.get(request.logical_id)
        if call is None or call.resolved:
            self._collector.note("late")
            if self._tracer is not None:
                self._tracer.emit(
                    "late", now, logical_id=request.logical_id,
                    request_id=request.request_id, attempt=request.attempt,
                    server_id=request.server_id,
                )
            return
        if request.shed:
            self._collector.note("shed")
            self._retry_or_fail(call, request.attempt, "failed")
            return
        if request.error is not None:
            self._collector.note("errors")
            self._retry_or_fail(call, request.attempt, "failed")
            return
        if call.deadline is not None and now > call.deadline:
            self._resolve(call, "timed_out")
            return
        if self._resolve(call, "succeeded"):
            self._collector.add(request.finish())

    def _on_attempt_timeout(self, call: _Call, attempt_no: int) -> None:
        if call.resolved or attempt_no != call.cur_attempt:
            return
        if self._health is not None and call.last_server is not None:
            # The topology sink never sees a timed-out attempt at its
            # timeout instant; report the failure against the replica
            # (mirrors the live client's timeout feed).
            self._health.record_attempt(
                call.last_server, None, False, self._engine.now
            )
        self._retry_or_fail(call, attempt_no, "timed_out")

    def _retry_or_fail(
        self, call: _Call, attempt_no: int, exhausted_outcome: str
    ) -> None:
        config = self._config
        if call.resolved or attempt_no < call.cur_attempt:
            return
        if call.retry_pending:
            return
        if call.retries < config.max_retries:
            call.retries += 1
            delay = backoff_delay(config, self._rng, call.retries - 1)
            if (
                call.deadline is not None
                and self._engine.now + delay >= call.deadline
            ):
                # The retry could not respond before the deadline; let
                # the deadline event resolve the call instead.
                return
            if self._health is not None and not (
                self._health.try_spend_retry(self._engine.now)
            ):
                # Retry budget exhausted: give the slot back so a later
                # failure may retry once tokens refill, and fail now
                # when no deadline will resolve the call.
                call.retries -= 1
                if call.deadline is None:
                    self._resolve(call, exhausted_outcome)
                return
            call.retry_pending = True
            self._engine.after(delay, self._send_retry, call)
        elif call.deadline is None:
            self._resolve(call, exhausted_outcome)

    def _send_retry(self, call: _Call) -> None:
        if call.resolved:
            return
        call.retry_pending = False
        self._send_attempt(call, kind="retry")

    def _maybe_hedge(self, call: _Call) -> None:
        if call.resolved or call.hedges >= self._config.max_hedges:
            return
        call.hedges += 1
        self._send_attempt(call, kind="hedge")

    def _on_deadline(self, call: _Call) -> None:
        self._resolve(call, "timed_out")

    def _resolve(self, call: _Call, outcome: str) -> bool:
        if call.resolved:
            return False
        call.resolved = True
        self._calls.pop(call.logical_id, None)
        self._collector.note(outcome)
        return True


def simulate_load(profile: AppProfile, config: SimConfig) -> SimResult:
    """Run one open-loop load test in virtual time."""
    network = network_model_for(config.configuration)
    service_model = profile.service_model(
        n_threads=config.n_threads,
        ideal_memory=config.ideal_memory,
        simulated_system=config.simulated_system,
        added_occupancy=network.server_occupancy,
    )
    engine = Engine()
    # A load profile measures everything (the transient response is the
    # experiment); steady-state runs keep the warmup-discard methodology.
    warmup = 0 if config.load_profile is not None else config.warmup_requests
    collector = StatsCollector(warmup_requests=warmup)
    if config.scenario is not None:
        injector: Optional[FaultInjector] = ScenarioInjector(
            config.scenario, seed=config.seed, base=config.faults
        )
    else:
        injector = (
            FaultInjector(config.faults, seed=config.seed)
            if config.faults is not None and not config.faults.is_noop
            else None
        )
    tracer = registry = sampler = None
    if config.observability.tracing:
        # Lazy import: the default (tracing-off) simulator path never
        # touches the obs package.
        from ..obs import MetricsRegistry, MetricsSampler, Tracer

        tracer = Tracer(capacity=config.observability.trace_capacity)
        registry = MetricsRegistry()
    live = None
    if config.observability.slo.enabled:
        # Lazy import, same policy as the tracer: runs without the
        # streaming SLO layer never touch repro.obs.live. Windows
        # anchor at virtual t=0 — the simulator's run start — so
        # boundaries are deterministic and fault onsets alignable.
        from ..obs.live import LiveObs

        live = LiveObs(
            config.observability.slo, tracer=tracer, seed=config.seed
        )
        live.set_origin(0.0)
    plane = None
    if config.control.enabled:
        # Same lazy-import policy: uncontrolled runs never touch the
        # control package.
        from ..control import ControlPlane

        plane = ControlPlane(config.control, seed=config.seed, tracer=tracer)
    batch_policy = None
    if config.batching.enabled:
        # Same lazy-import policy: unbatched runs never touch the
        # batching package (beyond the config dataclass itself).
        from ..batching import BatchPolicy

        batch_policy = BatchPolicy.from_config(config.batching)
    health = None
    if config.health.enabled:
        # Same lazy-import policy: health-off runs never touch the
        # health package (beyond the config dataclass itself).
        from ..health import HealthManager

        health = HealthManager(config.health, tracer=tracer)
    cache = None
    next_cache_key = None
    if config.cache.enabled:
        # Same lazy-import policy: cache-off runs never touch the cache
        # package (beyond the config dataclass itself).
        from ..cache import build_cache
        from ..stats import ZipfianGenerator

        cache = build_cache(config.cache, tracer=tracer)
        # The synthetic key stream gets its own RNG, constructed only
        # here: a cache-off run draws nothing extra anywhere, so its
        # arrival schedule and per-server service streams — hence its
        # fingerprint — are untouched by this subsystem existing.
        key_rng = random.Random(config.seed ^ 0xCAC4ED)
        key_zipf = ZipfianGenerator(
            config.cache.sim_keyspace, theta=config.cache.sim_theta
        )

        def next_cache_key() -> int:
            return key_zipf.sample(key_rng)

    def make_server(server_id: int) -> SimulatedServer:
        # Server 0 keeps the pre-topology stream seed so n_servers=1
        # reproduces the original single-server simulator bit-for-bit;
        # replicas (including runtime scale-ups) draw from
        # independently seeded streams, so controlled runs stay
        # deterministic no matter when a replica joins.
        rng = random.Random((config.seed ^ 0x5EED) + 1_000_003 * server_id)
        scoped = (
            injector.for_server(server_id) if injector is not None else None
        )
        server = SimulatedServer(
            engine,
            service_model,
            network,
            config.n_threads,
            collector,
            rng,
            injector=scoped,
            queue_capacity=config.queue_capacity,
            server_id=server_id,
            tracer=tracer,
            gate=plane.gate_for(server_id) if plane is not None else None,
            buffer=plane.make_buffer() if plane is not None else None,
            batching=batch_policy,
            batch_marginal_cost=config.batching.sim_marginal_cost,
            live=live,
            cache=cache,
        )
        server.started_at = engine.now
        return server

    servers: List[SimulatedServer] = [
        make_server(server_id) for server_id in range(config.n_servers)
    ]
    topology = _Topology(
        servers,
        make_balancer(config.balancer, seed=config.seed),
        engine=engine,
        server_factory=make_server if plane is not None else None,
        plane=plane,
        health=health,
    )
    if injector is not None:
        injector.start_run(0.0)
        if registry is not None:
            injector.register_metrics(registry)
    if isinstance(injector, ScenarioInjector):
        # Phase boundaries become ordinary engine events — single
        # threaded playback, bit-identical per seed (the live harness
        # uses a driver thread at the same offsets).
        for offset in injector.scenario.boundaries():
            engine.at(offset, injector.advance_to, offset)
    if health is not None and registry is not None:
        health.register_metrics(registry)
    if live is not None and registry is not None:
        live.register_metrics(registry)
    if cache is not None and registry is not None:
        cache.register_metrics(registry)
    if config.load_profile is not None:
        schedule = ArrivalSchedule.piecewise(
            config.load_profile,
            seed=config.seed,
            deterministic=config.deterministic_arrivals,
        )
        profile_time = sum(d for d, _ in config.load_profile)
        offered_qps = len(schedule) / profile_time
    else:
        process = (
            DeterministicArrivals(config.qps)
            if config.deterministic_arrivals
            else PoissonArrivals(config.qps)
        )
        schedule = ArrivalSchedule.generate(
            process, config.total_requests, seed=config.seed
        )
        offered_qps = config.qps
    n_offered = len(schedule)
    if registry is not None:
        # Same gauge families the live transport registers, read lazily
        # from existing counters — sampling is a recurring virtual-time
        # event, not a thread, bounded by the arrival horizon so the
        # event heap still drains.
        def register_server_gauges(server: SimulatedServer) -> None:
            labels = {"server": str(server.server_id)}
            registry.gauge(
                "tb_queue_depth", help="Requests waiting in the queue",
                fn=(lambda s=server: s.queue_len), **labels,
            )
            registry.gauge(
                "tb_busy_workers", help="Workers currently serving",
                fn=(lambda s=server: s.busy_workers), **labels,
            )
            registry.gauge(
                "tb_alive_workers", help="Workers still alive",
                fn=(lambda s=server: s.workers_alive), **labels,
            )
            registry.gauge(
                "tb_completed_total", help="Responses produced",
                fn=(lambda s=server: s.completed), **labels,
            )
            registry.gauge(
                "tb_shed_total", help="Requests shed by admission control",
                fn=(lambda s=server: s.shed_count), **labels,
            )
            registry.gauge(
                "tb_outstanding", help="Attempts routed and not yet answered",
                fn=(
                    lambda t=topology, i=server.server_id: t.depths()[i]
                ),
                **labels,
            )

        for server in servers:
            register_server_gauges(server)
        topology.on_server_added = register_server_gauges
        registry.gauge(
            "tb_inflight", help="Attempts in flight across all servers",
            fn=(lambda t=topology: sum(t.depths())),
        )
        sampler = MetricsSampler(
            registry, engine.clock,
            interval=config.observability.metrics_interval,
        )
        horizon = schedule.times[-1]
        interval = config.observability.metrics_interval

        def tick() -> None:
            sampler.sample()
            if engine.now + interval <= horizon:
                engine.after(interval, tick)

        engine.at(0.0, tick)
    if plane is not None:
        plane.bind(_SimControlTarget(topology, plane))
        plane.register_metrics(registry)
        control_horizon = schedule.times[-1]
        tick_interval = config.control.tick_interval

        def control_tick() -> None:
            plane.tick(engine.now)
            if engine.now + tick_interval <= control_horizon:
                engine.after(tick_interval, control_tick)

        # First tick one interval in — at t=0 there is nothing to
        # observe; bounded by the arrival horizon so the heap drains.
        engine.at(tick_interval, control_tick)
    client: Optional[_SimClient] = None
    fanout_gatherer = None
    if injector is not None or config.resilience.enabled or health is not None:
        client = _SimClient(
            engine, topology, config.resilience, collector, injector,
            seed=config.seed, tracer=tracer, health=health,
        )
        for generated_at in schedule:
            engine.at(generated_at, client.begin, generated_at)
    elif config.fanout.enabled:
        # Scatter-gather: every arrival pre-scheduled at build time
        # like the direct path — one pinned sub-request per shard, no
        # balancer draws, no routing events on the heap. At K=1 the
        # sub-request schedule, request construction order, and
        # per-server RNG streams coincide with the direct path's, so
        # an enabled fan-out of 1 replays the unsharded simulator
        # bit-for-bit; the gather callback merely renames the
        # completion path (the critical shard of a 1-wide gather is
        # the request itself).
        from ..core.fanout import FanoutGatherer

        fanout_gatherer = FanoutGatherer(
            config.fanout.shards, collector, merge=None,
            warmup=warmup, tracer=tracer,
        )
        topology.set_response_callback(fanout_gatherer.on_complete)
        for generated_at in schedule:
            gather_id, pairs = fanout_gatherer.open_gather()
            for logical_id, shard in pairs:
                if tracer is not None:
                    tracer.emit(
                        "fanout_send", generated_at,
                        logical_id=logical_id, server_id=shard,
                        value=float(gather_id),
                    )
                request = Request(payload=None, generated_at=generated_at)
                request.logical_id = logical_id
                request.sent_at = generated_at
                request.server_id = shard
                topology.submit_attempt(request)
    elif config.n_servers == 1 and plane is None:
        # Original direct path: no routing events on the heap, so the
        # single-server event stream is byte-identical to before. With
        # the cache on, each arrival carries a key from the dedicated
        # Zipf stream; off, payload stays None and nothing is drawn.
        if next_cache_key is not None:
            for generated_at in schedule:
                servers[0].submit(generated_at, payload=next_cache_key())
        else:
            for generated_at in schedule:
                servers[0].submit(generated_at)
        topology.routed[0] = len(schedule)
    else:

        def record(request: Request) -> None:
            if (
                request.error is None
                and not request.shed
                and not request.discard
            ):
                collector.add(request.finish())

        topology.set_response_callback(record)

        def begin(generated_at: float) -> None:
            # Keys draw at the arrival event in schedule order — the
            # same deterministic sequence the direct path assigns.
            payload = (
                next_cache_key() if next_cache_key is not None else None
            )
            request = Request(payload=payload, generated_at=generated_at)
            request.sent_at = generated_at
            topology.submit_attempt(request)

        # The routing decision runs *at* the arrival instant, when the
        # depth vector reflects the simulated present — not at schedule
        # build time, when every queue is empty.
        for generated_at in schedule:
            engine.at(generated_at, begin, generated_at)
    engine.run()
    if client is not None:
        client.finalize()
    elapsed = engine.now
    obs = None
    if tracer is not None:
        from ..obs import ObsResult, prometheus_text

        sampler.sample()  # final sample at the run's last instant
        obs = ObsResult(
            events=tracer.events(),
            dropped=tracer.dropped,
            series=sampler.series,
            snapshot=registry.snapshot(),
            prom=prometheus_text(registry),
            live=live.finish(elapsed) if live is not None else None,
        )
    stats = collector.snapshot()
    outcomes = collector.outcome_counts()
    if not collector.outcomes_used:
        outcomes["offered"] = n_offered
        # Under fan-out each logical arrival costs `shards` attempts
        # (the scatter amplification); at K=1 this reduces to the
        # unsharded tally, keeping the fingerprint bit-identical.
        outcomes["attempts"] = n_offered * (
            config.fanout.shards if config.fanout.enabled else 1
        )
        outcomes["succeeded"] = stats.count + stats.dropped_warmup
        outcomes["shed"] = sum(server.shed_count for server in servers)
    goodput = outcomes.get("succeeded", 0) / elapsed if elapsed > 0 else 0.0
    total_busy = sum(server.busy_time for server in servers)
    # Capacity integrates each replica's *active window* — for a static
    # topology every window equals the whole run and this reduces to
    # elapsed * n_threads * n_servers; under autoscaling it charges a
    # late-joining or early-drained replica only for its tenure.
    server_activity = tuple(
        (
            server.server_id,
            server.good_completed,
            max(
                (
                    server.drained_at
                    if server.drained_at is not None
                    else elapsed
                )
                - server.started_at,
                0.0,
            ),
        )
        for server in servers
    )
    capacity = sum(
        active * config.n_threads for _, _, active in server_activity
    )
    return SimResult(
        profile_name=profile.name,
        config=config,
        stats=stats,
        offered_qps=offered_qps,
        utilization=total_busy / capacity if capacity > 0 else 0.0,
        virtual_time=elapsed,
        outcomes=outcomes,
        goodput_qps=goodput,
        fault_counts=injector.counts() if injector is not None else {},
        alive_workers=tuple(server.workers_alive for server in servers),
        routed_counts=tuple(topology.routed),
        obs=obs,
        control_counts=plane.counts() if plane is not None else {},
        health_counts=health.counts() if health is not None else {},
        fanout=(
            fanout_gatherer.stats if fanout_gatherer is not None else None
        ),
        server_activity=server_activity,
        cache_counts=cache.counts() if cache is not None else {},
    )


def simulate_app(name: str, config: SimConfig) -> SimResult:
    """Simulate a paper application by name with its calibrated profile."""
    return simulate_load(paper_profile(name), config)

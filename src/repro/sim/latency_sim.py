"""Top-level virtual-time load testing.

:func:`simulate_load` is the simulator's counterpart of
:func:`repro.core.harness.run_harness`: same methodology (open-loop
Poisson arrivals, warmup discard, per-request timestamp chains), but
executed in virtual time against a calibrated or measured service-time
model. Deterministic given a seed, microsecond-exact, and fast — this
is the configuration the paper runs under zsim (Sec. VI).

Fault plans (``SimConfig.faults``) and resilience policies
(``SimConfig.resilience``) replay in virtual time through
:class:`_SimClient`, a single-threaded mirror of the live
:class:`~repro.core.resilience.ResilientClient`: same state machine
(deadlines, attempt timeouts, full-jitter backoff, hedging), same
outcome taxonomy, but with recovery timers as simulator events instead
of a timer thread. Because the event loop is single-threaded and every
random draw comes from seeded streams, the same plan replayed with the
same seed yields byte-identical results.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.balancer import BALANCERS, LoadBalancer, make_balancer
from ..core.collector import CollectedStats, StatsCollector
from ..core.config import NO_OBSERVABILITY, NO_RESILIENCE, ObservabilityConfig
from ..core.request import Request
from ..core.resilience import (
    ResilienceConfig,
    _Call,
    backoff_delay,
    effective_attempt_timeout,
)
from ..core.traffic import ArrivalSchedule, DeterministicArrivals, PoissonArrivals
from ..faults import FaultInjector, FaultPlan
from ..stats import LatencySummary
from .calibration import AppProfile, paper_profile
from .engine import Engine
from .network_model import network_model_for
from .server_model import SimulatedServer

__all__ = ["SimConfig", "SimResult", "simulate_load", "simulate_app"]


@dataclass(frozen=True)
class SimConfig:
    """Parameters of one virtual-time measurement run."""

    qps: float = 1000.0
    n_threads: int = 1
    configuration: str = "integrated"
    warmup_requests: int = 500
    measure_requests: int = 5000
    seed: int = 0
    #: Model the zsim-simulated system (applies the profile's constant
    #: performance error) rather than the real machine.
    simulated_system: bool = False
    #: Idealized memory (zero-latency/infinite-bandwidth DRAM): removes
    #: memory-contention dilation, keeping synchronization overheads —
    #: the Sec. VII experiment.
    ideal_memory: bool = False
    deterministic_arrivals: bool = False
    #: Fault plan to replay in virtual time (None = healthy run).
    faults: Optional[FaultPlan] = None
    #: Client-side recovery policy (deadlines/retries/hedging).
    resilience: ResilienceConfig = NO_RESILIENCE
    #: Bound on the simulated server's request queue (None = unbounded);
    #: arrivals beyond it are shed. With ``n_servers > 1`` the bound
    #: applies per instance, as in the live harness.
    queue_capacity: Optional[int] = None
    #: Independent server replicas behind the balancer, each with its
    #: own queue, worker pool, and service-time stream. 1 reproduces
    #: the original single-server simulator bit-for-bit.
    n_servers: int = 1
    #: Client count, accepted for API parity with the live harness. In
    #: virtual time the round-robin schedule split re-merges into the
    #: identical event sequence, so this never changes results — the
    #: open-loop process is invariant under client count by design.
    n_clients: int = 1
    #: Routing policy (see :mod:`repro.core.balancer`):
    #: ``round_robin`` / ``random`` / ``power_of_two`` / ``jsq``.
    balancer: str = "round_robin"
    #: Tracing/metrics policy (see :mod:`repro.obs`). Off by default;
    #: when on, the simulator emits the same event schema as the live
    #: harness and samples metrics as a recurring virtual-time event.
    observability: ObservabilityConfig = NO_OBSERVABILITY

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.warmup_requests < 0 or self.measure_requests < 1:
            raise ValueError("invalid request counts")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.balancer not in BALANCERS:
            raise ValueError(
                f"balancer must be one of {sorted(BALANCERS)}, "
                f"got {self.balancer!r}"
            )

    @property
    def total_requests(self) -> int:
        return self.warmup_requests + self.measure_requests

    def with_qps(self, qps: float) -> "SimConfig":
        return dataclasses.replace(self, qps=qps)

    def with_seed(self, seed: int) -> "SimConfig":
        return dataclasses.replace(self, seed=seed)

    def replace(self, **changes) -> "SimConfig":
        """Copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SimResult:
    """Outcome of one virtual-time run (mirrors HarnessResult)."""

    profile_name: str
    config: SimConfig
    stats: CollectedStats
    offered_qps: float
    utilization: float
    virtual_time: float
    outcomes: Dict[str, int] = field(default_factory=dict)
    goodput_qps: float = 0.0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Workers still alive per server instance at run end.
    alive_workers: Tuple[int, ...] = ()
    #: Requests routed to each server instance by the balancer.
    routed_counts: Tuple[int, ...] = ()
    #: Observability artifacts (trace events, metric series, snapshot);
    #: None unless ``config.observability.tracing`` was enabled.
    obs: Optional[object] = None

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    def per_server(self, metric: str = "sojourn") -> Dict[int, LatencySummary]:
        """Per-instance latency summaries (see CollectedStats.per_server)."""
        return self.stats.per_server(metric)

    @property
    def service(self) -> LatencySummary:
        return self.stats.summary("service")

    @property
    def queue(self) -> LatencySummary:
        return self.stats.summary("queue")

    @property
    def attempt_latency(self) -> LatencySummary:
        """Per-attempt latency summary (every attempt with a response)."""
        return self.stats.attempt_summary()

    @property
    def retry_amplification(self) -> float:
        """Attempts sent per logical request offered (1.0 = no retries)."""
        offered = self.outcomes.get("offered", 0)
        attempts = self.outcomes.get("attempts", 0)
        if offered == 0 or attempts == 0:
            return 1.0
        return attempts / offered

    @property
    def success_rate(self) -> float:
        """Fraction of offered logical requests that met their deadline."""
        offered = self.outcomes.get("offered", 0)
        if offered == 0:
            return 1.0
        return self.outcomes.get("succeeded", 0) / offered

    @property
    def saturated(self) -> bool:
        """Offered load at or beyond the server's service capacity."""
        return self.utilization >= 0.98

    def describe(self) -> str:
        lines = [
            f"{self.profile_name} [{self.config.configuration}] "
            f"qps={self.offered_qps:g} threads={self.config.n_threads} "
            f"util={self.utilization:.2f}",
            f"sojourn: {self.sojourn.describe()}",
        ]
        if self.config.n_servers > 1:
            lines.append(
                f"topology: {self.config.n_servers} servers "
                f"balancer={self.config.balancer} "
                f"routed={list(self.routed_counts)} "
                f"alive_workers={list(self.alive_workers)}"
            )
        if self.outcomes:
            o = self.outcomes
            lines.append(
                f"goodput_qps={self.goodput_qps:.1f} "
                f"succeeded={o.get('succeeded', 0)} "
                f"timed_out={o.get('timed_out', 0)} "
                f"failed={o.get('failed', 0)} shed={o.get('shed', 0)} "
                f"retries={o.get('retries', 0)} "
                f"amplification={self.retry_amplification:.2f}"
            )
        return "\n".join(lines)


class _Topology:
    """Routes attempts across N simulated servers through a balancer.

    Virtual-time mirror of the live transport's routing layer: tracks
    per-server ``outstanding`` (routed minus responded — the depth
    vector the balancer inspects, same signal as the live
    ``Transport.queue_depths``) and lifetime ``routed`` counts, and
    wraps each server's response callback so the slot is released when
    the response event fires. With one server the balancer is never
    consulted, so the single-server event/RNG streams are untouched.
    """

    def __init__(
        self, servers: List[SimulatedServer], balancer: LoadBalancer
    ) -> None:
        self._servers = servers
        self._balancer = balancer
        self._outstanding = [0] * len(servers)
        self.routed = [0] * len(servers)

    @property
    def servers(self) -> List[SimulatedServer]:
        return list(self._servers)

    def depths(self) -> List[int]:
        return list(self._outstanding)

    def submit_attempt(
        self,
        request: Request,
        extra_delay: float = 0.0,
        avoid: Optional[int] = None,
    ) -> int:
        """Route one attempt; returns the chosen server index.

        A request arriving with ``server_id`` already stamped (an
        injected duplicate shadowing its original) skips the balancer
        and lands on that server, as on the live wire.
        """
        if request.server_id is None:
            if len(self._servers) == 1:
                request.server_id = 0
            else:
                request.server_id = self._balancer.pick(
                    self.depths(), avoid=avoid
                )
        server_id = request.server_id
        self._outstanding[server_id] += 1
        self.routed[server_id] += 1
        self._servers[server_id].submit_request(
            request, extra_delay=extra_delay
        )
        return server_id

    def set_response_callback(
        self, callback: Callable[[Request], None]
    ) -> None:
        """Install the client-side sink behind per-server settling."""

        def sink(request: Request) -> None:
            server_id = request.server_id or 0
            self._outstanding[server_id] = max(
                self._outstanding[server_id] - 1, 0
            )
            callback(request)

        for server in self._servers:
            server.set_response_callback(sink)


class _SimClient:
    """Virtual-time mirror of :class:`repro.core.resilience.ResilientClient`.

    Runs the identical logical-request state machine — deadlines,
    per-attempt timeouts, retries with full-jitter backoff, hedges,
    first-response-wins resolution, late-response accounting — but
    schedules every recovery timer on the simulation engine and applies
    transport faults (drop / delay / duplicate) inline, since the
    simulator has no wire to corrupt. Single-threaded by construction:
    no locks, fully deterministic under a fixed seed.
    """

    def __init__(
        self,
        engine: Engine,
        topology: _Topology,
        config: ResilienceConfig,
        collector: StatsCollector,
        injector: Optional[FaultInjector],
        seed: int = 0,
        tracer=None,
    ) -> None:
        self._engine = engine
        self._topology = topology
        self._config = config
        self._collector = collector
        self._injector = injector
        self._tracer = tracer
        self._rng = random.Random(seed ^ 0x8E511)
        self._attempt_timeout = effective_attempt_timeout(config)
        self._calls: Dict[int, _Call] = {}
        self._ids = itertools.count()
        topology.set_response_callback(self._on_attempt_complete)

    # -- logical request lifecycle -------------------------------------
    def begin(self, generated_at: float) -> None:
        """Start one logical request (runs at its arrival instant)."""
        config = self._config
        logical_id = next(self._ids)
        deadline = (
            generated_at + config.deadline
            if config.deadline is not None
            else None
        )
        call = _Call(logical_id, None, generated_at, deadline)
        self._calls[logical_id] = call
        self._collector.note("offered")
        self._send_attempt(call, kind="first")
        if deadline is not None:
            self._engine.at(deadline, self._on_deadline, call)
        if config.hedge_after is not None and config.max_hedges > 0:
            self._engine.after(config.hedge_after, self._maybe_hedge, call)

    def finalize(self) -> None:
        """Resolve logical requests left dangling by unrecovered drops.

        Only reachable without a deadline: with one, the deadline event
        always resolves the call inside the simulation.
        """
        for call in list(self._calls.values()):
            self._resolve(call, "failed")

    # -- attempts ------------------------------------------------------
    def _send_attempt(self, call: _Call, kind: str) -> None:
        if call.resolved:
            return
        call.attempt_seq += 1
        attempt_no = call.attempt_seq
        if kind != "hedge":
            call.cur_attempt = attempt_no
        self._collector.note("attempts")
        if kind == "retry":
            self._collector.note("retries")
        elif kind == "hedge":
            self._collector.note("hedges")
        tracer = self._tracer
        if tracer is not None and kind != "first":
            tracer.emit(
                kind, self._engine.now, logical_id=call.logical_id,
                attempt=attempt_no,
            )

        drop = duplicate = False
        extra_delay = 0.0
        if self._injector is not None:
            action = self._injector.transport_action()
            drop, duplicate, extra_delay = action
        if drop and tracer is not None:
            # Mirror the live transport's dropped-attempt trail: the
            # truncated chain plus an explicit fault marker.
            now = self._engine.now
            tracer.emit("generated", call.generated_at,
                        logical_id=call.logical_id, attempt=attempt_no)
            tracer.emit("sent", now, logical_id=call.logical_id,
                        attempt=attempt_no)
            tracer.emit("fault_drop", now, logical_id=call.logical_id,
                        attempt=attempt_no)
        if not drop:
            now = self._engine.now
            request = Request(
                payload=None,
                generated_at=call.generated_at,
                logical_id=call.logical_id,
                attempt=attempt_no,
                deadline=call.deadline,
            )
            request.sent_at = now
            # A hedge steers away from the replica serving the primary
            # attempt, so replica-local trouble cannot slow both copies.
            if extra_delay > 0.0 and tracer is not None:
                tracer.emit(
                    "fault_delay", now, logical_id=call.logical_id,
                    request_id=request.request_id, attempt=attempt_no,
                    value=extra_delay,
                )
            server_id = self._topology.submit_attempt(
                request,
                extra_delay=extra_delay,
                avoid=call.last_server if kind == "hedge" else None,
            )
            if kind != "hedge":
                call.last_server = server_id
            if duplicate:
                dup = Request(
                    payload=None,
                    generated_at=call.generated_at,
                    logical_id=call.logical_id,
                    attempt=attempt_no,
                    deadline=call.deadline,
                    discard=True,
                )
                dup.sent_at = now
                dup.server_id = server_id
                if tracer is not None:
                    tracer.emit(
                        "fault_duplicate", now, logical_id=call.logical_id,
                        request_id=dup.request_id, attempt=attempt_no,
                        server_id=server_id,
                    )
                self._topology.submit_attempt(dup, extra_delay=extra_delay)
        if kind != "hedge" and self._attempt_timeout is not None:
            self._engine.after(
                self._attempt_timeout, self._on_attempt_timeout, call,
                attempt_no,
            )

    def _on_attempt_complete(self, request: Request) -> None:
        if request.discard:
            return  # injected duplicate: response intentionally ignored
        now = request.response_received_at
        if request.sent_at is not None:
            self._collector.record_attempt(max(now - request.sent_at, 0.0))
        call = self._calls.get(request.logical_id)
        if call is None or call.resolved:
            self._collector.note("late")
            if self._tracer is not None:
                self._tracer.emit(
                    "late", now, logical_id=request.logical_id,
                    request_id=request.request_id, attempt=request.attempt,
                    server_id=request.server_id,
                )
            return
        if request.shed:
            self._collector.note("shed")
            self._retry_or_fail(call, request.attempt, "failed")
            return
        if request.error is not None:
            self._collector.note("errors")
            self._retry_or_fail(call, request.attempt, "failed")
            return
        if call.deadline is not None and now > call.deadline:
            self._resolve(call, "timed_out")
            return
        if self._resolve(call, "succeeded"):
            self._collector.add(request.finish())

    def _on_attempt_timeout(self, call: _Call, attempt_no: int) -> None:
        if call.resolved or attempt_no != call.cur_attempt:
            return
        self._retry_or_fail(call, attempt_no, "timed_out")

    def _retry_or_fail(
        self, call: _Call, attempt_no: int, exhausted_outcome: str
    ) -> None:
        config = self._config
        if call.resolved or attempt_no < call.cur_attempt:
            return
        if call.retry_pending:
            return
        if call.retries < config.max_retries:
            call.retries += 1
            delay = backoff_delay(config, self._rng, call.retries - 1)
            if (
                call.deadline is not None
                and self._engine.now + delay >= call.deadline
            ):
                # The retry could not respond before the deadline; let
                # the deadline event resolve the call instead.
                return
            call.retry_pending = True
            self._engine.after(delay, self._send_retry, call)
        elif call.deadline is None:
            self._resolve(call, exhausted_outcome)

    def _send_retry(self, call: _Call) -> None:
        if call.resolved:
            return
        call.retry_pending = False
        self._send_attempt(call, kind="retry")

    def _maybe_hedge(self, call: _Call) -> None:
        if call.resolved or call.hedges >= self._config.max_hedges:
            return
        call.hedges += 1
        self._send_attempt(call, kind="hedge")

    def _on_deadline(self, call: _Call) -> None:
        self._resolve(call, "timed_out")

    def _resolve(self, call: _Call, outcome: str) -> bool:
        if call.resolved:
            return False
        call.resolved = True
        self._calls.pop(call.logical_id, None)
        self._collector.note(outcome)
        return True


def simulate_load(profile: AppProfile, config: SimConfig) -> SimResult:
    """Run one open-loop load test in virtual time."""
    network = network_model_for(config.configuration)
    service_model = profile.service_model(
        n_threads=config.n_threads,
        ideal_memory=config.ideal_memory,
        simulated_system=config.simulated_system,
        added_occupancy=network.server_occupancy,
    )
    engine = Engine()
    collector = StatsCollector(warmup_requests=config.warmup_requests)
    injector = (
        FaultInjector(config.faults, seed=config.seed)
        if config.faults is not None and not config.faults.is_noop
        else None
    )
    tracer = registry = sampler = None
    if config.observability.tracing:
        # Lazy import: the default (tracing-off) simulator path never
        # touches the obs package.
        from ..obs import MetricsRegistry, MetricsSampler, Tracer

        tracer = Tracer(capacity=config.observability.trace_capacity)
        registry = MetricsRegistry()
    servers: List[SimulatedServer] = []
    for server_id in range(config.n_servers):
        # Server 0 keeps the pre-topology stream seed so n_servers=1
        # reproduces the original single-server simulator bit-for-bit;
        # replicas draw from independently seeded streams.
        rng = random.Random((config.seed ^ 0x5EED) + 1_000_003 * server_id)
        scoped = (
            injector.for_server(server_id) if injector is not None else None
        )
        servers.append(
            SimulatedServer(
                engine,
                service_model,
                network,
                config.n_threads,
                collector,
                rng,
                injector=scoped,
                queue_capacity=config.queue_capacity,
                server_id=server_id,
                tracer=tracer,
            )
        )
    topology = _Topology(
        servers, make_balancer(config.balancer, seed=config.seed)
    )
    if injector is not None:
        injector.start_run(0.0)
        if registry is not None:
            injector.register_metrics(registry)
    process = (
        DeterministicArrivals(config.qps)
        if config.deterministic_arrivals
        else PoissonArrivals(config.qps)
    )
    schedule = ArrivalSchedule.generate(
        process, config.total_requests, seed=config.seed
    )
    if registry is not None:
        # Same gauge families the live transport registers, read lazily
        # from existing counters — sampling is a recurring virtual-time
        # event, not a thread, bounded by the arrival horizon so the
        # event heap still drains.
        for server in servers:
            labels = {"server": str(server.server_id)}
            registry.gauge(
                "tb_queue_depth", help="Requests waiting in the queue",
                fn=(lambda s=server: s.queue_len), **labels,
            )
            registry.gauge(
                "tb_busy_workers", help="Workers currently serving",
                fn=(lambda s=server: s.busy_workers), **labels,
            )
            registry.gauge(
                "tb_alive_workers", help="Workers still alive",
                fn=(lambda s=server: s.workers_alive), **labels,
            )
            registry.gauge(
                "tb_completed_total", help="Responses produced",
                fn=(lambda s=server: s.completed), **labels,
            )
            registry.gauge(
                "tb_shed_total", help="Requests shed by admission control",
                fn=(lambda s=server: s.shed_count), **labels,
            )
            registry.gauge(
                "tb_outstanding", help="Attempts routed and not yet answered",
                fn=(
                    lambda t=topology, i=server.server_id: t.depths()[i]
                ),
                **labels,
            )
        registry.gauge(
            "tb_inflight", help="Attempts in flight across all servers",
            fn=(lambda t=topology: sum(t.depths())),
        )
        sampler = MetricsSampler(
            registry, engine.clock,
            interval=config.observability.metrics_interval,
        )
        horizon = schedule.times[-1]
        interval = config.observability.metrics_interval

        def tick() -> None:
            sampler.sample()
            if engine.now + interval <= horizon:
                engine.after(interval, tick)

        engine.at(0.0, tick)
    client: Optional[_SimClient] = None
    if injector is not None or config.resilience.enabled:
        client = _SimClient(
            engine, topology, config.resilience, collector, injector,
            seed=config.seed, tracer=tracer,
        )
        for generated_at in schedule:
            engine.at(generated_at, client.begin, generated_at)
    elif config.n_servers == 1:
        # Original direct path: no routing events on the heap, so the
        # single-server event stream is byte-identical to before.
        for generated_at in schedule:
            servers[0].submit(generated_at)
        topology.routed[0] = len(schedule)
    else:

        def record(request: Request) -> None:
            if (
                request.error is None
                and not request.shed
                and not request.discard
            ):
                collector.add(request.finish())

        topology.set_response_callback(record)

        def begin(generated_at: float) -> None:
            request = Request(payload=None, generated_at=generated_at)
            request.sent_at = generated_at
            topology.submit_attempt(request)

        # The routing decision runs *at* the arrival instant, when the
        # depth vector reflects the simulated present — not at schedule
        # build time, when every queue is empty.
        for generated_at in schedule:
            engine.at(generated_at, begin, generated_at)
    engine.run()
    if client is not None:
        client.finalize()
    elapsed = engine.now
    obs = None
    if tracer is not None:
        from ..obs import ObsResult, prometheus_text

        sampler.sample()  # final sample at the run's last instant
        obs = ObsResult(
            events=tracer.events(),
            dropped=tracer.dropped,
            series=sampler.series,
            snapshot=registry.snapshot(),
            prom=prometheus_text(registry),
        )
    stats = collector.snapshot()
    outcomes = collector.outcome_counts()
    if not collector.outcomes_used:
        outcomes["offered"] = config.total_requests
        outcomes["attempts"] = config.total_requests
        outcomes["succeeded"] = stats.count + stats.dropped_warmup
        outcomes["shed"] = sum(server.shed_count for server in servers)
    goodput = outcomes.get("succeeded", 0) / elapsed if elapsed > 0 else 0.0
    total_busy = sum(server.busy_time for server in servers)
    capacity = elapsed * config.n_threads * config.n_servers
    return SimResult(
        profile_name=profile.name,
        config=config,
        stats=stats,
        offered_qps=config.qps,
        utilization=total_busy / capacity if elapsed > 0 else 0.0,
        virtual_time=elapsed,
        outcomes=outcomes,
        goodput_qps=goodput,
        fault_counts=injector.counts() if injector is not None else {},
        alive_workers=tuple(server.workers_alive for server in servers),
        routed_counts=tuple(topology.routed),
        obs=obs,
    )


def simulate_app(name: str, config: SimConfig) -> SimResult:
    """Simulate a paper application by name with its calibrated profile."""
    return simulate_load(paper_profile(name), config)

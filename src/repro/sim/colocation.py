"""Colocation interference model.

The paper's motivation (Sec. II-A): spare capacity on latency-critical
servers cannot be used by batch applications because uncontrolled
sharing of cores, caches, and bandwidth causes high and unpredictable
tail-latency degradation — so datacenters run at 5-30% utilization.

This module makes that trade quantitative. A colocated batch job
steals a fraction of each worker's compute (core time) and adds
memory-system pressure; the latency-critical app's service times
dilate accordingly:

    S' = S * 1 / (1 - cpu_share) * (1 + mem_pressure)

``simulate_colocated`` measures the resulting tail latency, and
``max_safe_batch_share`` answers the operator question directly: how
much batch work fits next to this app before its SLO breaks?
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import AppProfile
from .latency_sim import SimConfig, SimResult, simulate_load

__all__ = ["BatchColocation", "simulate_colocated", "max_safe_batch_share"]


@dataclass(frozen=True)
class BatchColocation:
    """One colocated batch job's interference parameters.

    cpu_share:
        Fraction of each worker core's time consumed by the batch job
        (0 = no colocation; must be < 1).
    mem_pressure:
        Relative service-time inflation from cache/bandwidth
        contention (0.10 = 10% slower even with full core access).
    """

    cpu_share: float = 0.0
    mem_pressure: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_share < 1.0:
            raise ValueError("cpu_share must be in [0, 1)")
        if self.mem_pressure < 0.0:
            raise ValueError("mem_pressure must be non-negative")

    @property
    def dilation(self) -> float:
        """Total multiplicative service-time dilation."""
        return (1.0 + self.mem_pressure) / (1.0 - self.cpu_share)


def simulate_colocated(
    profile: AppProfile,
    config: SimConfig,
    colocation: BatchColocation,
) -> SimResult:
    """Measure the latency-critical app with a colocated batch job."""
    from ..stats import ScaledDistribution

    dilated = AppProfile(
        name=f"{profile.name}+batch",
        service=ScaledDistribution(profile.service, colocation.dilation),
        contention=profile.contention,
        sim_speed=profile.sim_speed,
    )
    return simulate_load(dilated, config)


def max_safe_batch_share(
    profile: AppProfile,
    qps: float,
    slo_seconds: float,
    percentile: float = 95.0,
    mem_pressure_per_share: float = 0.3,
    measure_requests: int = 6000,
    tolerance: float = 0.02,
) -> float:
    """Largest batch CPU share that keeps the app inside its SLO.

    ``mem_pressure_per_share`` couples memory pressure to CPU share
    (a batch job using 40% of the core adds 0.4 * coefficient service
    inflation on top). Binary search over the share; returns 0.0 when
    even the uncolocated app misses the SLO at this load.
    """
    if slo_seconds <= 0:
        raise ValueError("slo_seconds must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")

    def tail(share: float) -> float:
        colocation = BatchColocation(
            cpu_share=share, mem_pressure=share * mem_pressure_per_share
        )
        result = simulate_colocated(
            profile,
            SimConfig(qps=qps, measure_requests=measure_requests),
            colocation,
        )
        return result.sojourn.percentiles[percentile]

    if tail(0.0) > slo_seconds:
        return 0.0
    # Upper bracket: the share at which the app saturates outright.
    saturation_share = max(0.0, 1.0 - qps * profile.service.mean * 1.02)
    lo, hi = 0.0, min(0.95, saturation_share)
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if tail(mid) <= slo_seconds:
            lo = mid
        else:
            hi = mid
    return lo

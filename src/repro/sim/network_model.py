"""Per-configuration network cost model.

Sec. VI-B quantifies what each harness configuration adds on the
paper's system: the Linux stack costs ~25 us per end (networked) and
~20 us per end (loopback); the tuned physical network contributes
~50 us round trip. Two distinct effects matter for tail latency:

- **wire latency** — time in flight (client stack, NIC, switch). It
  delays the response but does not occupy a server worker.
- **server occupancy** — the slice of per-request stack processing
  that runs on the server cores alongside the application (the paper
  steers NIC interrupts *away* from application cores, so only part of
  the per-end cost lands on workers). This inflates effective service
  time, which is why silo and specjbb — whose requests are commensurate
  with the overhead — saturate 39% / 23% earlier under the networked
  configuration (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "NETWORK_MODELS", "network_model_for"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency contributions of one harness configuration (seconds)."""

    name: str
    wire_latency_each_way: float  # in-flight, non-occupying
    server_occupancy: float  # added to service time, occupies a worker

    def __post_init__(self) -> None:
        if self.wire_latency_each_way < 0 or self.server_occupancy < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def round_trip_wire(self) -> float:
        return 2.0 * self.wire_latency_each_way


#: Calibrated to Sec. VI: integrated has no stack at all; loopback pays
#: the kernel stack but no wire; networked pays stack + ~50 us RTT.
#: Server occupancy of ~12 us reproduces Fig. 5's saturation drops:
#: with a fixed occupancy o, the drop is o / (E[S] + o) — ~39% for
#: silo's ~20 us requests and ~23% for specjbb's ~40 us requests,
#: while remaining negligible for the six long-request applications.
NETWORK_MODELS = {
    "integrated": NetworkModel("integrated", 0.0, 0.0),
    "loopback": NetworkModel("loopback", 20e-6, 10e-6),
    "networked": NetworkModel("networked", 45e-6, 12e-6),
}


def network_model_for(configuration: str) -> NetworkModel:
    try:
        return NETWORK_MODELS[configuration]
    except KeyError:
        raise ValueError(
            f"unknown configuration {configuration!r}; expected one of "
            f"{sorted(NETWORK_MODELS)}"
        ) from None

"""Multithreading contention models (the Sec. VII case study).

When an application runs with more worker threads, two distinct
effects inflate per-request service times:

- **memory contention** — threads fight over shared caches and memory
  bandwidth (moses's problem);
- **synchronization overhead** — threads serialize on locks and shared
  structures (silo's problem).

The paper separates them by simulating an *idealized memory system*
(zero-latency, infinite-bandwidth DRAM): if the anomaly disappears, it
was memory contention. :class:`ContentionModel` reproduces that
experiment: each effect is a multiplicative service-time dilation as a
function of thread count, and ``ideal_memory=True`` switches the
memory term off.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ContentionModel", "NO_CONTENTION"]


@dataclass(frozen=True)
class ContentionModel:
    """Service-time dilation vs. worker-thread count.

    ``factor(k) = mem_factor(k) * sync_factor(k)`` with

    - ``mem_factor(k)  = 1 + mem_alpha  * (k - 1) ** mem_exponent``
    - ``sync_factor(k) = 1 + sync_alpha * (k - 1) ** sync_exponent``

    A superlinear memory exponent models bandwidth saturation: moses
    is fine at 2 threads but collapses at 4 (Fig. 4), which a linear
    model cannot express.
    """

    mem_alpha: float = 0.0
    mem_exponent: float = 1.0
    sync_alpha: float = 0.0
    sync_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.mem_alpha < 0 or self.sync_alpha < 0:
            raise ValueError("contention coefficients must be non-negative")
        if self.mem_exponent <= 0 or self.sync_exponent <= 0:
            raise ValueError("contention exponents must be positive")

    def mem_factor(self, n_threads: int) -> float:
        self._check(n_threads)
        return 1.0 + self.mem_alpha * (n_threads - 1) ** self.mem_exponent

    def sync_factor(self, n_threads: int) -> float:
        self._check(n_threads)
        return 1.0 + self.sync_alpha * (n_threads - 1) ** self.sync_exponent

    def factor(self, n_threads: int, ideal_memory: bool = False) -> float:
        """Total dilation; ``ideal_memory`` zeroes the memory term."""
        mem = 1.0 if ideal_memory else self.mem_factor(n_threads)
        return mem * self.sync_factor(n_threads)

    @staticmethod
    def _check(n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")


#: No dilation at any thread count (ideal scaling).
NO_CONTENTION = ContentionModel()

"""Virtual-time server model.

Reproduces the harness's server structure — shared FIFO request queue
drained by ``n`` worker threads — as discrete events: request arrival
(after the inbound wire delay), service start when a worker frees up,
service completion, response receipt (after the outbound wire delay).
Timestamps land in the same :class:`~repro.core.request.RequestRecord`
chain live runs produce, so all downstream statistics code is shared.

The model mirrors the live server's fault-injection points: with a
:class:`repro.faults.FaultInjector`, queue stalls freeze dispatch,
worker pauses inflate service time, worker crashes permanently reduce
capacity, and the application layer errors at the plan's rate. With a
``queue_capacity``, arrivals beyond the bound are shed and answered
with a shed response (admission control).
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, List, Optional

from ..core.collector import StatsCollector
from ..core.queueing import FifoBuffer, QueueSnapshot
from ..core.request import Request
from .engine import Engine
from .network_model import NetworkModel
from .service_models import ServiceTimeModel

__all__ = ["SimulatedServer"]


class SimulatedServer:
    """n-worker FCFS server in virtual time.

    Parameters
    ----------
    engine:
        The discrete-event engine to schedule on.
    service_model:
        Per-request service-time source (already composed with
        contention / simulator-speed / occupancy dilations).
    network:
        Wire-latency model of the active harness configuration.
    n_threads:
        Number of worker "threads" (parallel servers).
    collector:
        Destination for completed request records.
    rng:
        Random stream for service-time draws.
    injector:
        Optional fault injector (queue stalls, worker pauses/crashes,
        application errors).
    queue_capacity:
        Optional bound on waiting requests; arrivals beyond it are
        shed.
    on_response:
        Optional hook receiving every response (including shed and
        errored ones) in place of default collector recording — the
        simulated resilient client installs itself here.
    server_id:
        Index of this instance in a multi-server topology; stamped on
        every request it serves so per-server statistics work.
    tracer:
        Optional :class:`repro.obs.Tracer`. The simulated server emits
        the *same* event schema as the live harness — lifecycle spans
        on every response, ``fault_*`` markers as faults fire — so
        live and virtual-time traces diff directly.
    gate:
        Optional :class:`repro.control.AdmissionGate` consulted on
        every arrival — the *same* gate object type (and therefore the
        same CoDel/AIMD decision code) the live request queue uses.
    buffer:
        Optional queue-discipline buffer (see
        :class:`repro.core.queueing.PriorityBuffer`); FIFO when None.
    batching:
        Optional :class:`repro.batching.BatchPolicy` — the *same*
        policy class the live worker loop uses, applied to the same
        buffer state, so batch membership matches across modes. When
        set, dispatch forms size-or-deadline batches instead of
        starting requests one at a time.
    batch_marginal_cost:
        Service-time model for batched dispatch: a batch of per-member
        draws ``s_0..s_{k-1}`` occupies its worker for ``s_0 +
        batch_marginal_cost * (s_1 + ... + s_{k-1})`` — one draw per
        member keeps the service RNG stream aligned with unbatched
        runs, and the marginal fraction models the amortization a
        vectorized ``handle_batch`` achieves live (1.0 = no benefit).
    """

    def __init__(
        self,
        engine: Engine,
        service_model: ServiceTimeModel,
        network: NetworkModel,
        n_threads: int,
        collector: StatsCollector,
        rng: random.Random,
        injector=None,
        queue_capacity: Optional[int] = None,
        on_response: Optional[Callable[[Request], None]] = None,
        server_id: int = 0,
        tracer=None,
        gate=None,
        buffer=None,
        batching=None,
        batch_marginal_cost: float = 0.35,
        live=None,
        cache=None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        self._engine = engine
        self._service_model = service_model
        self._network = network
        self._n_threads = n_threads
        self._collector = collector
        self._rng = rng
        self._injector = injector
        self._capacity = queue_capacity
        self._on_response_cb = on_response
        self.server_id = server_id
        self._tracer = tracer
        # Streaming SLO hook (repro.obs.live.LiveObs) — fed at the
        # same two points the live transport taps: every submission
        # and every response. None (the default) costs one test.
        self._live = live
        self._gate = gate
        self._queue = buffer if buffer is not None else FifoBuffer()
        self._batching = batching
        self._batch_marginal = batch_marginal_cost
        # Caching tier (repro.cache.RequestCache), shared across the
        # fleet. Consulted at service start for requests that carry a
        # synthetic key (payload is not None); None costs one test.
        self._cache = cache
        self._batch_seq = itertools.count()
        # Earliest pending batch-deadline event (None when none is
        # scheduled): lets dispatch avoid stacking redundant wakeups.
        self._batch_deadline_at: Optional[float] = None
        self._busy_workers = 0
        self._workers_alive = n_threads
        self._stall_event_pending = False
        self.peak_queue_depth = 0
        self.completed = 0
        self.good_completed = 0
        self.shed_count = 0
        self.crashed_workers = 0
        self.busy_time = 0.0
        self.total_enqueued = 0
        # Runtime-membership bookkeeping (mirrors the live
        # ServerInstance fields): the topology sets these when replicas
        # join or drain, and per-server rate accounting reads them.
        self.draining = False
        self.started_at = 0.0
        self.drained_at: Optional[float] = None

    def set_response_callback(
        self, callback: Callable[[Request], None]
    ) -> None:
        self._on_response_cb = callback

    # -- client side ------------------------------------------------------
    def submit(self, generated_at: float, payload=None) -> None:
        """Schedule one request whose ideal arrival instant is given.

        The open-loop guarantee holds by construction in virtual time:
        submission instants come straight from the arrival schedule.
        ``payload`` carries the synthetic cache key when the caching
        tier is enabled (None otherwise — the historical shape).
        """
        request = Request(payload=payload, generated_at=generated_at)
        request.sent_at = generated_at
        self.submit_request(request)

    def submit_request(self, request: Request, extra_delay: float = 0.0) -> None:
        """Schedule an already-built attempt (``sent_at`` stamped).

        ``extra_delay`` models fault-injected in-flight latency on top
        of the configuration's wire delay.
        """
        if request.server_id is None:
            request.server_id = self.server_id
        if self._live is not None and not request.discard:
            # Send-anchored SLO accounting, mirroring the live
            # transport: the attempt burns budget in the window it was
            # dispatched, whether or not it ever completes.
            self._live.observe_sent(request.sent_at)
        self._engine.at(
            request.sent_at
            + self._network.wire_latency_each_way
            + extra_delay,
            self._on_arrival,
            request,
        )

    # -- server events -------------------------------------------------------
    def _stall_remaining(self) -> float:
        if self._injector is None:
            return 0.0
        return self._injector.queue_stall_remaining(self._engine.now)

    def _on_arrival(self, request: Request) -> None:
        request.enqueued_at = self._engine.now
        # The admission gate sees every arrival — including ones a free
        # worker could start immediately — exactly as the live queue's
        # put path does, so admit/drop tallies match across modes.
        if self._gate is not None and not self._gate.admit(
            request.enqueued_at, len(self._queue), request
        ):
            request.shed = True
            self.shed_count += 1
            self._schedule_response(request)
            return
        if self._batching is not None:
            # Batched dispatch: every arrival queues (even with a free
            # worker — it must wait for its batch to form), mirroring
            # the live put -> get_batch path, including its capacity
            # semantics (the bound applies to the waiting buffer).
            if (
                self._capacity is not None
                and len(self._queue) >= self._capacity
            ):
                request.shed = True
                self.shed_count += 1
                self._schedule_response(request)
                return
            self._queue.push(request)
            self.total_enqueued += 1
            if len(self._queue) > self.peak_queue_depth:
                self.peak_queue_depth = len(self._queue)
            self._batch_dispatch()
            return
        stall = self._stall_remaining()
        can_start = (
            stall <= 0.0
            and self._busy_workers < self._workers_alive
            and not len(self._queue)
        )
        if can_start:
            self.total_enqueued += 1
            self._start_service(request)
            return
        if self._capacity is not None and len(self._queue) >= self._capacity:
            request.shed = True
            self.shed_count += 1
            self._schedule_response(request)
            return
        self._queue.push(request)
        self.total_enqueued += 1
        if len(self._queue) > self.peak_queue_depth:
            self.peak_queue_depth = len(self._queue)
        if stall > 0.0:
            self._schedule_stall_end(stall)

    def _schedule_stall_end(self, stall: float) -> None:
        if not self._stall_event_pending:
            self._stall_event_pending = True
            self._engine.after(stall, self._stall_over)

    def _stall_over(self) -> None:
        self._stall_event_pending = False
        if self._batching is not None:
            self._batch_dispatch()
        else:
            self._dispatch()

    def _dispatch(self) -> None:
        while len(self._queue) and self._busy_workers < self._workers_alive:
            stall = self._stall_remaining()
            if stall > 0.0:
                self._schedule_stall_end(stall)
                return
            self._start_service(self._queue.pop())

    def _batch_dispatch(self) -> None:
        """Form and start every batch that is releasable right now.

        Evaluates the shared :class:`~repro.batching.BatchPolicy`
        against the buffer; when the head's delay has not yet expired
        (and the buffer holds less than a full batch) a single wakeup
        event is scheduled for the release instant. Wakeups can go
        stale — a completion may have dispatched the batch first — in
        which case they simply re-evaluate and find nothing to do.
        """
        while len(self._queue) and self._busy_workers < self._workers_alive:
            stall = self._stall_remaining()
            if stall > 0.0:
                self._schedule_stall_end(stall)
                return
            now = self._engine.now
            ready = self._batching.ready_at(self._queue, now)
            if ready is None:
                return
            if ready > now:
                self._schedule_batch_deadline(ready)
                return
            self._start_batch(self._batching.form(self._queue))

    def _schedule_batch_deadline(self, when: float) -> None:
        # The head only gets *younger* as batches pop, so an already-
        # scheduled earlier (or equal) wakeup covers this one.
        if self._batch_deadline_at is not None and self._batch_deadline_at <= when:
            return
        self._batch_deadline_at = when
        self._engine.at(when, self._on_batch_deadline, when)

    def _on_batch_deadline(self, when: float) -> None:
        if self._batch_deadline_at == when:
            self._batch_deadline_at = None
        self._batch_dispatch()

    def _start_batch(self, batch: List[Request]) -> None:
        self._busy_workers += 1
        now = self._engine.now
        seq = next(self._batch_seq)
        size = len(batch)
        # One service draw per member keeps the RNG stream identical to
        # an unbatched run; the marginal-cost sum is the batch's single
        # service window.
        draws = [self._service_model.sample(self._rng) for _ in batch]
        service_time = draws[0] + self._batch_marginal * sum(draws[1:])
        for request in batch:
            request.service_start_at = now
            request.batch_size = size
        if self._tracer is not None:
            for request in batch:
                self._tracer.emit(
                    "batch_form", now,
                    logical_id=request.logical_id,
                    request_id=request.request_id,
                    attempt=request.attempt,
                    server_id=self.server_id, value=float(seq),
                )
            self._tracer.emit(
                "batch_start", now, server_id=self.server_id,
                value=float(seq),
            )
        if self._injector is not None:
            pause = self._injector.worker_pause()
            if pause > 0.0:
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_pause", now,
                        server_id=self.server_id, value=pause,
                    )
                service_time += pause
        self.busy_time += service_time
        self._engine.after(service_time, self._on_batch_completion, seq, batch)

    def _on_batch_completion(self, seq: int, batch: List[Request]) -> None:
        now = self._engine.now
        self._busy_workers -= 1
        if self._injector is not None:
            for request in batch:
                if self._injector.app_error():
                    request.error = "injected application error"
                    if self._tracer is not None:
                        self._tracer.emit(
                            "fault_app_error", now,
                            logical_id=request.logical_id,
                            request_id=request.request_id,
                            attempt=request.attempt,
                            server_id=self.server_id,
                        )
            if any(self._injector.worker_crash() for _ in batch):
                self._workers_alive = max(0, self._workers_alive - 1)
                self.crashed_workers += 1
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_crash", now, server_id=self.server_id,
                    )
        for request in batch:
            request.service_end_at = now
        if self._tracer is not None:
            self._tracer.emit(
                "batch_end", now, server_id=self.server_id, value=float(seq),
            )
        for request in batch:
            self._schedule_response(request)
        self._batch_dispatch()

    def _start_service(self, request: Request) -> None:
        self._busy_workers += 1
        request.service_start_at = self._engine.now
        service_time = self._service_model.sample(self._rng)
        if self._cache is not None and request.payload is not None:
            # RNG-stream alignment: the service draw above is consumed
            # whether or not the lookup hits, so enabling the cache
            # never shifts the server's random stream — a hit merely
            # substitutes the near-zero hit cost for the drawn value.
            hit, _ = self._cache.lookup(
                request.payload, request.service_start_at,
                logical_id=request.logical_id,
                request_id=request.request_id,
                attempt=request.attempt,
                server_id=self.server_id,
            )
            if hit:
                request.cache_hit = True
                service_time = self._cache.hit_cost
            else:
                # Resident from service start: concurrent requests for
                # the same key coalesce onto the entry optimistically.
                self._cache.store(
                    request.payload, True, request.service_start_at,
                    logical_id=request.logical_id,
                    request_id=request.request_id,
                    attempt=request.attempt,
                    server_id=self.server_id,
                )
        if self._injector is not None:
            pause = self._injector.worker_pause()
            if pause > 0.0 and self._tracer is not None:
                self._tracer.emit(
                    "fault_pause", request.service_start_at,
                    logical_id=request.logical_id,
                    request_id=request.request_id,
                    attempt=request.attempt,
                    server_id=self.server_id, value=pause,
                )
            service_time += pause
        self.busy_time += service_time
        self._engine.after(service_time, self._on_completion, request)

    def _on_completion(self, request: Request) -> None:
        request.service_end_at = self._engine.now
        self._busy_workers -= 1
        if self._injector is not None:
            if self._injector.app_error():
                request.error = "injected application error"
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_app_error", request.service_end_at,
                        logical_id=request.logical_id,
                        request_id=request.request_id,
                        attempt=request.attempt,
                        server_id=self.server_id,
                    )
            if self._injector.worker_crash():
                self._workers_alive = max(0, self._workers_alive - 1)
                self.crashed_workers += 1
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_crash", request.service_end_at,
                        server_id=self.server_id,
                    )
        self._schedule_response(request)
        self._dispatch()

    def _schedule_response(self, request: Request) -> None:
        self._engine.at(
            self._engine.now + self._network.wire_latency_each_way,
            self._on_response,
            request,
        )

    def _on_response(self, request: Request) -> None:
        request.response_received_at = self._engine.now
        self.completed += 1
        if request.error is None and not request.shed and not request.discard:
            self.good_completed += 1
        if self._tracer is not None:
            if request.shed:
                outcome = "shed"
            elif request.error is not None:
                outcome = "error"
            elif request.discard:
                outcome = "discard"
            else:
                outcome = None
            self._tracer.record_request(request, outcome=outcome)
        if self._live is not None and not request.discard:
            self._live.observe(request)
        if self._on_response_cb is not None:
            self._on_response_cb(request)
            return
        if request.error is None and not request.shed and not request.discard:
            self._collector.add(request.finish())

    # -- derived metrics --------------------------------------------------------
    @property
    def workers_alive(self) -> int:
        return self._workers_alive

    @property
    def busy_workers(self) -> int:
        return self._busy_workers

    @property
    def queue_len(self) -> int:
        """Requests waiting (excluding in-service) — the gauge signal."""
        return len(self._queue)

    @property
    def depth(self) -> int:
        """Queued plus in-service requests — the JSQ/P2C load signal."""
        return len(self._queue) + self._busy_workers

    @property
    def n_threads(self) -> int:
        return self._n_threads

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of workers busy over ``elapsed`` virtual seconds."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return self.busy_time / (elapsed * self._n_threads)

    def queue_snapshot(self, now: Optional[float] = None) -> QueueSnapshot:
        """The same :class:`QueueSnapshot` view the live queue exposes."""
        if now is None:
            now = self._engine.now
        head = self._queue.head_enqueued_at()
        return QueueSnapshot(
            depth=len(self._queue),
            peak_depth=self.peak_queue_depth,
            total_enqueued=self.total_enqueued,
            total_shed=self.shed_count,
            head_sojourn=max(0.0, now - head) if head is not None else 0.0,
        )

"""Virtual-time server model.

Reproduces the harness's server structure — shared FIFO request queue
drained by ``n`` worker threads — as discrete events: request arrival
(after the inbound wire delay), service start when a worker frees up,
service completion, response receipt (after the outbound wire delay).
Timestamps land in the same :class:`~repro.core.request.RequestRecord`
chain live runs produce, so all downstream statistics code is shared.
"""

from __future__ import annotations

import collections
import random
from ..core.collector import StatsCollector
from ..core.request import Request
from .engine import Engine
from .network_model import NetworkModel
from .service_models import ServiceTimeModel

__all__ = ["SimulatedServer"]


class SimulatedServer:
    """n-worker FCFS server in virtual time.

    Parameters
    ----------
    engine:
        The discrete-event engine to schedule on.
    service_model:
        Per-request service-time source (already composed with
        contention / simulator-speed / occupancy dilations).
    network:
        Wire-latency model of the active harness configuration.
    n_threads:
        Number of worker "threads" (parallel servers).
    collector:
        Destination for completed request records.
    rng:
        Random stream for service-time draws.
    """

    def __init__(
        self,
        engine: Engine,
        service_model: ServiceTimeModel,
        network: NetworkModel,
        n_threads: int,
        collector: StatsCollector,
        rng: random.Random,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._engine = engine
        self._service_model = service_model
        self._network = network
        self._n_threads = n_threads
        self._collector = collector
        self._rng = rng
        self._queue: collections.deque = collections.deque()
        self._busy_workers = 0
        self.peak_queue_depth = 0
        self.completed = 0
        self.busy_time = 0.0

    # -- client side ------------------------------------------------------
    def submit(self, generated_at: float) -> None:
        """Schedule one request whose ideal arrival instant is given.

        The open-loop guarantee holds by construction in virtual time:
        submission instants come straight from the arrival schedule.
        """
        request = Request(payload=None, generated_at=generated_at)
        request.sent_at = generated_at
        self._engine.at(
            generated_at + self._network.wire_latency_each_way,
            self._on_arrival,
            request,
        )

    # -- server events -------------------------------------------------------
    def _on_arrival(self, request: Request) -> None:
        request.enqueued_at = self._engine.now
        if self._busy_workers < self._n_threads:
            self._start_service(request)
        else:
            self._queue.append(request)
            if len(self._queue) > self.peak_queue_depth:
                self.peak_queue_depth = len(self._queue)

    def _start_service(self, request: Request) -> None:
        self._busy_workers += 1
        request.service_start_at = self._engine.now
        service_time = self._service_model.sample(self._rng)
        self.busy_time += service_time
        self._engine.after(service_time, self._on_completion, request)

    def _on_completion(self, request: Request) -> None:
        request.service_end_at = self._engine.now
        self._busy_workers -= 1
        self._engine.at(
            self._engine.now + self._network.wire_latency_each_way,
            self._on_response,
            request,
        )
        if self._queue:
            self._start_service(self._queue.popleft())

    def _on_response(self, request: Request) -> None:
        request.response_received_at = self._engine.now
        self._collector.add(request.finish())
        self.completed += 1

    # -- derived metrics --------------------------------------------------------
    def utilization(self, elapsed: float) -> float:
        """Mean fraction of workers busy over ``elapsed`` virtual seconds."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return self.busy_time / (elapsed * self._n_threads)

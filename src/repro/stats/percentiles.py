"""Quantile estimation and confidence intervals for quantiles.

Tail latency is an order statistic, so its sampling error behaves very
differently from a mean's. TailBench's methodology (Sec. IV-C) demands
enough samples — and enough repeated runs — to pin each reported
latency metric inside a 95% confidence interval of at most 1%. This
module provides the building blocks: exact order-statistic quantiles,
distribution-free binomial confidence intervals for a quantile, and
bootstrap confidence intervals for arbitrary statistics.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Sequence, Tuple

__all__ = [
    "quantile",
    "percentile",
    "binomial_quantile_ci",
    "bootstrap_ci",
    "required_samples_for_quantile",
]


def quantile(
    values: Sequence[float], q: float, sorted_values: bool = False
) -> float:
    """Return the ``q``-quantile (0 <= q <= 1) with linear interpolation.

    Uses the same convention as ``numpy.percentile`` (linear
    interpolation between closest ranks) so results are directly
    comparable with numpy-based analysis.

    Pass ``sorted_values=True`` when ``values`` is already in ascending
    order to skip the O(n log n) sort — the fast path for callers that
    take many quantiles of one pooled sample list. The caller owns the
    ordering guarantee; nothing is re-checked here.
    """
    if not values:
        raise ValueError("cannot take the quantile of no values")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    data = values if sorted_values else sorted(values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    # Numerically stable form: exact when both ranks hold equal values.
    return data[lo] + frac * (data[hi] - data[lo])


def percentile(
    values: Sequence[float], pct: float, sorted_values: bool = False
) -> float:
    """Return the ``pct``-th percentile (0 <= pct <= 100)."""
    return quantile(values, pct / 100.0, sorted_values=sorted_values)


def _normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the
    core library.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def binomial_quantile_ci(
    values: Sequence[float], q: float, confidence: float = 0.95
) -> Tuple[float, float]:
    """Distribution-free confidence interval for the ``q``-quantile.

    Uses the normal approximation to the binomial to pick order
    statistics bracketing the quantile: ranks ``n*q +/- z*sqrt(n*q*(1-q))``.
    Valid for any underlying distribution, which matters because
    latency distributions are heavy-tailed and decidedly non-normal.
    """
    if not values:
        raise ValueError("cannot compute a CI of no values")
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    data = sorted(values)
    n = len(data)
    z = _normal_ppf(0.5 + confidence / 2.0)
    spread = z * math.sqrt(n * q * (1.0 - q))
    lo_rank = int(math.floor(n * q - spread))
    hi_rank = int(math.ceil(n * q + spread))
    lo_rank = max(0, min(n - 1, lo_rank))
    hi_rank = max(0, min(n - 1, hi_rank))
    return data[lo_rank], data[hi_rank]


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    confidence: float = 0.95,
    n_resamples: int = 200,
    rng: random.Random = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``."""
    if not values:
        raise ValueError("cannot bootstrap no values")
    if n_resamples < 2:
        raise ValueError("need at least 2 resamples")
    rng = rng or random.Random(0)
    data = list(values)
    n = len(data)
    stats: List[float] = []
    for _ in range(n_resamples):
        resample = [data[rng.randrange(n)] for _ in range(n)]
        stats.append(statistic(resample))
    alpha = 1.0 - confidence
    return (quantile(stats, alpha / 2.0), quantile(stats, 1.0 - alpha / 2.0))


def required_samples_for_quantile(
    q: float, relative_precision: float = 0.1, confidence: float = 0.95
) -> int:
    """Rough sample-size rule for measuring the ``q``-quantile.

    Returns the number of samples needed so the rank uncertainty of the
    ``q``-quantile is within ``relative_precision`` of the tail mass
    ``(1 - q)``. E.g. the 99th percentile with 10% rank precision needs
    ~38k samples. This encodes the paper's "tail latency needs a large
    number of samples" observation into a usable planning function.
    """
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    if relative_precision <= 0:
        raise ValueError("relative_precision must be positive")
    z = _normal_ppf(0.5 + confidence / 2.0)
    tail = 1.0 - q
    n = (z / relative_precision) ** 2 * q / tail
    return int(math.ceil(n))

"""High dynamic range (HDR) histogram.

TailBench (Sec. IV-C) records request latencies in HDR histograms for
long runs: values spanning many orders of magnitude (e.g. 1 us to
1000 s) are captured with logarithmic space overheads while keeping
each recorded value within a configurable relative error of the actual
value. Following the paper's description, each decade ``[10^k, 10^(k+1))``
is subdivided into a fixed number of linear buckets (100 buckets per
decade gives <= 1% relative error), so the 1 us - 1000 s range needs
only ``9 decades * 100 = 900`` buckets.

Histograms are mergeable, support percentile queries, and iterate as
``(bucket_lower, bucket_upper, count)`` triples.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Tuple

__all__ = ["HdrHistogram"]


class HdrHistogram:
    """Log-decade / linear-bucket high dynamic range histogram.

    Parameters
    ----------
    lowest:
        Smallest trackable value (exclusive lower bound of the range is
        0; values below ``lowest`` are clamped into the first bucket).
        Must be > 0.
    highest:
        Largest trackable value. Values above are clamped into the last
        bucket.
    buckets_per_decade:
        Linear subdivisions of each power-of-ten decade. 100 gives a
        worst-case relative error of 1% (bucket width is 1% of the
        decade start... strictly, width / value <= 1/buckets at the low
        end of the decade, i.e. ~1%).
    """

    def __init__(
        self,
        lowest: float = 1e-6,
        highest: float = 1e3,
        buckets_per_decade: int = 100,
    ) -> None:
        if lowest <= 0:
            raise ValueError("lowest trackable value must be > 0")
        if highest <= lowest:
            raise ValueError("highest must exceed lowest")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self._lowest = float(lowest)
        self._highest = float(highest)
        self._bpd = int(buckets_per_decade)
        self._log_lowest = math.log10(self._lowest)
        n_decades = math.ceil(math.log10(self._highest / self._lowest) - 1e-12)
        self._n_decades = max(1, n_decades)
        self._counts: List[int] = [0] * (self._n_decades * self._bpd)
        self._total = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` with multiplicity ``count``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if not math.isfinite(value):
            raise ValueError("value must be finite")
        if value < 0:
            raise ValueError("latencies cannot be negative")
        idx = self._index_of(value)
        self._counts[idx] += count
        self._total += count
        self._sum += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _index_of(self, value: float) -> int:
        if value < self._lowest:
            return 0
        if value >= self._highest:
            return len(self._counts) - 1
        # Decade index and linear position within the decade.
        log = math.log10(value) - self._log_lowest
        decade = int(log)
        decade_lo = self._lowest * (10.0 ** decade)
        frac = value / decade_lo  # in [1, 10)
        if frac >= 10.0:  # floating point edge right at a decade boundary
            decade += 1
            decade_lo *= 10.0
            frac = value / decade_lo
        sub = int((frac - 1.0) / 9.0 * self._bpd)
        sub = min(self._bpd - 1, max(0, sub))
        idx = decade * self._bpd + sub
        return min(len(self._counts) - 1, idx)

    def _bucket_bounds(self, idx: int) -> Tuple[float, float]:
        decade, sub = divmod(idx, self._bpd)
        decade_lo = self._lowest * (10.0 ** decade)
        width = decade_lo * 9.0 / self._bpd
        lo = decade_lo + sub * width
        return lo, lo + width

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        return self._total

    @property
    def bucket_count(self) -> int:
        return len(self._counts)

    @property
    def min(self) -> float:
        if self._total == 0:
            raise ValueError("histogram is empty")
        return self._min

    @property
    def max(self) -> float:
        if self._total == 0:
            raise ValueError("histogram is empty")
        return self._max

    @property
    def mean(self) -> float:
        if self._total == 0:
            raise ValueError("histogram is empty")
        return self._sum / self._total

    def percentile(self, pct: float) -> float:
        """Return the value at percentile ``pct`` (0 < pct <= 100).

        The returned value is the midpoint of the bucket containing the
        requested rank, clamped to the observed min/max so that exact
        extremes are never over- or under-stated.
        """
        if not 0.0 < pct <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if self._total == 0:
            raise ValueError("histogram is empty")
        target = pct / 100.0 * self._total
        running = 0
        for idx, count in enumerate(self._counts):
            if count == 0:
                continue
            running += count
            if running >= target - 1e-9:
                lo, hi = self._bucket_bounds(idx)
                mid = (lo + hi) / 2.0
                return min(self._max, max(self._min, mid))
        return self._max  # pragma: no cover - unreachable

    def count_between(self, lo: float, hi: float) -> int:
        """Count of recorded values in buckets overlapping ``[lo, hi)``."""
        if hi <= lo:
            return 0
        total = 0
        for idx, count in enumerate(self._counts):
            if count == 0:
                continue
            blo, bhi = self._bucket_bounds(idx)
            if bhi > lo and blo < hi:
                total += count
        return total

    def buckets(self) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(lower, upper, count)`` for each non-empty bucket."""
        for idx, count in enumerate(self._counts):
            if count:
                lo, hi = self._bucket_bounds(idx)
                yield lo, hi, count

    def cdf(self) -> List[Tuple[float, float]]:
        """Return the empirical CDF as ``(value, cumulative_prob)`` points."""
        if self._total == 0:
            return []
        points = []
        running = 0
        for lo, hi, count in self.buckets():
            running += count
            points.append(((lo + hi) / 2.0, running / self._total))
        return points

    # ------------------------------------------------------------------
    # Merge / copy
    # ------------------------------------------------------------------
    def compatible_with(self, other: "HdrHistogram") -> bool:
        return (
            self._lowest == other._lowest
            and self._highest == other._highest
            and self._bpd == other._bpd
        )

    def merge(self, other: "HdrHistogram") -> None:
        """Fold ``other``'s counts into this histogram (in place)."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge histograms with different layouts")
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._total += other._total
        self._sum += other._sum
        if other._total:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def copy(self) -> "HdrHistogram":
        clone = HdrHistogram(self._lowest, self._highest, self._bpd)
        clone.merge(self)
        return clone

    # ------------------------------------------------------------------
    # Serialization (for shipping statistics across the wire, as the
    # networked configuration's stat collector does)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Compact, JSON-safe representation (sparse bucket encoding)."""
        return {
            "lowest": self._lowest,
            "highest": self._highest,
            "buckets_per_decade": self._bpd,
            "counts": {
                str(i): c for i, c in enumerate(self._counts) if c
            },
            "total": self._total,
            "sum": self._sum,
            "min": self._min if self._total else None,
            "max": self._max if self._total else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HdrHistogram":
        """Inverse of :meth:`to_dict`."""
        hist = cls(
            lowest=data["lowest"],
            highest=data["highest"],
            buckets_per_decade=data["buckets_per_decade"],
        )
        for index, count in data["counts"].items():
            idx = int(index)
            if not 0 <= idx < len(hist._counts):
                raise ValueError(f"bucket index {idx} out of range")
            if count < 0:
                raise ValueError("bucket counts must be non-negative")
            hist._counts[idx] = count
        hist._total = data["total"]
        hist._sum = data["sum"]
        if hist._total:
            hist._min = data["min"]
            hist._max = data["max"]
        if hist._total != sum(hist._counts):
            raise ValueError("total does not match bucket counts")
        return hist

    def __len__(self) -> int:
        return self._total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HdrHistogram(n={self._total}, range=[{self._lowest:g}, "
            f"{self._highest:g}], buckets={len(self._counts)})"
        )

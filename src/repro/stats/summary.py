"""Latency summary records.

A :class:`LatencySummary` is the common currency between the harness,
the simulator, and the experiment/benchmark code: one immutable record
holding mean and percentile latencies plus run metadata, buildable from
raw samples or an HDR histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from .hdr_histogram import HdrHistogram
from .percentiles import percentile

__all__ = ["LatencySummary", "format_latency"]

_DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 95.0, 99.0, 99.9)


def format_latency(seconds: float) -> str:
    """Human-readable latency, matching the paper's units (us/ms/s)."""
    if seconds < 0:
        raise ValueError("latency cannot be negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one measurement run (latencies in seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    percentiles: Dict[float, float] = field(default_factory=dict)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        pcts: Sequence[float] = _DEFAULT_PERCENTILES,
    ) -> "LatencySummary":
        if not samples:
            raise ValueError("cannot summarize zero samples")
        data = sorted(samples)
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            minimum=data[0],
            maximum=data[-1],
            percentiles={p: percentile(data, p) for p in pcts},
        )

    @classmethod
    def from_histogram(
        cls,
        hist: HdrHistogram,
        pcts: Sequence[float] = _DEFAULT_PERCENTILES,
    ) -> "LatencySummary":
        if hist.total_count == 0:
            raise ValueError("cannot summarize an empty histogram")
        return cls(
            count=hist.total_count,
            mean=hist.mean,
            minimum=hist.min,
            maximum=hist.max,
            percentiles={p: hist.percentile(p) for p in pcts},
        )

    @property
    def p50(self) -> float:
        return self.percentiles[50.0]

    @property
    def p95(self) -> float:
        return self.percentiles[95.0]

    @property
    def p99(self) -> float:
        return self.percentiles[99.0]

    def describe(self) -> str:
        parts = [f"n={self.count}", f"mean={format_latency(self.mean)}"]
        for p in sorted(self.percentiles):
            parts.append(f"p{p:g}={format_latency(self.percentiles[p])}")
        return " ".join(parts)

"""Repeated-run confidence-interval stopping rule.

TailBench counters per-run performance hysteresis by performing
repeated randomized runs and stopping once the 95% confidence interval
of every reported latency metric is within 1% of its point estimate
(Sec. IV-C). :class:`RunController` implements exactly that loop: feed
it one metric vector per run; it says whether more runs are needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["MetricEstimate", "RunController"]

# Two-sided Student-t critical values at 95% confidence, indexed by
# degrees of freedom (1..30). Beyond 30 dof the normal value is used.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_95 = 1.960


def _t_critical(dof: int) -> float:
    if dof < 1:
        raise ValueError("need at least 2 runs for a confidence interval")
    return _T_95.get(dof, _Z_95)


@dataclass(frozen=True)
class MetricEstimate:
    """Point estimate and CI half-width for one metric across runs."""

    name: str
    mean: float
    half_width: float
    n_runs: int

    @property
    def relative_half_width(self) -> float:
        if self.mean == 0:
            return 0.0 if self.half_width == 0 else math.inf
        return self.half_width / abs(self.mean)

    @property
    def interval(self) -> tuple:
        return (self.mean - self.half_width, self.mean + self.half_width)


class RunController:
    """Decides when enough repeated runs have been performed.

    Parameters
    ----------
    relative_precision:
        Target CI half-width as a fraction of the mean (paper: 0.01).
    min_runs / max_runs:
        Bounds on the number of runs. ``max_runs`` guards against
        pathological high-variance metrics never converging.
    """

    def __init__(
        self,
        relative_precision: float = 0.01,
        min_runs: int = 3,
        max_runs: int = 50,
    ) -> None:
        if relative_precision <= 0:
            raise ValueError("relative_precision must be positive")
        if min_runs < 2:
            raise ValueError("min_runs must be >= 2 (CIs need variance)")
        if max_runs < min_runs:
            raise ValueError("max_runs must be >= min_runs")
        self.relative_precision = relative_precision
        self.min_runs = min_runs
        self.max_runs = max_runs
        self._observations: Dict[str, List[float]] = {}
        self._n_runs = 0

    @property
    def n_runs(self) -> int:
        return self._n_runs

    def add_run(self, metrics: Dict[str, float]) -> None:
        """Record the metric vector of one completed run."""
        if not metrics:
            raise ValueError("a run must report at least one metric")
        if self._n_runs and set(metrics) != set(self._observations):
            raise ValueError("every run must report the same metrics")
        for name, value in metrics.items():
            self._observations.setdefault(name, []).append(float(value))
        self._n_runs += 1

    def estimate(self, name: str) -> MetricEstimate:
        values = self._observations.get(name)
        if not values:
            raise KeyError(f"no observations for metric {name!r}")
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return MetricEstimate(name, mean, math.inf, n)
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = _t_critical(n - 1) * math.sqrt(var / n)
        return MetricEstimate(name, mean, half, n)

    def estimates(self) -> Dict[str, MetricEstimate]:
        return {name: self.estimate(name) for name in self._observations}

    def converged(self) -> bool:
        """True once every metric's CI is within the precision target."""
        if self._n_runs < self.min_runs:
            return False
        return all(
            est.relative_half_width <= self.relative_precision
            for est in self.estimates().values()
        )

    def should_continue(self) -> bool:
        """True if another run is needed (and allowed)."""
        if self._n_runs >= self.max_runs:
            return False
        return not self.converged()

    def worst_metric(self) -> Optional[MetricEstimate]:
        """The metric farthest from convergence, or None before any runs."""
        ests = self.estimates()
        if not ests:
            return None
        return max(ests.values(), key=lambda e: e.relative_half_width)

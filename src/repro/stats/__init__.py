"""Statistics substrate: HDR histograms, samplers, quantile CIs.

These are the measurement primitives underneath the TailBench harness
(Sec. IV-C of the paper): high-dynamic-range latency histograms,
order-statistic percentile estimation with confidence intervals, the
repeated-run convergence controller, and the random-variate samplers
used for open-loop arrivals and service-time models.
"""

from .confidence import MetricEstimate, RunController
from .distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Exponential,
    Hyperexponential,
    LogNormal,
    MixtureDistribution,
    Pareto,
    ScaledDistribution,
    ShiftedDistribution,
    Uniform,
    ZipfianGenerator,
)
from .hdr_histogram import HdrHistogram
from .percentiles import (
    binomial_quantile_ci,
    bootstrap_ci,
    percentile,
    quantile,
    required_samples_for_quantile,
)
from .summary import LatencySummary, format_latency

__all__ = [
    "MetricEstimate",
    "RunController",
    "Deterministic",
    "Distribution",
    "Empirical",
    "Exponential",
    "Hyperexponential",
    "LogNormal",
    "MixtureDistribution",
    "Pareto",
    "ScaledDistribution",
    "ShiftedDistribution",
    "Uniform",
    "ZipfianGenerator",
    "HdrHistogram",
    "binomial_quantile_ci",
    "bootstrap_ci",
    "percentile",
    "quantile",
    "required_samples_for_quantile",
    "LatencySummary",
    "format_latency",
]

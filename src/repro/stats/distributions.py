"""Random-variate samplers used by the harness and the simulator.

The TailBench harness generates queries with exponentially distributed
interarrival times (open-loop Poisson arrivals, Sec. IV-A) and drives
xapian with Zipfian query popularity (Sec. III). The simulator needs a
richer family of service-time distributions to reproduce the per-app
service-time CDFs of Fig. 2: near-constant (masstree, img-dnn), broad
(xapian, moses), and narrow-body/long-tail (specjbb, shore).

All samplers take an explicit ``random.Random`` so that runs are
reproducible and independent streams can be derived per component.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "LogNormal",
    "Pareto",
    "Hyperexponential",
    "ShiftedDistribution",
    "ScaledDistribution",
    "MixtureDistribution",
    "Empirical",
    "ZipfianGenerator",
]


class Distribution:
    """A non-negative random variate with known first two moments."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def variance(self) -> float:
        raise NotImplementedError

    @property
    def second_moment(self) -> float:
        return self.variance + self.mean ** 2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation, ``Var / mean^2``."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return self.variance / (mean * mean)


class Deterministic(Distribution):
    """Always returns ``value`` — a degenerate distribution."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("value must be non-negative")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self.value:g})"


class Exponential(Distribution):
    """Exponential distribution with the given ``rate`` (1/mean)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        if mean <= 0:
            raise ValueError("mean must be positive")
        return cls(1.0 / mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate:g})"


class Uniform(Distribution):
    """Uniform distribution on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float) -> None:
        if lo < 0 or hi < lo:
            raise ValueError("need 0 <= lo <= hi")
        self.lo = float(lo)
        self.hi = float(hi)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def variance(self) -> float:
        return (self.hi - self.lo) ** 2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.lo:g}, {self.hi:g})"


class LogNormal(Distribution):
    """Log-normal distribution parameterized by its own mean and sigma.

    ``sigma`` is the shape parameter of the underlying normal; ``mean``
    is the mean of the log-normal itself (mu is derived). Larger sigma
    produces heavier right tails with the same mean, which is exactly
    the knob needed to reproduce the narrow-body/long-tail service-time
    shapes of specjbb and shore (Fig. 2).
    """

    def __init__(self, mean: float, sigma: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._mean = float(mean)
        self.sigma = float(sigma)
        self.mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return (math.exp(self.sigma ** 2) - 1.0) * self._mean ** 2

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean:g}, sigma={self.sigma:g})"


class Pareto(Distribution):
    """Pareto (type I) distribution with scale ``xm`` and shape ``alpha``.

    Heavy-tailed; requires ``alpha > 2`` for a finite variance.
    """

    def __init__(self, xm: float, alpha: float) -> None:
        if xm <= 0:
            raise ValueError("xm must be positive")
        if alpha <= 2:
            raise ValueError("alpha must exceed 2 for finite variance")
        self.xm = float(xm)
        self.alpha = float(alpha)

    def sample(self, rng: random.Random) -> float:
        return self.xm * (1.0 - rng.random()) ** (-1.0 / self.alpha)

    @property
    def mean(self) -> float:
        return self.alpha * self.xm / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        a = self.alpha
        return (self.xm ** 2 * a) / ((a - 1.0) ** 2 * (a - 2.0))

    def __repr__(self) -> str:
        return f"Pareto(xm={self.xm:g}, alpha={self.alpha:g})"


class Hyperexponential(Distribution):
    """Mixture of exponentials — high-variance service times.

    ``branches`` is a sequence of ``(probability, mean)`` pairs. The
    probabilities must sum to 1.
    """

    def __init__(self, branches: Sequence[tuple]) -> None:
        if not branches:
            raise ValueError("need at least one branch")
        total_p = sum(p for p, _ in branches)
        if abs(total_p - 1.0) > 1e-9:
            raise ValueError("branch probabilities must sum to 1")
        for p, m in branches:
            if p < 0 or m <= 0:
                raise ValueError("probabilities must be >= 0 and means > 0")
        self.branches = [(float(p), float(m)) for p, m in branches]
        self._cum = []
        acc = 0.0
        for p, _ in self.branches:
            acc += p
            self._cum.append(acc)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        i = bisect.bisect_left(self._cum, u)
        i = min(i, len(self.branches) - 1)
        return rng.expovariate(1.0 / self.branches[i][1])

    @property
    def mean(self) -> float:
        return sum(p * m for p, m in self.branches)

    @property
    def variance(self) -> float:
        second = sum(p * 2.0 * m * m for p, m in self.branches)
        return second - self.mean ** 2

    def __repr__(self) -> str:
        return f"Hyperexponential({self.branches!r})"


class ShiftedDistribution(Distribution):
    """``base + shift`` — adds a constant floor to every sample.

    Used to model a minimum per-request cost (e.g. fixed parsing work)
    below which no request can complete.
    """

    def __init__(self, base: Distribution, shift: float) -> None:
        if shift < 0:
            raise ValueError("shift must be non-negative")
        self.base = base
        self.shift = float(shift)

    def sample(self, rng: random.Random) -> float:
        return self.base.sample(rng) + self.shift

    @property
    def mean(self) -> float:
        return self.base.mean + self.shift

    @property
    def variance(self) -> float:
        return self.base.variance

    def __repr__(self) -> str:
        return f"ShiftedDistribution({self.base!r}, shift={self.shift:g})"


class ScaledDistribution(Distribution):
    """``base * factor`` — multiplicative slowdown/speedup.

    The simulator uses this to model zsim-style constant performance
    error (Sec. VI-B) and contention-induced service-time dilation.
    """

    def __init__(self, base: Distribution, factor: float) -> None:
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.base = base
        self.factor = float(factor)

    def sample(self, rng: random.Random) -> float:
        return self.base.sample(rng) * self.factor

    @property
    def mean(self) -> float:
        return self.base.mean * self.factor

    @property
    def variance(self) -> float:
        return self.base.variance * self.factor ** 2

    def __repr__(self) -> str:
        return f"ScaledDistribution({self.base!r}, factor={self.factor:g})"


class MixtureDistribution(Distribution):
    """Probabilistic mixture of arbitrary component distributions."""

    def __init__(self, components: Sequence[tuple]) -> None:
        if not components:
            raise ValueError("need at least one component")
        total_p = sum(p for p, _ in components)
        if abs(total_p - 1.0) > 1e-9:
            raise ValueError("component probabilities must sum to 1")
        self.components = [(float(p), d) for p, d in components]
        self._cum = []
        acc = 0.0
        for p, _ in self.components:
            acc += p
            self._cum.append(acc)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        i = bisect.bisect_left(self._cum, u)
        i = min(i, len(self.components) - 1)
        return self.components[i][1].sample(rng)

    @property
    def mean(self) -> float:
        return sum(p * d.mean for p, d in self.components)

    @property
    def variance(self) -> float:
        second = sum(p * d.second_moment for p, d in self.components)
        return second - self.mean ** 2

    def __repr__(self) -> str:
        return f"MixtureDistribution({self.components!r})"


class Empirical(Distribution):
    """Resamples uniformly from an observed set of values.

    Built from live measurements of the Python mini-apps; lets the
    simulator replay a measured service-time distribution exactly.
    """

    def __init__(self, values: Sequence[float]) -> None:
        if not values:
            raise ValueError("need at least one observation")
        vals = [float(v) for v in values]
        if any(v < 0 for v in vals):
            raise ValueError("observations must be non-negative")
        self.values: List[float] = sorted(vals)
        n = len(self.values)
        self._mean = sum(self.values) / n
        self._var = sum((v - self._mean) ** 2 for v in self.values) / n

    def sample(self, rng: random.Random) -> float:
        return self.values[rng.randrange(len(self.values))]

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._var

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        idx = min(len(self.values) - 1, int(q * len(self.values)))
        return self.values[idx]

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)}, mean={self._mean:g})"


class ZipfianGenerator:
    """Zipfian rank sampler over ``n`` items with exponent ``theta``.

    Online-search query popularity is well modelled by a Zipfian
    distribution (Sec. III, xapian). Rank 0 is the most popular item.
    Uses the classic inverse-CDF-over-harmonic-weights method with a
    precomputed cumulative table, so sampling is ``O(log n)``.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.n = int(n)
        self.theta = float(theta)
        weights = [1.0 / ((i + 1) ** theta) for i in range(self.n)]
        total = sum(weights)
        self._cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._cum[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        """Return a rank in ``[0, n)``; smaller ranks are more likely."""
        u = rng.random()
        return min(bisect.bisect_left(self._cum, u), self.n - 1)

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise ValueError("rank out of range")
        lo = self._cum[rank - 1] if rank > 0 else 0.0
        return self._cum[rank] - lo

"""Per-server admission gate: the data-plane end of admission control.

The gate sits on the queue's ``put`` path (live) / arrival event (sim)
and answers one question per arrival: *admit or shed?* It holds two
pieces of controller-owned state:

- the **AIMD concurrency limit** — arrivals finding ``depth >= limit``
  are shed (``drop_limit``);
- the **CoDel drop state** — while the controller holds the gate in
  the dropping state (head-of-line sojourn above target for a full
  interval), arrivals are shed with the classic CoDel spacing,
  ``interval / sqrt(drop_count)``, so the shed rate ramps up the
  longer the queue stays bad (``drop_codel``).

The gate itself never reads queues or metrics — the
:class:`~repro.control.controllers.AdmissionController` updates it on
every control tick. Decisions are pure functions of (now, depth,
gate state), so the simulator replays them deterministically.
"""

from __future__ import annotations

import math
import threading

from .config import AdmissionConfig

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Admit/shed decision point for one server instance."""

    def __init__(
        self,
        config: AdmissionConfig,
        server_id: int = 0,
        tracer=None,
    ) -> None:
        self._config = config
        self.server_id = server_id
        self._tracer = tracer
        self._lock = threading.Lock()
        self._limit = config.initial_limit
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.admitted = 0
        self.codel_dropped = 0
        self.limit_dropped = 0

    @property
    def limit(self) -> int:
        """Current AIMD depth limit."""
        return self._limit

    @property
    def dropping(self) -> bool:
        """True while the CoDel drop state is active."""
        return self._dropping

    # -- data plane (queue put path) -----------------------------------
    def admit(self, now: float, depth: int, request=None) -> bool:
        """Decide one arrival; True admits, False sheds.

        ``depth`` is the queue depth the arrival would join; the caller
        owes the client a shed response when False comes back (the
        queue marks the request shed, same contract as capacity
        shedding).
        """
        with self._lock:
            if depth >= self._limit:
                self.limit_dropped += 1
                verdict = "drop_limit"
            elif self._dropping and now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self._config.codel_interval / math.sqrt(
                    self._drop_count
                )
                self.codel_dropped += 1
                verdict = "drop_codel"
            else:
                self.admitted += 1
                verdict = "admit"
        if self._tracer is not None:
            self._tracer.emit(
                verdict,
                now,
                logical_id=getattr(request, "logical_id", None),
                request_id=getattr(request, "request_id", None),
                attempt=getattr(request, "attempt", None),
                server_id=self.server_id,
            )
        return verdict == "admit"

    # -- control plane (controller tick path) --------------------------
    def set_limit(self, limit: int, now: float) -> None:
        """Install a new AIMD limit (clamped to the configured band)."""
        limit = max(self._config.min_limit, min(self._config.max_limit, limit))
        with self._lock:
            changed = limit != self._limit
            self._limit = limit
        if changed and self._tracer is not None:
            self._tracer.emit(
                "limit_update", now, server_id=self.server_id,
                value=float(limit),
            )

    def set_dropping(self, dropping: bool, now: float) -> None:
        """Enter or leave the CoDel drop state.

        Entering arms an immediate first drop (``drop_next = now``),
        per CoDel: once the interval-long grace period has already
        passed, shedding starts without further delay.
        """
        with self._lock:
            if dropping and not self._dropping:
                self._dropping = True
                self._drop_count = 0
                self._drop_next = now
            elif not dropping and self._dropping:
                self._dropping = False

    def counts(self) -> dict:
        """Lifetime decision tallies (admitted / per-cause drops)."""
        with self._lock:
            return {
                "admitted": self.admitted,
                "codel_dropped": self.codel_dropped,
                "limit_dropped": self.limit_dropped,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionGate(server={self.server_id}, limit={self._limit}, "
            f"dropping={self._dropping})"
        )

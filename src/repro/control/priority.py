"""Request classification for priority scheduling.

The classifier assigns each outgoing request to one of the configured
:class:`~repro.control.config.RequestClassSpec` classes by its traffic
fraction, from a seeded stream — so a 90/10 latency-critical/batch
split is reproducible run to run, and the simulator's virtual-time
replay classifies the identical sequence of requests identically.
"""

from __future__ import annotations

import random
import threading

from .config import PriorityConfig

__all__ = ["ClassAssigner"]


class ClassAssigner:
    """Seeded, thread-safe traffic splitter over the configured classes."""

    def __init__(self, config: PriorityConfig, seed: int = 0) -> None:
        self._specs = config.classes
        self._rng = random.Random(seed ^ 0xC1A55)
        self._lock = threading.Lock()
        # Pre-compute the cumulative fraction boundaries once.
        self._bounds = []
        acc = 0.0
        for spec in self._specs:
            acc += spec.fraction
            self._bounds.append(acc)

    def classify(self, request) -> None:
        """Stamp ``priority`` and ``request_class`` onto one request."""
        with self._lock:
            u = self._rng.random()
        for bound, spec in zip(self._bounds, self._specs):
            if u < bound:
                request.priority = spec.priority
                request.request_class = spec.name
                return
        last = self._specs[-1]
        request.priority = last.priority
        request.request_class = last.name

"""The control plane: controllers bound to one serving stack.

:class:`ControlPlane` is the façade both execution modes share. It
owns the per-server :class:`~repro.control.gate.AdmissionGate`
objects, the request classifier, the windowed sojourn reservoir the
AIMD limiter reads, and the controller set; the harness binds it to a
:class:`LiveControlTarget` (wrapping the transport) and the simulator
to its virtual-time topology adapter. Controllers only ever see the
:class:`ControlTarget` interface, so live and simulated control
decisions run the identical code.

Signal flow per tick::

    queue snapshots ---\\
    busy/alive gauges ---> Controller.tick(now) --> gate limits,
    windowed p99 ------/                            drop states,
                                                    scale up/down

Every actuation emits a trace point event (``limit_update``,
``scale_up``, ``scale_down``; the gate emits ``admit`` /
``drop_codel`` / ``drop_limit`` per decision) through the
:mod:`repro.obs` tracer when one is installed, so controlled runs are
fully auditable from the trace alone.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..core.queueing import FifoBuffer, PriorityBuffer, QueueSnapshot
from ..stats import percentile
from .config import ControlPlaneConfig
from .controllers import AdmissionController, AutoscaleController, Controller
from .gate import AdmissionGate
from .priority import ClassAssigner

__all__ = ["ControlTarget", "ControlPlane", "LiveControlTarget"]


class ControlTarget:
    """What a serving stack must expose to be controlled.

    Implemented by :class:`LiveControlTarget` over the live transport
    and by the simulator's topology adapter — controllers are written
    against this interface only.
    """

    def active_servers(self) -> List[int]:
        """Ids of replicas currently accepting new work."""
        raise NotImplementedError

    def queue_snapshot(self, server_id: int, now: float) -> QueueSnapshot:
        """One replica's queue state (see :class:`QueueSnapshot`)."""
        raise NotImplementedError

    def server_load(self, server_id: int) -> Tuple[int, int, int]:
        """``(queue_depth, busy_workers, worker_count)`` for one replica."""
        raise NotImplementedError

    def gate(self, server_id: int) -> Optional[AdmissionGate]:
        """The replica's admission gate (None when admission is off)."""
        raise NotImplementedError

    def scale_up(self) -> Optional[int]:
        """Add a replica; returns its id (None when impossible)."""
        raise NotImplementedError

    def scale_down(self) -> Optional[int]:
        """Drain one replica; returns its id (None when impossible)."""
        raise NotImplementedError


class ControlPlane:
    """Controllers + gates + classifier for one run."""

    def __init__(
        self,
        config: ControlPlaneConfig,
        seed: int = 0,
        tracer=None,
    ) -> None:
        if not config.enabled:
            raise ValueError("ControlPlane requires an enabled config")
        self.config = config
        self._tracer = tracer
        self._gates: Dict[int, AdmissionGate] = {}
        self._gates_lock = threading.Lock()
        self._assigner = (
            ClassAssigner(config.priority, seed=seed ^ config.seed_salt)
            if config.priority is not None
            else None
        )
        self._window: List[float] = []
        self._window_lock = threading.Lock()
        self._target: Optional[ControlTarget] = None
        self._controllers: List[Controller] = []
        self._admission: Optional[AdmissionController] = None
        self._autoscaler: Optional[AutoscaleController] = None
        self.ticks = 0
        #: Per-tick trajectory: (now, aimd_limit_or_None, active_replicas).
        self.history: List[Tuple[float, Optional[int], int]] = []

    # -- wiring --------------------------------------------------------
    def bind(self, target: ControlTarget) -> None:
        """Attach the plane to a serving stack and build controllers."""
        self._target = target
        self._controllers = []
        if self.config.admission is not None:
            self._admission = AdmissionController(
                self.config.admission, target, self
            )
            self._controllers.append(self._admission)
        if self.config.autoscaler is not None:
            self._autoscaler = AutoscaleController(
                self.config.autoscaler, target, tracer=self._tracer
            )
            self._controllers.append(self._autoscaler)

    def register_metrics(self, registry) -> None:
        """Expose control state as gauges next to the PR 3 metrics."""
        if registry is None:
            return
        registry.gauge(
            "tb_control_limit",
            help="Current AIMD admission limit (per-server depth bound)",
            fn=(lambda: self._admission.limit if self._admission else 0),
        )
        registry.gauge(
            "tb_active_servers",
            help="Replicas currently accepting new work",
            fn=(
                lambda: len(self._target.active_servers())
                if self._target is not None
                else 0
            ),
        )
        registry.gauge(
            "tb_control_ticks",
            help="Control loop ticks executed",
            fn=(lambda: self.ticks),
        )

    def gate_for(self, server_id: int) -> Optional[AdmissionGate]:
        """Get-or-create the admission gate of one server instance."""
        if self.config.admission is None:
            return None
        with self._gates_lock:
            gate = self._gates.get(server_id)
            if gate is None:
                gate = AdmissionGate(
                    self.config.admission, server_id=server_id,
                    tracer=self._tracer,
                )
                self._gates[server_id] = gate
                if self._admission is not None:
                    gate.set_limit(self._admission.limit, 0.0)
            return gate

    def make_buffer(self):
        """Queue discipline for a (new) server instance's request queue."""
        priority = self.config.priority
        if priority is None:
            return FifoBuffer()
        return PriorityBuffer(
            mode=priority.mode,
            weights=priority.weights() if priority.mode == "weighted" else None,
        )

    def classify(self, request) -> None:
        """Stamp the request's class/priority (no-op without classes)."""
        if self._assigner is not None:
            self._assigner.classify(request)

    # -- signals -------------------------------------------------------
    def observe_sojourn(self, value: float) -> None:
        """Feed one completed request's sojourn into the AIMD window."""
        with self._window_lock:
            self._window.append(value)

    def window_p99(self) -> Optional[float]:
        """Drain the completion window; p99 of it (None when empty)."""
        with self._window_lock:
            window, self._window = self._window, []
        if not window:
            return None
        return percentile(window, 99.0)

    # -- the control tick ----------------------------------------------
    def tick(self, now: float) -> None:
        """Run every controller once; called at the fixed cadence."""
        if self._target is None:
            raise RuntimeError("control plane not bound to a target")
        self.ticks += 1
        for controller in self._controllers:
            controller.tick(now)
        self.history.append(
            (
                now,
                self._admission.limit if self._admission else None,
                len(self._target.active_servers()),
            )
        )

    def counts(self) -> Dict[str, int]:
        """Aggregate control-plane tallies for run results."""
        out: Dict[str, int] = {"ticks": self.ticks}
        with self._gates_lock:
            gates = list(self._gates.values())
        if gates:
            for key in ("admitted", "codel_dropped", "limit_dropped"):
                out[key] = sum(gate.counts()[key] for gate in gates)
        if self._admission is not None:
            out["final_limit"] = self._admission.limit
        if self._autoscaler is not None:
            out["scale_ups"] = self._autoscaler.scale_ups
            out["scale_downs"] = self._autoscaler.scale_downs
        if self._target is not None:
            out["active_servers"] = len(self._target.active_servers())
        return out


class LiveControlTarget(ControlTarget):
    """Bind the control plane to the live transport.

    Thin adapter: every signal read goes straight to the transport's
    instances (the same objects the :mod:`repro.obs` gauges observe),
    and scaling actions call the transport's runtime-membership API.
    """

    def __init__(self, transport, plane: ControlPlane) -> None:
        self._transport = transport
        self._plane = plane

    def active_servers(self) -> List[int]:
        return self._transport.active_server_ids()

    def queue_snapshot(self, server_id: int, now: float) -> QueueSnapshot:
        return self._transport.instances[server_id].queue.snapshot(now)

    def server_load(self, server_id: int) -> Tuple[int, int, int]:
        instance = self._transport.instances[server_id]
        server = instance.server
        return (len(instance.queue), server.busy_workers, server.alive_workers)

    def gate(self, server_id: int) -> Optional[AdmissionGate]:
        return self._plane.gate_for(server_id)

    def scale_up(self) -> Optional[int]:
        return self._transport.add_server()

    def scale_down(self) -> Optional[int]:
        return self._transport.drain_server()

"""Wall-clock control ticker for live harness runs.

Mirrors the :class:`repro.obs.metrics.MetricsSampler` shape: a daemon
thread that calls :meth:`ControlPlane.tick` at the configured cadence
until stopped. The simulator does not use this class — it schedules
recurring virtual-time tick events on its engine instead, so the same
controller code runs under both clocks.
"""

from __future__ import annotations

import threading

from .plane import ControlPlane

__all__ = ["ControlLoop"]


class ControlLoop:
    """Background thread ticking a bound control plane."""

    def __init__(self, plane: ControlPlane, clock=None) -> None:
        self._plane = plane
        self._interval = plane.config.tick_interval
        self._clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock.now()
        import time

        return time.monotonic()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._plane.tick(self._now())

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("control loop already started")
        self._thread = threading.Thread(
            target=self._run, name="control-loop", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

"""repro.control — SLO-driven control plane.

Closed-loop admission control (CoDel + AIMD), priority scheduling,
and replica autoscaling behind one :class:`Controller` interface,
running identically in the live harness and the discrete-event
simulator. See DESIGN.md §8.
"""

from .config import (
    NO_CONTROL,
    AdmissionConfig,
    AutoscalerConfig,
    ControlPlaneConfig,
    PriorityConfig,
    RequestClassSpec,
)
from .controllers import AdmissionController, AutoscaleController, Controller
from .gate import AdmissionGate
from .loop import ControlLoop
from .plane import ControlPlane, ControlTarget, LiveControlTarget
from .priority import ClassAssigner

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionGate",
    "AutoscaleController",
    "AutoscalerConfig",
    "ClassAssigner",
    "ControlLoop",
    "ControlPlane",
    "ControlPlaneConfig",
    "ControlTarget",
    "Controller",
    "LiveControlTarget",
    "NO_CONTROL",
    "PriorityConfig",
    "RequestClassSpec",
]

"""Control-plane configuration objects.

One frozen :class:`ControlPlaneConfig` describes the whole closed
loop: which controllers run (admission / priority / autoscaling),
their set-points, and the shared control-tick cadence. Everything is
off by default — a config with ``enabled=False`` constructs nothing
and every managed hot path sees ``None`` hooks, so unmanaged runs are
bit-identical to the pre-control-plane harness and simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "AdmissionConfig",
    "RequestClassSpec",
    "PriorityConfig",
    "AutoscalerConfig",
    "ControlPlaneConfig",
    "NO_CONTROL",
]


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission control: CoDel drop state + AIMD concurrency limit.

    Two cooperating mechanisms replace the static ``queue_capacity``
    bound:

    - **CoDel-style sojourn policing** [Nichols & Jacobson 2012]: when
      the head-of-line sojourn stays above ``codel_target`` for at
      least ``codel_interval``, the gate enters a drop state and sheds
      arrivals with the classic ``interval / sqrt(n)`` spacing until
      the sojourn recovers. This bounds *queueing delay* directly
      rather than queue length.
    - **AIMD concurrency limiting**: a per-server depth limit that
      additively grows by ``additive_increase`` while the observed
      windowed p99 sojourn is at or under ``target_p99``, and shrinks
      multiplicatively by ``multiplicative_decrease`` when it is
      above — the TCP-congestion-control shape applied to admission
      [Suresh et al., and Netflix concurrency-limits].
    """

    target_p99: float = 0.05
    codel_target: float = 0.02
    codel_interval: float = 0.1
    initial_limit: int = 64
    min_limit: int = 1
    max_limit: int = 4096
    additive_increase: int = 1
    multiplicative_decrease: float = 0.7

    def __post_init__(self) -> None:
        if self.target_p99 <= 0:
            raise ValueError("target_p99 must be positive")
        if self.codel_target <= 0 or self.codel_interval <= 0:
            raise ValueError("codel_target/codel_interval must be positive")
        if self.min_limit < 1:
            raise ValueError("min_limit must be >= 1")
        if self.max_limit < self.min_limit:
            raise ValueError("max_limit must be >= min_limit")
        if not self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("initial_limit must lie in [min_limit, max_limit]")
        if self.additive_increase < 1:
            raise ValueError("additive_increase must be >= 1")
        if not 0.0 < self.multiplicative_decrease < 1.0:
            raise ValueError("multiplicative_decrease must be in (0, 1)")


@dataclass(frozen=True)
class RequestClassSpec:
    """One request class: its share of traffic and scheduling weight.

    ``priority`` orders classes (higher = more urgent), ``weight``
    feeds the weighted discipline, and ``fraction`` is the share of
    offered traffic the seeded classifier assigns to this class.
    """

    name: str
    priority: int = 0
    weight: float = 1.0
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


@dataclass(frozen=True)
class PriorityConfig:
    """Priority scheduling policy: request classes plus the discipline.

    ``mode`` selects the :class:`~repro.core.queueing.PriorityBuffer`
    discipline: ``strict`` (latency-critical class always dequeues
    first; the batch class absorbs overload queueing and shedding) or
    ``weighted`` (smooth weighted round-robin by class weight).
    """

    classes: Tuple[RequestClassSpec, ...]
    mode: str = "strict"

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("priority scheduling needs at least one class")
        if self.mode not in ("strict", "weighted"):
            raise ValueError("mode must be 'strict' or 'weighted'")
        names = [spec.name for spec in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        total = sum(spec.fraction for spec in self.classes)
        if not 0.999 <= total <= 1.001:
            raise ValueError(
                f"class fractions must sum to 1.0 (got {total:g})"
            )

    def weights(self) -> dict:
        """``{priority: weight}`` map for the weighted discipline."""
        return {spec.priority: spec.weight for spec in self.classes}


@dataclass(frozen=True)
class AutoscalerConfig:
    """Replica autoscaling: thresholds, hysteresis, and cooldown.

    The scaling signals are the same gauges :mod:`repro.obs` exports —
    mean queue depth per active replica (scale up when above
    ``scale_up_depth``) and mean worker utilization (scale down when
    below ``scale_down_util``). ``hysteresis_ticks`` consecutive
    breaching ticks are required before acting, and ``cooldown``
    seconds must pass between actions, so transient bursts do not
    thrash the replica set.

    The utilization signal is sampled instantaneously at each tick —
    with one worker it is literally 0 or 1 — so the scale-down path
    compares against an exponentially-smoothed value
    (``util_smoothing`` is the EWMA weight of the newest sample).
    A few idle samples in a row at moderate load must not read as
    "underutilized"; only a genuinely sustained idle fraction should.
    """

    min_servers: int = 1
    max_servers: int = 4
    scale_up_depth: float = 8.0
    scale_down_util: float = 0.25
    hysteresis_ticks: int = 3
    cooldown: float = 0.5
    util_smoothing: float = 0.2

    def __post_init__(self) -> None:
        if self.min_servers < 1:
            raise ValueError("min_servers must be >= 1")
        if self.max_servers < self.min_servers:
            raise ValueError("max_servers must be >= min_servers")
        if self.scale_up_depth <= 0:
            raise ValueError("scale_up_depth must be positive")
        if not 0.0 <= self.scale_down_util < 1.0:
            raise ValueError("scale_down_util must be in [0, 1)")
        if self.hysteresis_ticks < 1:
            raise ValueError("hysteresis_ticks must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if not 0.0 < self.util_smoothing <= 1.0:
            raise ValueError("util_smoothing must be in (0, 1]")


@dataclass(frozen=True)
class ControlPlaneConfig:
    """The whole control plane for one run.

    ``tick_interval`` is the shared control cadence: every controller's
    :meth:`~repro.control.controllers.Controller.tick` runs at this
    fixed interval — a background thread in the live harness, a
    recurring virtual-time event in the simulator — so control
    decisions are comparable (and, in the simulator, deterministic)
    across modes.
    """

    enabled: bool = False
    tick_interval: float = 0.05
    admission: Optional[AdmissionConfig] = None
    priority: Optional[PriorityConfig] = None
    autoscaler: Optional[AutoscalerConfig] = None
    #: Seed offset for the control plane's own random streams (the
    #: request classifier); combined with the run seed.
    seed_salt: int = field(default=0x0C7A1, repr=False)

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.enabled and not (
            self.admission or self.priority or self.autoscaler
        ):
            raise ValueError(
                "control plane enabled but no controller configured "
                "(set admission=, priority=, and/or autoscaler=)"
            )


#: Default: control plane entirely off (hot paths stay bare).
NO_CONTROL = ControlPlaneConfig()

"""The three controllers behind the shared ``Controller`` interface.

Each controller is a pure tick-driven state machine: it reads signals
through a :class:`~repro.control.plane.ControlTarget` (queue
snapshots, per-server load, the windowed sojourn p99 — the same
signals the :mod:`repro.obs` gauges export), mutates its own state,
and pushes decisions back out (gate limits, drop states, scaling
actions). Nothing here threads or schedules: the
:class:`~repro.control.loop.ControlLoop` ticks controllers on a wall-
clock thread in live runs, and the simulator ticks them as recurring
virtual-time events — identical control logic in both modes, which is
what makes simulated control-plane results trustworthy stand-ins for
live ones.
"""

from __future__ import annotations

from typing import Dict, Optional

from .config import AdmissionConfig, AutoscalerConfig

__all__ = ["Controller", "AdmissionController", "AutoscaleController"]


class Controller:
    """One closed-loop controller ticked at the shared control cadence."""

    #: Display/registry name; subclasses override.
    name: str = "base"

    def tick(self, now: float) -> None:
        """Run one control interval: read signals, update actuators."""
        raise NotImplementedError


class AdmissionController(Controller):
    """CoDel drop-state management plus AIMD concurrency limiting.

    Per tick, for every active server:

    1. Read the queue snapshot. If the head-of-line sojourn has been
       above ``codel_target`` continuously for ``codel_interval``,
       put that server's gate into the CoDel drop state; the first
       tick at or under the target releases it.
    2. Read the run's windowed p99 sojourn (completions since the last
       tick). Above ``target_p99``: multiplicative decrease of the
       shared limit. At or under: additive increase. The new limit is
       installed on every gate as a per-server depth bound.
    """

    name = "admission"

    def __init__(self, config: AdmissionConfig, target, signals) -> None:
        self._config = config
        self._target = target
        self._signals = signals
        self._limit = config.initial_limit
        #: server_id -> instant its head sojourn first exceeded target.
        self._above_since: Dict[int, float] = {}

    @property
    def limit(self) -> int:
        """Current AIMD limit (shared across server gates)."""
        return self._limit

    def tick(self, now: float) -> None:
        config = self._config
        active = self._target.active_servers()
        for server_id in active:
            gate = self._target.gate(server_id)
            if gate is None:
                continue
            snap = self._target.queue_snapshot(server_id, now)
            if snap.head_sojourn > config.codel_target:
                first = self._above_since.setdefault(server_id, now)
                if now - first >= config.codel_interval and not gate.dropping:
                    gate.set_dropping(True, now)
            else:
                self._above_since.pop(server_id, None)
                if gate.dropping:
                    gate.set_dropping(False, now)
        p99 = self._signals.window_p99()
        if p99 is not None:
            if p99 > config.target_p99:
                self._limit = max(
                    config.min_limit,
                    int(self._limit * config.multiplicative_decrease),
                )
            else:
                self._limit = min(
                    config.max_limit, self._limit + config.additive_increase
                )
            for server_id in active:
                gate = self._target.gate(server_id)
                if gate is not None:
                    gate.set_limit(self._limit, now)


class AutoscaleController(Controller):
    """Grow/shrink the replica set on queue-depth and utilization.

    Scale-up when the mean queue depth per active replica exceeds
    ``scale_up_depth``; scale-down when the *smoothed* mean worker
    utilization falls below ``scale_down_util``. Queue depth is acted
    on raw — backlog is a persistent signal and scale-up should be
    prompt — while utilization is an EWMA over ticks, because the
    instantaneous busy-worker count is a 0/1-per-worker sample whose
    noise would otherwise fake an idle system at moderate load. Both
    directions require ``hysteresis_ticks`` consecutive breaching
    ticks (a single bursty sample never scales) and respect a shared
    ``cooldown`` between actions (a fresh replica gets time to absorb
    load before the next decision — classic up/down hysteresis so the
    replica count never oscillates around a threshold).
    """

    name = "autoscaler"

    def __init__(self, config: AutoscalerConfig, target, tracer=None) -> None:
        self._config = config
        self._target = target
        self._tracer = tracer
        self._up_streak = 0
        self._down_streak = 0
        self._last_action: Optional[float] = None
        # Start the smoothed utilization at 1.0 (fully busy) so a run's
        # first few ticks can never read as an idle system.
        self._util_ewma = 1.0
        self.scale_ups = 0
        self.scale_downs = 0

    def _in_cooldown(self, now: float) -> bool:
        return (
            self._last_action is not None
            and now - self._last_action < self._config.cooldown
        )

    def tick(self, now: float) -> None:
        config = self._config
        active = self._target.active_servers()
        n = len(active)
        if n == 0:
            return
        depth_total = 0.0
        util_total = 0.0
        for server_id in active:
            depth, busy, workers = self._target.server_load(server_id)
            depth_total += depth
            util_total += busy / workers if workers else 0.0
        mean_depth = depth_total / n
        alpha = config.util_smoothing
        self._util_ewma += alpha * (util_total / n - self._util_ewma)
        if mean_depth > config.scale_up_depth:
            self._up_streak += 1
            self._down_streak = 0
        elif self._util_ewma < config.scale_down_util:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
        if (
            self._up_streak >= config.hysteresis_ticks
            and n < config.max_servers
            and not self._in_cooldown(now)
        ):
            server_id = self._target.scale_up()
            if server_id is not None:
                self.scale_ups += 1
                self._last_action = now
                self._up_streak = 0
                if self._tracer is not None:
                    self._tracer.emit(
                        "scale_up", now, server_id=server_id,
                        value=float(n + 1),
                    )
        elif (
            self._down_streak >= config.hysteresis_ticks
            and n > config.min_servers
            and not self._in_cooldown(now)
        ):
            server_id = self._target.scale_down()
            if server_id is not None:
                self.scale_downs += 1
                self._last_action = now
                self._down_streak = 0
                if self._tracer is not None:
                    self._tracer.emit(
                        "scale_down", now, server_id=server_id,
                        value=float(n - 1),
                    )

"""The eight TailBench applications (Table I of the paper), plus the
vsearch extension — sharded IVF vector search, the suite's ninth app.

Every application implements :class:`~repro.apps.base.Application` and
registers a factory here, so experiment drivers can instantiate the
whole suite by name::

    from repro.apps import create_app
    app = create_app("xapian")
    app.setup()

Factories accept keyword overrides for dataset sizes etc.; defaults are
sized for interactive use on a laptop.
"""

from .base import (
    Application,
    Client,
    ShardedApp,
    app_names,
    create_app,
    register_app,
)
from .img_dnn import ImgDnnApp
from .masstree import MasstreeApp
from .moses import MosesApp
from .shore import ShoreApp
from .silo import SiloApp
from .specjbb import SpecJbbApp
from .sphinx import SphinxApp
from .vsearch import VsearchApp
from .xapian import XapianApp

register_app("xapian", XapianApp)
register_app("masstree", MasstreeApp)
register_app("moses", MosesApp)
register_app("sphinx", SphinxApp)
register_app("img-dnn", ImgDnnApp)
register_app("specjbb", SpecJbbApp)
register_app("silo", SiloApp)
register_app("shore", ShoreApp)
register_app("vsearch", VsearchApp)

__all__ = [
    "Application",
    "Client",
    "ShardedApp",
    "app_names",
    "create_app",
    "register_app",
    "XapianApp",
    "MasstreeApp",
    "MosesApp",
    "SphinxApp",
    "ImgDnnApp",
    "SpecJbbApp",
    "SiloApp",
    "ShoreApp",
    "VsearchApp",
]

"""moses: the real-time statistical machine translation application."""

from __future__ import annotations

import random
from typing import Tuple

from ..base import Application, Client
from .corpus import ParallelCorpus
from .decoder import StackDecoder, Translation
from .lm import NGramLanguageModel
from .phrase_table import PhraseTable

__all__ = ["MosesApp", "MosesClient"]


class MosesClient(Client):
    """Draws dialogue-snippet source sentences to translate."""

    def __init__(self, corpus: ParallelCorpus, seed: int = 0) -> None:
        self._corpus = corpus
        self._rng = random.Random(seed)

    def next_request(self) -> Tuple[str, ...]:
        return self._corpus.sample_source_sentence(self._rng)


class MosesApp(Application):
    """Phrase-based SMT decoder trained on a synthetic bitext.

    Requests are source-token tuples; responses are
    :class:`Translation` results. Model state is immutable after
    setup, so concurrent decoding threads share it safely.
    """

    name = "moses"
    domain = "Real-Time Translation"

    def __init__(
        self,
        vocab_size: int = 400,
        n_sentences: int = 2000,
        stack_size: int = 20,
        seed: int = 0,
    ) -> None:
        self._corpus = ParallelCorpus(
            vocab_size=vocab_size, n_sentences=n_sentences, seed=seed
        )
        self._stack_size = stack_size
        self._decoder: StackDecoder = None

    def setup(self) -> None:
        pairs = self._corpus.sentence_pairs()
        table = PhraseTable()
        table.build(pairs)
        lm = NGramLanguageModel(order=3)
        lm.train(pair.target for pair in pairs)
        self._decoder = StackDecoder(table, lm, stack_size=self._stack_size)

    @property
    def decoder(self) -> StackDecoder:
        if self._decoder is None:
            raise RuntimeError("call setup() first")
        return self._decoder

    def process(self, payload) -> Translation:
        return self.decoder.decode(payload)

    def make_client(self, seed: int = 0) -> MosesClient:
        return MosesClient(self._corpus, seed=seed)

"""N-gram language model with interpolated backoff.

Scores target-side fluency during decoding. Trained on the target side
of the parallel corpus; uses Jelinek-Mercer interpolation across
orders (trigram -> bigram -> unigram -> uniform), all in log space.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence, Tuple

__all__ = ["NGramLanguageModel", "BOS", "EOS"]

BOS = "<s>"
EOS = "</s>"


class NGramLanguageModel:
    """Interpolated n-gram LM over token sequences.

    Parameters
    ----------
    order:
        Maximum n-gram order (3 = trigram).
    lambdas:
        Interpolation weights, highest order first; must sum to < 1,
        the remainder going to the uniform floor.
    """

    def __init__(
        self, order: int = 3, lambdas: Sequence[float] = (0.6, 0.25, 0.1)
    ) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if len(lambdas) != order:
            raise ValueError("need one lambda per order")
        if sum(lambdas) >= 1.0 or any(l < 0 for l in lambdas):
            raise ValueError("lambdas must be non-negative and sum to < 1")
        self.order = order
        self.lambdas = tuple(lambdas)
        self._counts: Dict[int, Counter] = {n: Counter() for n in range(1, order + 1)}
        self._context_totals: Dict[int, Counter] = {
            n: Counter() for n in range(1, order + 1)
        }
        self._vocab = set()
        self._trained = False

    def train(self, sentences) -> None:
        """Count n-grams over an iterable of token sequences."""
        for sentence in sentences:
            tokens = [BOS] * (self.order - 1) + list(sentence) + [EOS]
            self._vocab.update(tokens)
            for n in range(1, self.order + 1):
                for i in range(len(tokens) - n + 1):
                    gram = tuple(tokens[i : i + n])
                    self._counts[n][gram] += 1
                    self._context_totals[n][gram[:-1]] += 1
        self._trained = True

    @property
    def vocab_size(self) -> int:
        return max(1, len(self._vocab))

    def _order_prob(self, gram: Tuple[str, ...]) -> float:
        n = len(gram)
        count = self._counts[n].get(gram, 0)
        context = self._context_totals[n].get(gram[:-1], 0)
        if context == 0:
            return 0.0
        return count / context

    def prob(self, word: str, context: Tuple[str, ...]) -> float:
        """Interpolated P(word | context)."""
        if not self._trained:
            raise RuntimeError("train() the model first")
        context = tuple(context)[-(self.order - 1) :] if self.order > 1 else ()
        p = (1.0 - sum(self.lambdas)) / self.vocab_size  # uniform floor
        for i, lam in enumerate(self.lambdas):
            n = self.order - i
            if n == 1:
                gram = (word,)
            else:
                ctx = context[-(n - 1) :]
                if len(ctx) < n - 1:
                    ctx = (BOS,) * (n - 1 - len(ctx)) + ctx
                gram = ctx + (word,)
            p += lam * self._order_prob(gram)
        return p

    def logprob(self, word: str, context: Tuple[str, ...]) -> float:
        return math.log(self.prob(word, context))

    def sentence_logprob(self, tokens: Sequence[str]) -> float:
        """Total log P of a sentence including the end-of-sentence event."""
        history: Tuple[str, ...] = (BOS,) * (self.order - 1)
        total = 0.0
        for word in list(tokens) + [EOS]:
            total += self.logprob(word, history)
            history = (history + (word,))[-(self.order - 1) :] if self.order > 1 else ()
        return total

"""moses: statistical machine translation (phrase-based stack decoder)."""

from .app import MosesApp, MosesClient
from .corpus import ParallelCorpus, SentencePair
from .decoder import StackDecoder, Translation
from .lm import BOS, EOS, NGramLanguageModel
from .phrase_table import PhraseOption, PhraseTable

__all__ = [
    "MosesApp",
    "MosesClient",
    "ParallelCorpus",
    "SentencePair",
    "StackDecoder",
    "Translation",
    "BOS",
    "EOS",
    "NGramLanguageModel",
    "PhraseOption",
    "PhraseTable",
]

"""Phrase-based beam-search stack decoder.

The moses decoding algorithm [Koehn et al., ACL 2007]: hypotheses
cover subsets of source positions (a bitmask); stacks are indexed by
number of covered words; each expansion applies a translation option
over an uncovered span within a distortion limit; hypotheses are
scored by translation model + language model + distortion penalty and
histogram-pruned per stack. Decoding work grows with sentence length
and stack size, which is what gives moses its broad service-time
distribution (Fig. 2) and its sensitivity to memory-system contention
(Sec. VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .lm import BOS, NGramLanguageModel
from .phrase_table import PhraseTable

__all__ = ["Translation", "StackDecoder"]


@dataclass(frozen=True)
class Translation:
    """Decoder output: best target sentence and its model score."""

    target: Tuple[str, ...]
    score: float
    n_hypotheses: int


@dataclass(frozen=True)
class _Hypothesis:
    coverage: int  # bitmask of translated source positions
    n_covered: int
    last_end: int  # source position after the last translated phrase
    context: Tuple[str, ...]  # LM context (last order-1 target words)
    output: Tuple[str, ...]
    score: float


class StackDecoder:
    """Beam-search stack decoding over a phrase table and an LM.

    Parameters
    ----------
    stack_size:
        Histogram pruning limit: hypotheses kept per stack.
    distortion_limit:
        Maximum jump between the end of the previous phrase and the
        start of the next one.
    distortion_penalty:
        Per-position reordering cost (negative log-linear weight).
    """

    def __init__(
        self,
        phrase_table: PhraseTable,
        language_model: NGramLanguageModel,
        stack_size: int = 20,
        distortion_limit: int = 3,
        distortion_penalty: float = 0.5,
    ) -> None:
        if stack_size < 1:
            raise ValueError("stack_size must be >= 1")
        if distortion_limit < 0 or distortion_penalty < 0:
            raise ValueError("distortion parameters must be non-negative")
        self.phrase_table = phrase_table
        self.language_model = language_model
        self.stack_size = stack_size
        self.distortion_limit = distortion_limit
        self.distortion_penalty = distortion_penalty

    def decode(self, sentence: Sequence[str]) -> Translation:
        sentence = tuple(sentence)
        if not sentence:
            return Translation((), 0.0, 0)
        n = len(sentence)
        span_options = self.phrase_table.lookup_all(sentence)
        order = self.language_model.order
        initial_ctx = (BOS,) * (order - 1) if order > 1 else ()
        stacks: List[Dict[Tuple[int, Tuple[str, ...]], _Hypothesis]] = [
            {} for _ in range(n + 1)
        ]
        root = _Hypothesis(0, 0, 0, initial_ctx, (), 0.0)
        stacks[0][(0, initial_ctx)] = root
        n_hyps = 1

        for covered in range(n):
            stack = stacks[covered]
            if not stack:
                continue
            # Histogram pruning: keep the best stack_size hypotheses.
            survivors = sorted(
                stack.values(), key=lambda h: h.score, reverse=True
            )[: self.stack_size]
            for hyp in survivors:
                for (start, end), options in span_options.items():
                    if self._blocked(hyp, start, end, n):
                        continue
                    for option in options:
                        new_hyp = self._extend(hyp, start, end, option)
                        n_hyps += 1
                        key = (new_hyp.coverage, new_hyp.context)
                        bucket = stacks[new_hyp.n_covered]
                        existing = bucket.get(key)
                        if existing is None or new_hyp.score > existing.score:
                            bucket[key] = new_hyp  # recombination

        final = stacks[n]
        if not final:  # pragma: no cover - pass-through options prevent this
            return Translation(sentence, float("-inf"), n_hyps)
        best = max(final.values(), key=lambda h: h.score)
        # Close the sentence under the LM (end-of-sentence event).
        eos_bonus = self.language_model.logprob("</s>", best.context)
        return Translation(best.output, best.score + eos_bonus, n_hyps)

    def _blocked(self, hyp: _Hypothesis, start: int, end: int, n: int) -> bool:
        span_mask = ((1 << (end - start)) - 1) << start
        if hyp.coverage & span_mask:
            return True  # overlaps already-translated positions
        if abs(start - hyp.last_end) > self.distortion_limit:
            return True
        return False

    def _extend(
        self, hyp: _Hypothesis, start: int, end: int, option
    ) -> _Hypothesis:
        lm_score = 0.0
        context = hyp.context
        order = self.language_model.order
        for word in option.target:
            lm_score += self.language_model.logprob(word, context)
            if order > 1:
                context = (context + (word,))[-(order - 1) :]
        distortion = -self.distortion_penalty * abs(start - hyp.last_end)
        span_mask = ((1 << (end - start)) - 1) << start
        return _Hypothesis(
            coverage=hyp.coverage | span_mask,
            n_covered=hyp.n_covered + (end - start),
            last_end=end,
            context=context,
            output=hyp.output + option.target,
            score=hyp.score + option.log_prob + lm_score + distortion,
        )

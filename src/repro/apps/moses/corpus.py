"""Synthetic parallel corpus for the SMT system.

The paper trains moses on the opensubtitles.org English-Spanish
corpus. Offline, we synthesize a parallel corpus over two artificial
languages with a known word-level translation relation plus local
reorderings and one-to-many mappings — enough structure for phrase
extraction and language-model training to do real work, and for
decoding cost to vary with sentence length exactly as in the paper's
dialogue snippets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["SentencePair", "ParallelCorpus"]

_SRC_PREFIX = "s"
_TGT_PREFIX = "t"


@dataclass(frozen=True)
class SentencePair:
    """One aligned sentence pair (token lists)."""

    source: Tuple[str, ...]
    target: Tuple[str, ...]


class ParallelCorpus:
    """Deterministic synthetic bitext.

    Source vocabulary ``s0..s{V-1}``; each source word translates to
    one of a couple of target candidates (Zipf-weighted). Sentences
    have dialogue-like lengths (geometric, mean ~8 tokens); adjacent
    word pairs are occasionally swapped on the target side so phrase
    extraction learns multi-word units and the decoder's reordering
    machinery is exercised.
    """

    def __init__(
        self,
        vocab_size: int = 400,
        n_sentences: int = 2000,
        mean_len: float = 8.0,
        seed: int = 0,
    ) -> None:
        if vocab_size < 10 or n_sentences < 10:
            raise ValueError("corpus too small")
        if mean_len < 2:
            raise ValueError("mean_len must be >= 2")
        self.vocab_size = vocab_size
        self.n_sentences = n_sentences
        self.mean_len = mean_len
        self.seed = seed
        rng = random.Random(seed)
        # Each source word gets 1-2 target translations with weights.
        self._translations = {}
        for i in range(vocab_size):
            src = f"{_SRC_PREFIX}{i}"
            primary = f"{_TGT_PREFIX}{i}"
            options = [(primary, 0.85)]
            if rng.random() < 0.4:
                alt = f"{_TGT_PREFIX}{rng.randrange(vocab_size)}x"
                options = [(primary, 0.7), (alt, 0.3)]
            self._translations[src] = options

    @property
    def source_vocabulary(self) -> List[str]:
        return [f"{_SRC_PREFIX}{i}" for i in range(self.vocab_size)]

    def _sample_sentence(self, rng: random.Random) -> SentencePair:
        length = 1
        while rng.random() > 1.0 / self.mean_len and length < 40:
            length += 1
        # Zipfian word choice: common words dominate, as in real text.
        src = []
        for _ in range(length):
            r = rng.random()
            idx = int(self.vocab_size * r * r)  # quadratic skew
            src.append(f"{_SRC_PREFIX}{min(idx, self.vocab_size - 1)}")
        tgt = []
        for word in src:
            options = self._translations[word]
            u = rng.random()
            acc = 0.0
            chosen = options[-1][0]
            for cand, p in options:
                acc += p
                if u < acc:
                    chosen = cand
                    break
            tgt.append(chosen)
        # Local reorder: swap some adjacent target pairs.
        i = 0
        while i + 1 < len(tgt):
            if rng.random() < 0.15:
                tgt[i], tgt[i + 1] = tgt[i + 1], tgt[i]
                i += 2
            else:
                i += 1
        return SentencePair(tuple(src), tuple(tgt))

    def sentence_pairs(self) -> List[SentencePair]:
        rng = random.Random(self.seed + 1)
        return [self._sample_sentence(rng) for _ in range(self.n_sentences)]

    def sample_source_sentence(self, rng: random.Random) -> Tuple[str, ...]:
        """Draw a fresh source sentence (a 'dialogue snippet' request)."""
        return self._sample_sentence(rng).source

"""Phrase table extraction and storage.

Builds the translation model of the phrase-based decoder: contiguous
source phrases up to a maximum length paired with target phrases, with
maximum-likelihood translation log-probabilities. Extraction follows
the standard recipe — align the bitext (here with the corpus's
monotone-with-local-swaps structure, a window-based heuristic aligner
suffices), enumerate consistent phrase pairs, and relative-frequency
score them.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .corpus import SentencePair

__all__ = ["PhraseOption", "PhraseTable"]


@dataclass(frozen=True)
class PhraseOption:
    """One translation option for a source phrase."""

    target: Tuple[str, ...]
    log_prob: float


class PhraseTable:
    """Source phrase -> ranked translation options.

    Parameters
    ----------
    max_phrase_len:
        Maximum source/target phrase length extracted.
    max_options:
        Translation options kept per source phrase (the rest are
        pruned, as in moses's ttable-limit).
    """

    def __init__(self, max_phrase_len: int = 3, max_options: int = 5) -> None:
        if max_phrase_len < 1 or max_options < 1:
            raise ValueError("invalid phrase table parameters")
        self.max_phrase_len = max_phrase_len
        self.max_options = max_options
        self._table: Dict[Tuple[str, ...], List[PhraseOption]] = {}

    def build(self, pairs: Sequence[SentencePair]) -> None:
        cooc: Dict[Tuple[str, ...], Counter] = defaultdict(Counter)
        src_counts: Counter = Counter()
        for pair in pairs:
            for s_start, s_end, t_start, t_end in self._aligned_spans(pair):
                src = pair.source[s_start:s_end]
                tgt = pair.target[t_start:t_end]
                cooc[src][tgt] += 1
                src_counts[src] += 1
        table = {}
        for src, tgt_counts in cooc.items():
            total = src_counts[src]
            options = [
                PhraseOption(tgt, math.log(count / total))
                for tgt, count in tgt_counts.most_common(self.max_options)
            ]
            table[src] = options
        self._table = table

    def _aligned_spans(self, pair: SentencePair):
        """Yield consistent phrase spans from a window-based alignment.

        The synthetic corpus is monotone with local swaps, so source
        position i aligns within a +/-1 window on the target side.
        Phrase pairs are emitted for every co-extensive window up to
        ``max_phrase_len`` where source and target spans cover each
        other.
        """
        n = min(len(pair.source), len(pair.target))
        for start in range(n):
            for length in range(1, self.max_phrase_len + 1):
                end = start + length
                if end > n:
                    break
                yield start, end, start, end

    # -- queries --------------------------------------------------------
    def options(self, phrase: Sequence[str]) -> List[PhraseOption]:
        return list(self._table.get(tuple(phrase), ()))

    def __contains__(self, phrase) -> bool:
        return tuple(phrase) in self._table

    def __len__(self) -> int:
        return len(self._table)

    def lookup_all(
        self, sentence: Sequence[str]
    ) -> Dict[Tuple[int, int], List[PhraseOption]]:
        """All translation options for every span of ``sentence``.

        Unknown single words get a pass-through option (moses's
        unknown-word handling) with a fixed penalty, so decoding never
        dead-ends.
        """
        sentence = tuple(sentence)
        spans: Dict[Tuple[int, int], List[PhraseOption]] = {}
        for start in range(len(sentence)):
            for length in range(1, self.max_phrase_len + 1):
                end = start + length
                if end > len(sentence):
                    break
                opts = self.options(sentence[start:end])
                if opts:
                    spans[(start, end)] = opts
            if (start, start + 1) not in spans:
                spans[(start, start + 1)] = [
                    PhraseOption((sentence[start],), math.log(1e-4))
                ]
        return spans

"""TPC-C schema and initial population for the silo engine.

Tables follow the TPC-C entity layout with composite tuple keys.
Partition functions put each district's rows in their own partition so
OCC phantom validation only conflicts within a district — matching
TPC-C's access locality and Silo's low-contention design point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...workloads.tpcc import TpccScale, make_last_name
from .occ import Database, Table

__all__ = ["TpccTables", "populate"]

#: Sentinel larger than any real id in tuple-key range scans.
MAX_ID = 1 << 40


@dataclass
class TpccTables:
    """Handles to all TPC-C tables in one database."""

    warehouse: Table
    district: Table
    customer: Table
    customer_name_index: Table
    customer_order_index: Table
    item: Table
    stock: Table
    orders: Table
    new_orders: Table
    order_lines: Table
    history: Table

    @classmethod
    def create(cls, db: Database) -> "TpccTables":
        by_district = lambda key: key[:2]  # noqa: E731 - tiny key fn
        return cls(
            warehouse=db.create_table("warehouse"),
            district=db.create_table("district", lambda key: key),
            customer=db.create_table("customer", by_district),
            customer_name_index=db.create_table(
                "customer_name_index", by_district
            ),
            customer_order_index=db.create_table(
                "customer_order_index", lambda key: key[:3]
            ),
            item=db.create_table("item"),
            stock=db.create_table("stock", lambda key: key[0]),
            orders=db.create_table("orders", by_district),
            new_orders=db.create_table("new_orders", by_district),
            order_lines=db.create_table("order_lines", by_district),
            history=db.create_table("history", by_district),
        )


def populate(tables: TpccTables, scale: TpccScale, seed: int = 0) -> None:
    """Load the initial TPC-C dataset (non-transactionally, pre-run).

    The last third of each district's initial orders are left
    undelivered (present in NEW-ORDER), providing work for delivery
    transactions, per the TPC-C initial-state rules (scaled).
    """
    rng = random.Random(seed)
    for i in range(1, scale.items + 1):
        tables.item.load(
            i, {"name": f"item-{i}", "price": round(rng.uniform(1.0, 100.0), 2)}
        )
    for w in range(1, scale.warehouses + 1):
        tables.warehouse.load(w, {"name": f"warehouse-{w}", "ytd": 0.0})
        for i in range(1, scale.items + 1):
            tables.stock.load(
                (w, i),
                {"quantity": rng.randint(10, 100), "ytd": 0, "order_cnt": 0},
            )
        for d in range(1, scale.districts_per_warehouse + 1):
            n_orders = scale.initial_orders_per_district
            tables.district.load(
                (w, d),
                {"name": f"district-{w}-{d}", "ytd": 0.0, "next_o_id": n_orders + 1},
            )
            for c in range(1, scale.customers_per_district + 1):
                last = make_last_name((c - 1) % 1000)
                tables.customer.load(
                    (w, d, c),
                    {
                        "first": f"first-{c}",
                        "last": last,
                        "balance": -10.0,
                        "ytd_payment": 10.0,
                        "payment_cnt": 1,
                        "delivery_cnt": 0,
                    },
                )
                tables.customer_name_index.load((w, d, last, c), c)
            # Initial orders: one per customer, shuffled, oldest first.
            customers = list(range(1, scale.customers_per_district + 1))
            rng.shuffle(customers)
            delivered_cutoff = n_orders - max(1, n_orders // 3)
            for o in range(1, n_orders + 1):
                c = customers[(o - 1) % len(customers)]
                n_lines = rng.randint(5, 15)
                delivered = o <= delivered_cutoff
                tables.orders.load(
                    (w, d, o),
                    {
                        "c_id": c,
                        "carrier_id": rng.randint(1, 10) if delivered else None,
                        "ol_cnt": n_lines,
                    },
                )
                tables.customer_order_index.load((w, d, c, o), o)
                if not delivered:
                    tables.new_orders.load((w, d, o), True)
                for line in range(1, n_lines + 1):
                    item_id = rng.randint(1, scale.items)
                    tables.order_lines.load(
                        (w, d, o, line),
                        {
                            "item_id": item_id,
                            "supply_w_id": w,
                            "quantity": rng.randint(1, 10),
                            "amount": round(rng.uniform(0.01, 99.99), 2),
                        },
                    )

"""silo: in-memory OLTP with epoch-based optimistic concurrency control."""

from .app import SiloApp, SiloClient
from .occ import Database, Record, Table, Transaction, TransactionAborted
from .tables import TpccTables, populate
from .tpcc import TpccExecutor

__all__ = [
    "SiloApp",
    "SiloClient",
    "Database",
    "Record",
    "Table",
    "Transaction",
    "TransactionAborted",
    "TpccTables",
    "populate",
    "TpccExecutor",
]

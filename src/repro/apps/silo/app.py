"""silo: the in-memory OLTP application."""

from __future__ import annotations

from typing import Dict

from ...workloads.tpcc import TpccScale, TpccTransaction, TpccWorkload
from ..base import Application, Client
from .occ import Database
from .tables import TpccTables, populate
from .tpcc import TpccExecutor

__all__ = ["SiloApp", "SiloClient"]


class SiloClient(Client):
    """Generates the standard TPC-C transaction mix."""

    def __init__(self, scale: TpccScale, seed: int = 0) -> None:
        self._workload = TpccWorkload(scale=scale, seed=seed)

    def next_request(self) -> TpccTransaction:
        return self._workload.next_transaction()


class SiloApp(Application):
    """In-memory transactional database with Silo-style OCC.

    Requests are :class:`TpccTransaction` descriptors; the app runs
    them under optimistic concurrency control with retry-on-abort.
    The paper configures silo with TPC-C at 1 warehouse.
    """

    name = "silo"
    domain = "OLTP (in-memory)"

    def __init__(self, scale: TpccScale = None, seed: int = 0) -> None:
        self._scale = scale or TpccScale.small()
        self._seed = seed
        self._db: Database = None
        self._executor: TpccExecutor = None

    def setup(self) -> None:
        db = Database()
        tables = TpccTables.create(db)
        populate(tables, self._scale, seed=self._seed)
        self._db = db
        self._executor = TpccExecutor(tables)

    @property
    def database(self) -> Database:
        if self._db is None:
            raise RuntimeError("call setup() first")
        return self._db

    def process(self, payload: TpccTransaction) -> Dict:
        executor = self._executor
        if executor is None:
            raise RuntimeError("call setup() first")
        return self._db.run(
            lambda txn: executor.execute(txn, payload.kind, payload.params)
        )

    def make_client(self, seed: int = 0) -> SiloClient:
        return SiloClient(self._scale, seed=seed)

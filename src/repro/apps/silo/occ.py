"""Epoch-based optimistic concurrency control (the Silo protocol).

Implements the commit protocol of Silo [Tu et al., SOSP 2013]:
transactions run without locks, recording a read-set (record ->
observed TID) and buffering writes; at commit they (1) lock the
write-set in a global order, (2) validate that every read-set record
is unchanged and unlocked by others and that every scanned partition's
structure version is unchanged (phantom protection; Silo validates
B-tree node versions, we validate per-partition versions — coarser,
but sound), (3) draw a transaction ID embedding the current epoch, and
(4) apply writes and release locks. Failed validation aborts the
transaction for retry.

Epochs advance on a commit-count trigger (standing in for Silo's 40 ms
epoch thread); TIDs are ``(epoch << 32) | sequence`` so recency is
totally ordered across epochs.
"""

from __future__ import annotations

import itertools
import threading
from bisect import bisect_left, insort
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

__all__ = ["TransactionAborted", "Record", "Table", "Database", "Transaction"]

_EPOCH_SHIFT = 32


class TransactionAborted(Exception):
    """Validation failed; the caller should retry the transaction."""


class Record:
    """One versioned record: value + TID word + lock owner."""

    __slots__ = ("value", "tid", "owner", "deleted")

    def __init__(self, value: Any, tid: int) -> None:
        self.value = value
        self.tid = tid
        self.owner: Optional[int] = None  # committing txn id, if locked
        self.deleted = False


class Table:
    """A named table: hash primary index + sorted per-partition keys.

    Parameters
    ----------
    name:
        Table name (stable identity for lock ordering).
    partition_fn:
        Maps a key to its partition id. Structure versions (phantom
        protection) are kept per partition so inserts in one district
        do not abort scans in another, matching TPC-C's access
        locality. Defaults to a single partition.
    """

    _ids = itertools.count()

    def __init__(
        self, name: str, partition_fn: Callable[[Hashable], Hashable] = None
    ) -> None:
        self.name = name
        self.table_id = next(Table._ids)
        self._partition_fn = partition_fn or (lambda key: 0)
        self._records: Dict[Hashable, Record] = {}
        self._partition_keys: Dict[Hashable, List] = {}
        self._partition_versions: Dict[Hashable, int] = {}
        self._structure_lock = threading.Lock()

    def partition_of(self, key: Hashable) -> Hashable:
        return self._partition_fn(key)

    # -- raw access (used by Transaction and by initial loading) -------
    def get_record(self, key: Hashable) -> Optional[Record]:
        record = self._records.get(key)
        if record is None or record.deleted:
            return None
        return record

    def structure_version(self, partition: Hashable) -> int:
        return self._partition_versions.get(partition, 0)

    def load(self, key: Hashable, value: Any) -> None:
        """Non-transactional insert for initial database population."""
        self._insert_record(key, Record(value, tid=0))

    def _insert_record(self, key: Hashable, record: Record) -> None:
        with self._structure_lock:
            existing = self._records.get(key)
            if existing is not None and not existing.deleted:
                raise KeyError(f"{self.name}: duplicate key {key!r}")
            partition = self.partition_of(key)
            # A delete removed the key from the sorted partition list;
            # re-inserting over the tombstone must restore it.
            if existing is None or existing.deleted:
                insort(self._partition_keys.setdefault(partition, []), key)
            self._records[key] = record
            self._partition_versions[partition] = (
                self._partition_versions.get(partition, 0) + 1
            )

    def _delete_record(self, key: Hashable) -> None:
        with self._structure_lock:
            record = self._records.get(key)
            if record is None or record.deleted:
                raise KeyError(f"{self.name}: no key {key!r}")
            record.deleted = True
            partition = self.partition_of(key)
            keys = self._partition_keys.get(partition, [])
            idx = bisect_left(keys, key)
            if idx < len(keys) and keys[idx] == key:
                keys.pop(idx)
            self._partition_versions[partition] = (
                self._partition_versions.get(partition, 0) + 1
            )

    def keys_in_range(self, partition: Hashable, lo, hi) -> List:
        """Keys with ``lo <= key < hi`` inside one partition (snapshot)."""
        with self._structure_lock:
            keys = self._partition_keys.get(partition, [])
            return keys[bisect_left(keys, lo) : bisect_left(keys, hi)]

    def last_key(self, partition: Hashable, below=None) -> Optional[Hashable]:
        """Largest key in the partition (optionally ``< below``)."""
        with self._structure_lock:
            keys = self._partition_keys.get(partition, [])
            if below is None:
                return keys[-1] if keys else None
            idx = bisect_left(keys, below)
            return keys[idx - 1] if idx > 0 else None

    def __len__(self) -> int:
        with self._structure_lock:
            return sum(len(keys) for keys in self._partition_keys.values())


class Database:
    """Holds tables and the global epoch state."""

    def __init__(self, epoch_commit_interval: int = 1000) -> None:
        if epoch_commit_interval < 1:
            raise ValueError("epoch_commit_interval must be >= 1")
        self.tables: Dict[str, Table] = {}
        self._epoch = 1
        self._epoch_lock = threading.Lock()
        self._commits_this_epoch = 0
        self._epoch_commit_interval = epoch_commit_interval
        self._txn_ids = itertools.count(1)
        self.stats = {"commits": 0, "aborts": 0}
        self._stats_lock = threading.Lock()

    def create_table(
        self, name: str, partition_fn: Callable[[Hashable], Hashable] = None
    ) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, partition_fn)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        return self.tables[name]

    @property
    def epoch(self) -> int:
        with self._epoch_lock:
            return self._epoch

    def _on_commit(self) -> int:
        """Account a commit; returns the epoch it belongs to."""
        with self._epoch_lock:
            epoch = self._epoch
            self._commits_this_epoch += 1
            if self._commits_this_epoch >= self._epoch_commit_interval:
                self._epoch += 1
                self._commits_this_epoch = 0
        with self._stats_lock:
            self.stats["commits"] += 1
        return epoch

    def _on_abort(self) -> None:
        with self._stats_lock:
            self.stats["aborts"] += 1

    def transaction(self) -> "Transaction":
        return Transaction(self, next(self._txn_ids))

    def run(self, body: Callable[["Transaction"], Any], max_retries: int = 100) -> Any:
        """Execute ``body(txn)`` with OCC retry-on-abort.

        Retries use randomized exponential backoff: scan-heavy
        transactions (delivery, stock-level) would otherwise livelock
        against a steady stream of conflicting inserts.
        """
        import random as _random
        import time as _time

        backoff_rng = _random.Random(id(body) ^ threading.get_ident())
        for attempt in range(max_retries):
            txn = self.transaction()
            try:
                result = body(txn)
                txn.commit()
                return result
            except TransactionAborted:
                self._on_abort()
                if attempt >= 2:
                    limit = min(0.0001 * (2 ** min(attempt, 8)), 0.01)
                    _time.sleep(backoff_rng.uniform(0.0, limit))
                continue
        raise TransactionAborted(f"gave up after {max_retries} retries")


class Transaction:
    """One OCC transaction: buffered writes, validated reads."""

    def __init__(self, db: Database, txn_id: int) -> None:
        self._db = db
        self.txn_id = txn_id
        self._reads: Dict[Tuple[int, Hashable], Tuple[Table, int]] = {}
        self._writes: Dict[Tuple[int, Hashable], Tuple[Table, Hashable, Any]] = {}
        self._inserts: Dict[Tuple[int, Hashable], Tuple[Table, Hashable, Any]] = {}
        self._deletes: Dict[Tuple[int, Hashable], Tuple[Table, Hashable]] = {}
        self._scans: Dict[Tuple[int, Hashable], Tuple[Table, int]] = {}
        self._done = False

    # -- operations -----------------------------------------------------
    def read(self, table: Table, key: Hashable) -> Any:
        """Read a record's value (None if absent), tracking the TID."""
        ref = (table.table_id, key)
        if ref in self._writes:
            return self._writes[ref][2]
        if ref in self._inserts:
            return self._inserts[ref][2]
        if ref in self._deletes:
            return None
        record = table.get_record(key)
        if record is None:
            # Record absence via the partition version (anti-phantom).
            self.note_scan(table, table.partition_of(key))
            return None
        if record.owner is not None and record.owner != self.txn_id:
            raise TransactionAborted("read of locked record")
        self._reads[ref] = (table, record.tid)
        return record.value

    def write(self, table: Table, key: Hashable, value: Any) -> None:
        """Buffer an update to an existing record."""
        ref = (table.table_id, key)
        if ref in self._inserts:
            self._inserts[ref] = (table, key, value)
            return
        self._writes[ref] = (table, key, value)

    def insert(self, table: Table, key: Hashable, value: Any) -> None:
        """Buffer the insertion of a new record."""
        ref = (table.table_id, key)
        if ref in self._inserts or ref in self._writes:
            raise TransactionAborted("double insert within transaction")
        self._inserts[ref] = (table, key, value)

    def delete(self, table: Table, key: Hashable) -> None:
        """Buffer the deletion of an existing record."""
        ref = (table.table_id, key)
        self._inserts.pop(ref, None)
        self._writes.pop(ref, None)
        self._deletes[ref] = (table, key)

    def note_scan(self, table: Table, partition: Hashable) -> None:
        """Record a structure-version dependency on a partition."""
        ref = (table.table_id, partition)
        if ref not in self._scans:
            self._scans[ref] = (table, table.structure_version(partition))

    def scan(self, table: Table, partition: Hashable, lo, hi) -> List[Tuple[Hashable, Any]]:
        """Read all records with ``lo <= key < hi`` in a partition."""
        self.note_scan(table, partition)
        out = []
        for key in table.keys_in_range(partition, lo, hi):
            value = self.read(table, key)
            if value is not None:
                out.append((key, value))
        # Include this transaction's own pending inserts in range.
        for (tid_key, key), (t, k, v) in self._inserts.items():
            if (
                tid_key == table.table_id
                and t.partition_of(k) == partition
                and lo <= k < hi
            ):
                out.append((k, v))
        out.sort(key=lambda kv: kv[0])
        return out

    # -- commit protocol --------------------------------------------------
    def commit(self) -> None:
        if self._done:
            raise RuntimeError("transaction already finished")
        self._done = True
        if not (self._writes or self._inserts or self._deletes):
            self._db._on_commit()  # read-only: validation-free in Silo
            return

        # Phase 1: lock the write-set in global (table_id, key) order.
        write_refs = sorted(set(self._writes) | set(self._deletes))
        locked: List[Record] = []
        try:
            for ref in write_refs:
                table, key = (
                    self._writes[ref][:2] if ref in self._writes
                    else self._deletes[ref]
                )
                record = table.get_record(key)
                if record is None:
                    raise TransactionAborted("write target vanished")
                if not self._try_lock(record):
                    raise TransactionAborted("write-write conflict")
                locked.append(record)

            # Phase 2: validate reads and scans.
            for (table_id, key), (table, seen_tid) in self._reads.items():
                record = table.get_record(key)
                if record is None or record.tid != seen_tid:
                    raise TransactionAborted("read-set changed")
                if record.owner is not None and record.owner != self.txn_id:
                    raise TransactionAborted("read record locked by writer")
            for (table_id, partition), (table, seen_ver) in self._scans.items():
                if table.structure_version(partition) != seen_ver:
                    raise TransactionAborted("phantom: partition changed")

            # Phase 3: TID assignment.
            epoch = self._db._on_commit()
            max_seen = max(
                [tid for _, tid in self._reads.values()]
                + [record.tid for record in locked]
                + [0]
            )
            commit_tid = max(max_seen + 1, epoch << _EPOCH_SHIFT)

            # Phase 4: apply.
            for ref in write_refs:
                if ref in self._deletes:
                    continue
                table, key, value = self._writes[ref]
                record = table.get_record(key)
                record.value = value
                record.tid = commit_tid
            for table, key, value in self._inserts.values():
                table._insert_record(key, Record(value, commit_tid))
            for table, key in self._deletes.values():
                table._delete_record(key)
        except TransactionAborted:
            for record in locked:
                self._unlock(record)
            raise
        else:
            for record in locked:
                self._unlock(record)

    # One process-wide mutex serializes owner-bit transitions. Silo
    # uses a per-record compare-and-swap; CPython has no CAS primitive,
    # and the critical section here is a couple of attribute ops, so a
    # shared lock is the faithful-and-correct substitute.
    _owner_mutex = threading.Lock()

    def _try_lock(self, record: Record) -> bool:
        with Transaction._owner_mutex:
            if record.owner is None or record.owner == self.txn_id:
                record.owner = self.txn_id
                return True
            return False

    def _unlock(self, record: Record) -> None:
        with Transaction._owner_mutex:
            if record.owner == self.txn_id:
                record.owner = None

"""TPC-C transaction logic over the OCC engine.

The five TPC-C transaction types implemented against the
:class:`~repro.apps.silo.occ.Transaction` API. Each function takes an
open transaction plus the parameter dict produced by
:class:`repro.workloads.tpcc.TpccWorkload` and returns the
transaction's result payload; OCC aborts propagate to the caller's
retry loop.
"""

from __future__ import annotations

from typing import Dict, List

from .occ import Transaction, TransactionAborted
from .tables import MAX_ID, TpccTables

__all__ = ["TpccExecutor"]


class TpccExecutor:
    """Binds the TPC-C transaction bodies to a table set."""

    def __init__(self, tables: TpccTables) -> None:
        self._t = tables

    # -- New-Order (45%) -------------------------------------------------
    def new_order(self, txn: Transaction, params: Dict) -> Dict:
        t = self._t
        w_id, d_id, c_id = params["w_id"], params["d_id"], params["c_id"]
        district = txn.read(t.district, (w_id, d_id))
        if district is None:
            raise KeyError(f"no district ({w_id}, {d_id})")
        o_id = district["next_o_id"]
        txn.write(
            t.district, (w_id, d_id), {**district, "next_o_id": o_id + 1}
        )
        total = 0.0
        lines = params["lines"]
        for i, line in enumerate(lines, start=1):
            item = txn.read(t.item, line["item_id"])
            if item is None:
                # TPC-C mandates ~1% of new-orders abort on a bad item;
                # our generator only emits valid ids, so this is a guard.
                raise TransactionAborted("invalid item")
            stock_key = (line["supply_w_id"], line["item_id"])
            stock = txn.read(t.stock, stock_key)
            quantity = stock["quantity"]
            new_qty = (
                quantity - line["quantity"]
                if quantity >= line["quantity"] + 10
                else quantity - line["quantity"] + 91
            )
            txn.write(
                t.stock,
                stock_key,
                {
                    "quantity": new_qty,
                    "ytd": stock["ytd"] + line["quantity"],
                    "order_cnt": stock["order_cnt"] + 1,
                },
            )
            amount = round(item["price"] * line["quantity"], 2)
            total += amount
            txn.insert(
                t.order_lines,
                (w_id, d_id, o_id, i),
                {
                    "item_id": line["item_id"],
                    "supply_w_id": line["supply_w_id"],
                    "quantity": line["quantity"],
                    "amount": amount,
                },
            )
        txn.insert(
            t.orders,
            (w_id, d_id, o_id),
            {"c_id": c_id, "carrier_id": None, "ol_cnt": len(lines)},
        )
        txn.insert(t.new_orders, (w_id, d_id, o_id), True)
        txn.insert(t.customer_order_index, (w_id, d_id, c_id, o_id), o_id)
        return {"order_id": o_id, "total": round(total, 2)}

    # -- Payment (43%) ---------------------------------------------------
    def payment(self, txn: Transaction, params: Dict) -> Dict:
        t = self._t
        w_id, d_id = params["w_id"], params["d_id"]
        amount = params["amount"]
        warehouse = txn.read(t.warehouse, w_id)
        txn.write(t.warehouse, w_id, {**warehouse, "ytd": warehouse["ytd"] + amount})
        district = txn.read(t.district, (w_id, d_id))
        txn.write(
            t.district, (w_id, d_id), {**district, "ytd": district["ytd"] + amount}
        )
        c_id = params.get("c_id")
        if c_id is None:
            c_id = self._customer_by_last_name(txn, w_id, d_id, params["c_last"])
            if c_id is None:
                return {"customer_found": False}
        customer = txn.read(t.customer, (w_id, d_id, c_id))
        if customer is None:
            return {"customer_found": False}
        txn.write(
            t.customer,
            (w_id, d_id, c_id),
            {
                **customer,
                "balance": customer["balance"] - amount,
                "ytd_payment": customer["ytd_payment"] + amount,
                "payment_cnt": customer["payment_cnt"] + 1,
            },
        )
        txn.insert(
            t.history, (w_id, d_id, c_id, txn.txn_id), {"amount": amount}
        )
        return {
            "customer_found": True,
            "c_id": c_id,
            "balance": round(customer["balance"] - amount, 2),
        }

    def _customer_by_last_name(self, txn, w_id, d_id, c_last):
        """TPC-C clause 2.5.2.2: midpoint of name-sorted matches."""
        matches = txn.scan(
            self._t.customer_name_index,
            (w_id, d_id),
            (w_id, d_id, c_last, 0),
            (w_id, d_id, c_last, MAX_ID),
        )
        if not matches:
            return None
        return matches[len(matches) // 2][1]

    # -- Order-Status (4%) -------------------------------------------------
    def order_status(self, txn: Transaction, params: Dict) -> Dict:
        t = self._t
        w_id, d_id, c_id = params["w_id"], params["d_id"], params["c_id"]
        txn.note_scan(t.customer_order_index, (w_id, d_id, c_id))
        last = t.customer_order_index.last_key(
            (w_id, d_id, c_id), below=(w_id, d_id, c_id, MAX_ID)
        )
        if last is None:
            return {"order_id": None}
        o_id = last[3]
        order = txn.read(t.orders, (w_id, d_id, o_id))
        lines = txn.scan(
            t.order_lines,
            (w_id, d_id),
            (w_id, d_id, o_id, 0),
            (w_id, d_id, o_id, MAX_ID),
        )
        return {
            "order_id": o_id,
            "carrier_id": order["carrier_id"] if order else None,
            "lines": [value for _, value in lines],
        }

    # -- Delivery (4%) ------------------------------------------------------
    def delivery(self, txn: Transaction, params: Dict) -> Dict:
        """Deliver the oldest undelivered order in every district."""
        t = self._t
        w_id, carrier = params["w_id"], params["carrier_id"]
        delivered: List[int] = []
        for d_id in self._district_ids(txn, w_id):
            pending = txn.scan(
                t.new_orders,
                (w_id, d_id),
                (w_id, d_id, 0),
                (w_id, d_id, MAX_ID),
            )
            if not pending:
                continue
            (w, d, o_id), _ = pending[0]
            txn.delete(t.new_orders, (w, d, o_id))
            order = txn.read(t.orders, (w, d, o_id))
            txn.write(t.orders, (w, d, o_id), {**order, "carrier_id": carrier})
            lines = txn.scan(
                t.order_lines, (w, d), (w, d, o_id, 0), (w, d, o_id, MAX_ID)
            )
            total = sum(value["amount"] for _, value in lines)
            customer_key = (w, d, order["c_id"])
            customer = txn.read(t.customer, customer_key)
            txn.write(
                t.customer,
                customer_key,
                {
                    **customer,
                    "balance": customer["balance"] + total,
                    "delivery_cnt": customer["delivery_cnt"] + 1,
                },
            )
            delivered.append(o_id)
        return {"delivered_orders": delivered}

    def _district_ids(self, txn, w_id) -> List[int]:
        districts = []
        d = 1
        while txn.read(self._t.district, (w_id, d)) is not None:
            districts.append(d)
            d += 1
        return districts

    # -- Stock-Level (4%) -----------------------------------------------------
    def stock_level(self, txn: Transaction, params: Dict) -> Dict:
        """Distinct recently-ordered items below the stock threshold."""
        t = self._t
        w_id, d_id = params["w_id"], params["d_id"]
        threshold = params["threshold"]
        district = txn.read(t.district, (w_id, d_id))
        next_o_id = district["next_o_id"]
        lines = txn.scan(
            t.order_lines,
            (w_id, d_id),
            (w_id, d_id, max(1, next_o_id - 20), 0),
            (w_id, d_id, next_o_id, MAX_ID),
        )
        item_ids = {value["item_id"] for _, value in lines}
        low = 0
        for item_id in item_ids:
            stock = txn.read(t.stock, (w_id, item_id))
            if stock is not None and stock["quantity"] < threshold:
                low += 1
        return {"low_stock": low}

    # -- dispatch ----------------------------------------------------------
    def execute(self, txn: Transaction, kind: str, params: Dict) -> Dict:
        handler = getattr(self, kind, None)
        if handler is None or kind.startswith("_"):
            raise ValueError(f"unknown TPC-C transaction {kind!r}")
        return handler(txn, params)

"""Simulated SSD: a file-backed page store.

Shore keeps its database and logs on a solid-state drive (Sec. III).
This module provides the device abstraction: fixed-size page reads and
writes against a real temporary file (so the kernel I/O path is truly
exercised) plus an optional added per-operation latency for modelling
slower devices. Thread-safe via positioned I/O (pread/pwrite).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Optional

__all__ = ["SimulatedSSD", "PAGE_SIZE"]

PAGE_SIZE = 4096


class SimulatedSSD:
    """Page-granular block device backed by a temp file.

    Parameters
    ----------
    path:
        Backing file path; a fresh temp file when omitted.
    page_size:
        Bytes per page.
    read_latency / write_latency:
        Extra seconds busy-waited per operation to emulate a slower
        device (0 = raw file speed). Busy-waiting (not sleeping) keeps
        sub-millisecond latencies accurate.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = PAGE_SIZE,
        read_latency: float = 0.0,
        write_latency: float = 0.0,
    ) -> None:
        if page_size < 128:
            raise ValueError("page_size too small")
        if read_latency < 0 or write_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.page_size = page_size
        self.read_latency = read_latency
        self.write_latency = write_latency
        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-shore-", suffix=".db")
            self._fd = fd
            self._owns_file = True
        else:
            self._path = path
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
            self._owns_file = False
        self._lock = threading.Lock()
        self._n_pages = 0
        self.stats = {"reads": 0, "writes": 0}

    @property
    def path(self) -> str:
        return self._path

    @property
    def n_pages(self) -> int:
        with self._lock:
            return self._n_pages

    def allocate_page(self) -> int:
        """Reserve a new page id (zero-filled on first write)."""
        with self._lock:
            page_id = self._n_pages
            self._n_pages += 1
            return page_id

    def adopt_existing(self) -> int:
        """Register pages already present in the backing file.

        Used when reopening a database file after a restart: page ids
        up to the file's current size become addressable again.
        Returns the number of pages adopted.
        """
        size = os.fstat(self._fd).st_size
        pages = size // self.page_size
        with self._lock:
            self._n_pages = max(self._n_pages, pages)
            return self._n_pages

    def _delay(self, seconds: float) -> None:
        if seconds <= 0:
            return
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            pass

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self._delay(self.read_latency)
        data = os.pread(self._fd, self.page_size, page_id * self.page_size)
        with self._lock:
            self.stats["reads"] += 1
        if len(data) < self.page_size:  # never-written page reads as zeros
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page data must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )
        self._delay(self.write_latency)
        os.pwrite(self._fd, data, page_id * self.page_size)
        with self._lock:
            self.stats["writes"] += 1

    def sync(self) -> None:
        """Durability barrier (fdatasync)."""
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
            if self._owns_file and os.path.exists(self._path):
                os.unlink(self._path)

    def _check_page_id(self, page_id: int) -> None:
        with self._lock:
            if not 0 <= page_id < self._n_pages:
                raise ValueError(f"page id {page_id} out of range")

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

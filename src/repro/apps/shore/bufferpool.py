"""Buffer pool with LRU replacement.

The buffer pool caches page images between the engine and the
simulated SSD. Misses pay real device I/O — that cost, surfacing on
whichever unlucky request touches a cold page, is the source of
shore's long-tailed service times (Fig. 2). Pages are pinned during
use; dirty pages are written back on eviction (no-steal is enforced
one level up by the engine's commit-time flush).
"""

from __future__ import annotations

import collections
import threading
from typing import Dict

from .disk import SimulatedSSD
from .pages import SlottedPage

__all__ = ["BufferPool", "BufferPoolFullError"]


class BufferPoolFullError(Exception):
    """Every frame is pinned; nothing can be evicted."""


class _Frame:
    __slots__ = ("page", "pins", "dirty")

    def __init__(self, page: SlottedPage) -> None:
        self.page = page
        self.pins = 0
        self.dirty = False


class BufferPool:
    """Fixed-capacity page cache over a :class:`SimulatedSSD`."""

    def __init__(self, device: SimulatedSSD, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._device = device
        self.capacity = capacity
        self._frames: Dict[int, _Frame] = {}
        self._lru: collections.OrderedDict = collections.OrderedDict()
        self._lock = threading.RLock()
        self.stats = {"hits": 0, "misses": 0, "evictions": 0, "writebacks": 0}

    def pin(self, page_id: int) -> SlottedPage:
        """Fetch and pin a page; caller must unpin when done."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats["hits"] += 1
            else:
                self.stats["misses"] += 1
                self._make_room()
                data = self._device.read_page(page_id)
                frame = _Frame(SlottedPage(self._device.page_size, data))
                self._frames[page_id] = frame
            frame.pins += 1
            self._lru[page_id] = None
            self._lru.move_to_end(page_id)
            return frame.page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pins == 0:
                raise ValueError(f"page {page_id} is not pinned")
            frame.pins -= 1
            if dirty:
                frame.dirty = True

    def _make_room(self) -> None:
        """Evict LRU unpinned frames until under capacity (lock held)."""
        while len(self._frames) >= self.capacity:
            victim = None
            for page_id in self._lru:
                if self._frames[page_id].pins == 0:
                    victim = page_id
                    break
            if victim is None:
                raise BufferPoolFullError(
                    f"all {self.capacity} frames are pinned"
                )
            frame = self._frames.pop(victim)
            del self._lru[victim]
            self.stats["evictions"] += 1
            if frame.dirty:
                self._device.write_page(victim, frame.page.encode())
                self.stats["writebacks"] += 1

    def flush_page(self, page_id: int) -> None:
        """Write one page back if dirty (keeps it cached)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None and frame.dirty:
                self._device.write_page(page_id, frame.page.encode())
                frame.dirty = False
                self.stats["writebacks"] += 1

    def flush_all(self) -> None:
        with self._lock:
            for page_id in list(self._frames):
                self.flush_page(page_id)
            self._device.sync()

    @property
    def hit_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

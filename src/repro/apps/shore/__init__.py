"""shore: on-disk OLTP (slotted pages, buffer pool, WAL, strict 2PL)."""

from .app import ShoreApp, ShoreClient
from .bufferpool import BufferPool, BufferPoolFullError
from .disk import PAGE_SIZE, SimulatedSSD
from .engine import ShoreEngine, ShoreTable, ShoreTransaction
from .lockmgr import LockManager, LockTimeout
from .pages import PageFullError, SlottedPage
from .wal import LogRecord, WriteAheadLog

__all__ = [
    "ShoreApp",
    "ShoreClient",
    "BufferPool",
    "BufferPoolFullError",
    "PAGE_SIZE",
    "SimulatedSSD",
    "ShoreEngine",
    "ShoreTable",
    "ShoreTransaction",
    "LockManager",
    "LockTimeout",
    "PageFullError",
    "SlottedPage",
    "LogRecord",
    "WriteAheadLog",
]

"""Two-phase-locking lock manager with timeout-based deadlock recovery.

Shore-style pessimistic concurrency: shared/exclusive locks at
partition (district) granularity, held until commit or abort.
Deadlocks are broken by acquisition timeout — the waiter aborts and
retries, the standard timeout policy of disk-era storage managers.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Set

__all__ = ["LockManager", "LockTimeout"]


class LockTimeout(Exception):
    """Could not acquire the lock in time (probable deadlock)."""


class _Lock:
    __slots__ = ("cond", "sharers", "exclusive")

    def __init__(self, mutex: threading.Lock) -> None:
        self.cond = threading.Condition(mutex)
        self.sharers: Set[int] = set()
        self.exclusive: int = None  # owning txn id


class LockManager:
    """Table of named shared/exclusive locks.

    Lock names are arbitrary hashables (the engine uses
    ``(table_name, partition)``). Upgrades (shared -> exclusive by the
    same transaction) are supported; all of a transaction's locks are
    released together at commit/abort (strict 2PL).
    """

    def __init__(self, timeout: float = 0.2) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._locks: Dict[Hashable, _Lock] = {}
        self._held: Dict[int, Set[Hashable]] = {}

    def _lock_for(self, name: Hashable) -> _Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = _Lock(self._mutex)
            self._locks[name] = lock
        return lock

    def acquire_shared(self, txn_id: int, name: Hashable) -> None:
        with self._mutex:
            lock = self._lock_for(name)
            if lock.exclusive == txn_id or txn_id in lock.sharers:
                return  # already held (exclusive implies shared)
            deadline = self._deadline()
            while lock.exclusive is not None:
                if not lock.cond.wait(self._remaining(deadline)):
                    raise LockTimeout(f"shared lock on {name!r} timed out")
            lock.sharers.add(txn_id)
            self._held.setdefault(txn_id, set()).add(name)

    def acquire_exclusive(self, txn_id: int, name: Hashable) -> None:
        with self._mutex:
            lock = self._lock_for(name)
            if lock.exclusive == txn_id:
                return
            deadline = self._deadline()
            while True:
                others_share = lock.sharers - {txn_id}
                if lock.exclusive is None and not others_share:
                    break
                if not lock.cond.wait(self._remaining(deadline)):
                    raise LockTimeout(f"exclusive lock on {name!r} timed out")
            lock.sharers.discard(txn_id)  # upgrade
            lock.exclusive = txn_id
            self._held.setdefault(txn_id, set()).add(name)

    def release_all(self, txn_id: int) -> None:
        with self._mutex:
            for name in self._held.pop(txn_id, ()):
                lock = self._locks.get(name)
                if lock is None:
                    continue
                lock.sharers.discard(txn_id)
                if lock.exclusive == txn_id:
                    lock.exclusive = None
                lock.cond.notify_all()

    def held_by(self, txn_id: int) -> Set[Hashable]:
        with self._mutex:
            return set(self._held.get(txn_id, ()))

    def _deadline(self) -> float:
        import time

        return time.monotonic() + self.timeout

    def _remaining(self, deadline: float) -> float:
        import time

        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise LockTimeout("lock wait exhausted")
        return remaining

"""ARIES-style write-ahead log.

Redo logging with commit forcing: every update/insert/delete appends a
log record carrying the table, key, and new value; COMMIT records are
forced to the device before the transaction acknowledges. Combined
with the engine's no-steal buffer policy (dirty pages are never
written before commit), redo-only recovery is sound: replaying the
redo records of committed transactions reconstructs the database.
"""

from __future__ import annotations

import pickle
import struct
import threading
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

__all__ = ["LogRecord", "WriteAheadLog", "OP_UPDATE", "OP_INSERT", "OP_DELETE",
           "OP_COMMIT", "OP_ABORT", "OP_CHECKPOINT"]

OP_UPDATE = "update"
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_COMMIT = "commit"
OP_ABORT = "abort"
OP_CHECKPOINT = "checkpoint"

_LEN = struct.Struct(">I")


@dataclass(frozen=True)
class LogRecord:
    """One log entry."""

    lsn: int
    txn_id: int
    op: str
    table: Optional[str] = None
    key: Any = None
    value: Any = None


class WriteAheadLog:
    """Append-only log over a file-like byte sink.

    Parameters
    ----------
    path:
        Log file path; an anonymous temp file when omitted.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        import os
        import tempfile

        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-shore-", suffix=".log")
            self._file = os.fdopen(fd, "r+b")
            self._owns = True
        else:
            self._path = path
            self._file = open(path, "a+b")
            self._owns = False
        self._lock = threading.Lock()
        self._next_lsn = 1
        self._pending: List[bytes] = []
        self.stats = {"appends": 0, "forces": 0}

    @property
    def path(self) -> str:
        return self._path

    def append(self, txn_id: int, op: str, table: str = None, key: Any = None,
               value: Any = None) -> int:
        """Buffer a log record; returns its LSN."""
        if op not in (OP_UPDATE, OP_INSERT, OP_DELETE, OP_COMMIT, OP_ABORT,
                      OP_CHECKPOINT):
            raise ValueError(f"unknown log op {op!r}")
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            record = LogRecord(lsn, txn_id, op, table, key, value)
            body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            self._pending.append(_LEN.pack(len(body)) + body)
            self.stats["appends"] += 1
            return lsn

    def force(self) -> None:
        """Flush all buffered records durably (fsync)."""
        with self._lock:
            if self._pending:
                self._file.write(b"".join(self._pending))
                self._pending.clear()
            self._file.flush()
            import os

            os.fsync(self._file.fileno())
            self.stats["forces"] += 1

    def commit(self, txn_id: int) -> int:
        """Append a COMMIT record and force the log (group of one)."""
        lsn = self.append(txn_id, OP_COMMIT)
        self.force()
        return lsn

    def records(self) -> Iterator[LogRecord]:
        """Replay every durable record from the start of the log."""
        with self._lock:
            self._file.flush()
            with open(self._path, "rb") as f:
                while True:
                    header = f.read(_LEN.size)
                    if len(header) < _LEN.size:
                        return
                    (length,) = _LEN.unpack(header)
                    body = f.read(length)
                    if len(body) < length:
                        return  # torn tail write: ignore, per ARIES
                    yield pickle.loads(body)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
                if self._owns:
                    import os

                    if os.path.exists(self._path):
                        os.unlink(self._path)

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

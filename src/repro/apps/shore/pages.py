"""Slotted-page layout.

Classic slotted pages: a header (slot count, free-space offset, page
LSN), a slot directory growing from the front, and record payloads
growing from the back. Records are pickled values; a slot of length 0
marks a deleted record (its id stays allocated, as in Shore's RID
stability guarantee).
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Tuple

__all__ = ["SlottedPage", "PageFullError"]

_HEADER = struct.Struct(">IIQ")  # n_slots, free_offset, page_lsn
_SLOT = struct.Struct(">HH")  # record offset, record length


class PageFullError(Exception):
    """The record does not fit in this page's free space."""


class SlottedPage:
    """In-memory image of one slotted page."""

    def __init__(self, page_size: int, data: Optional[bytes] = None) -> None:
        if page_size < _HEADER.size + _SLOT.size + 16:
            raise ValueError("page_size too small for slotted layout")
        self.page_size = page_size
        if data is None:
            self._slots: List[Tuple[int, int]] = []
            self._payloads: List[Optional[bytes]] = []
            self.page_lsn = 0
        else:
            self._decode(data)

    # -- encode/decode ---------------------------------------------------
    def _decode(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise ValueError("page image has wrong size")
        n_slots, _free, lsn = _HEADER.unpack_from(data, 0)
        self.page_lsn = lsn
        self._slots = []
        self._payloads = []
        pos = _HEADER.size
        for _ in range(n_slots):
            off, length = _SLOT.unpack_from(data, pos)
            pos += _SLOT.size
            self._slots.append((off, length))
            self._payloads.append(data[off : off + length] if length else None)

    def encode(self) -> bytes:
        buf = bytearray(self.page_size)
        free = self.page_size
        slot_entries = []
        for payload in self._payloads:
            if payload is None:
                slot_entries.append((0, 0))
            else:
                free -= len(payload)
                buf[free : free + len(payload)] = payload
                slot_entries.append((free, len(payload)))
        _HEADER.pack_into(buf, 0, len(slot_entries), free, self.page_lsn)
        pos = _HEADER.size
        for off, length in slot_entries:
            _SLOT.pack_into(buf, pos, off, length)
            pos += _SLOT.size
        if pos > free:
            raise PageFullError("slot directory collided with payloads")
        return bytes(buf)

    # -- space accounting --------------------------------------------------
    @property
    def n_slots(self) -> int:
        return len(self._payloads)

    def used_bytes(self) -> int:
        payload = sum(len(p) for p in self._payloads if p is not None)
        return _HEADER.size + _SLOT.size * len(self._payloads) + payload

    def free_bytes(self) -> int:
        return self.page_size - self.used_bytes()

    def fits(self, payload_len: int, new_slot: bool = True) -> bool:
        need = payload_len + (_SLOT.size if new_slot else 0)
        return self.free_bytes() >= need

    # -- record operations ---------------------------------------------------
    def insert(self, value: Any) -> int:
        """Add a record; returns its slot id. Raises PageFullError."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if not self.fits(len(payload)):
            raise PageFullError(
                f"{len(payload)} bytes do not fit ({self.free_bytes()} free)"
            )
        self._payloads.append(payload)
        self._slots.append((0, len(payload)))
        return len(self._payloads) - 1

    def read(self, slot: int) -> Any:
        payload = self._payload_of(slot)
        if payload is None:
            raise KeyError(f"slot {slot} is deleted")
        return pickle.loads(payload)

    def update(self, slot: int, value: Any) -> None:
        old = self._payload_of(slot)
        if old is None:
            raise KeyError(f"slot {slot} is deleted")
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        growth = len(payload) - len(old)
        if growth > 0 and self.free_bytes() < growth:
            raise PageFullError("updated record no longer fits")
        self._payloads[slot] = payload

    def delete(self, slot: int) -> None:
        if self._payload_of(slot) is None:
            raise KeyError(f"slot {slot} already deleted")
        self._payloads[slot] = None

    def is_live(self, slot: int) -> bool:
        return (
            0 <= slot < len(self._payloads) and self._payloads[slot] is not None
        )

    def _payload_of(self, slot: int) -> Optional[bytes]:
        if not 0 <= slot < len(self._payloads):
            raise KeyError(f"slot {slot} out of range")
        return self._payloads[slot]

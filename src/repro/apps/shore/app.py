"""shore: the on-disk OLTP application."""

from __future__ import annotations

from typing import Dict

from ...workloads.tpcc import TpccScale, TpccTransaction, TpccWorkload
from ..base import Application, Client
from ..silo.tables import TpccTables, populate
from ..silo.tpcc import TpccExecutor
from .engine import ShoreEngine

__all__ = ["ShoreApp", "ShoreClient"]


class ShoreClient(Client):
    """Generates the standard TPC-C transaction mix."""

    def __init__(self, scale: TpccScale, seed: int = 0) -> None:
        self._workload = TpccWorkload(scale=scale, seed=seed)

    def next_request(self) -> TpccTransaction:
        return self._workload.next_transaction()


class ShoreApp(Application):
    """Disk-based transactional database (pages + buffer pool + WAL + 2PL).

    Runs the same TPC-C transaction bodies as silo (the workload is
    identical in the paper too); only the storage engine differs. The
    buffer pool is deliberately smaller than the dataset so requests
    take page misses — the long-tail mechanism of shore's service
    times. The paper uses 10 warehouses for shore; the default scale
    here is reduced for Python-speed setup, configurable via ``scale``.
    """

    name = "shore"
    domain = "OLTP (disk/SSD)"

    def __init__(
        self,
        scale: TpccScale = None,
        buffer_capacity: int = 96,
        read_latency: float = 0.0,
        write_latency: float = 0.0,
        seed: int = 0,
    ) -> None:
        self._scale = scale or TpccScale.small(warehouses=2)
        self._buffer_capacity = buffer_capacity
        self._read_latency = read_latency
        self._write_latency = write_latency
        self._seed = seed
        self._engine: ShoreEngine = None
        self._executor: TpccExecutor = None

    def setup(self) -> None:
        engine = ShoreEngine(
            buffer_capacity=self._buffer_capacity,
            read_latency=self._read_latency,
            write_latency=self._write_latency,
        )
        tables = TpccTables.create(engine)
        populate(tables, self._scale, seed=self._seed)
        engine.pool.flush_all()
        self._engine = engine
        self._executor = TpccExecutor(tables)

    @property
    def engine(self) -> ShoreEngine:
        if self._engine is None:
            raise RuntimeError("call setup() first")
        return self._engine

    def process(self, payload: TpccTransaction) -> Dict:
        executor = self._executor
        if executor is None:
            raise RuntimeError("call setup() first")
        return self._engine.run(
            lambda txn: executor.execute(txn, payload.kind, payload.params)
        )

    def make_client(self, seed: int = 0) -> ShoreClient:
        return ShoreClient(self._scale, seed=seed)

    def teardown(self) -> None:
        """Release the backing files (optional; GC also reclaims them)."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None
            self._executor = None

"""The shore storage engine: 2PL transactions over paged storage.

Ties the pieces together: slotted pages on the simulated SSD behind a
buffer pool, an in-memory primary index (key -> record id), a
write-ahead log with commit forcing, and a strict-2PL lock manager at
partition granularity.

Transactions buffer their effects locally and apply them at commit,
after the redo log is forced — so pages on disk only ever contain
committed data plus possibly-missing tail updates, and redo-only
recovery (:meth:`ShoreEngine.recover`) is sound.

The engine's transaction and table objects are duck-type compatible
with the silo OCC API, so the same TPC-C transaction bodies
(:class:`repro.apps.silo.tpcc.TpccExecutor`) run on both engines —
the paper likewise drives both databases with the same workload.
"""

from __future__ import annotations

import itertools
import threading
from bisect import bisect_left, insort
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..silo.occ import TransactionAborted
from .bufferpool import BufferPool
from .disk import SimulatedSSD
from .lockmgr import LockManager, LockTimeout
from .pages import PageFullError
from .wal import OP_CHECKPOINT, OP_COMMIT, OP_DELETE, OP_INSERT, OP_UPDATE, WriteAheadLog

__all__ = ["ShoreEngine", "ShoreTable", "ShoreTransaction"]

RID = Tuple[int, int]  # (page_id, slot)


class ShoreTable:
    """One table: in-memory key index over paged record storage."""

    def __init__(
        self,
        engine: "ShoreEngine",
        name: str,
        partition_fn: Callable[[Hashable], Hashable] = None,
    ) -> None:
        self._engine = engine
        self.name = name
        self._partition_fn = partition_fn or (lambda key: 0)
        self._index: Dict[Hashable, RID] = {}
        self._partition_keys: Dict[Hashable, List] = {}
        self._index_lock = threading.Lock()
        self._fill_page: Optional[int] = None  # current insertion target

    def partition_of(self, key: Hashable) -> Hashable:
        return self._partition_fn(key)

    # -- index maintenance (engine-internal) ----------------------------
    def rid_of(self, key: Hashable) -> Optional[RID]:
        with self._index_lock:
            return self._index.get(key)

    def index_insert(self, key: Hashable, rid: RID) -> None:
        with self._index_lock:
            if key in self._index:
                raise KeyError(f"{self.name}: duplicate key {key!r}")
            self._index[key] = rid
            insort(self._partition_keys.setdefault(self.partition_of(key), []), key)

    def index_delete(self, key: Hashable) -> RID:
        with self._index_lock:
            rid = self._index.pop(key)
            keys = self._partition_keys[self.partition_of(key)]
            idx = bisect_left(keys, key)
            if idx < len(keys) and keys[idx] == key:
                keys.pop(idx)
            return rid

    def keys_in_range(self, partition: Hashable, lo, hi) -> List:
        with self._index_lock:
            keys = self._partition_keys.get(partition, [])
            return keys[bisect_left(keys, lo) : bisect_left(keys, hi)]

    def last_key(self, partition: Hashable, below=None) -> Optional[Hashable]:
        with self._index_lock:
            keys = self._partition_keys.get(partition, [])
            if below is None:
                return keys[-1] if keys else None
            idx = bisect_left(keys, below)
            return keys[idx - 1] if idx > 0 else None

    def __len__(self) -> int:
        with self._index_lock:
            return len(self._index)

    def load(self, key: Hashable, value: Any) -> None:
        """Non-transactional insert for initial database population."""
        self.index_insert(key, self.store_value(key, value))

    # -- record storage ---------------------------------------------------
    def read_value(self, rid: RID) -> Any:
        """Read the record's value (records are (table, key, value))."""
        page = self._engine.pool.pin(rid[0])
        try:
            return page.read(rid[1])[2]
        finally:
            self._engine.pool.unpin(rid[0])

    def store_value(self, key: Hashable, value: Any) -> RID:
        """Place a record on a page with space; returns its RID.

        Records are stored self-describing — (table name, key, value) —
        so a restart can rebuild every index by scanning pages.
        """
        engine = self._engine
        payload = (self.name, key, value)
        with engine.allocation_lock:
            candidates = [self._fill_page] if self._fill_page is not None else []
            for page_id in candidates:
                page = engine.pool.pin(page_id)
                try:
                    slot = page.insert(payload)
                    engine.pool.unpin(page_id, dirty=True)
                    return (page_id, slot)
                except PageFullError:
                    engine.pool.unpin(page_id)
            page_id = engine.device.allocate_page()
            page = engine.pool.pin(page_id)
            try:
                slot = page.insert(payload)
            finally:
                engine.pool.unpin(page_id, dirty=True)
            self._fill_page = page_id
            return (page_id, slot)

    def update_value(self, rid: RID, key: Hashable, value: Any) -> RID:
        """Update in place, relocating if the record outgrew its page."""
        engine = self._engine
        page = engine.pool.pin(rid[0])
        try:
            page.update(rid[1], (self.name, key, value))
            engine.pool.unpin(rid[0], dirty=True)
            return rid
        except PageFullError:
            page.delete(rid[1])
            engine.pool.unpin(rid[0], dirty=True)
            return self.store_value(key, value)

    def delete_value(self, rid: RID) -> None:
        page = self._engine.pool.pin(rid[0])
        try:
            page.delete(rid[1])
        finally:
            self._engine.pool.unpin(rid[0], dirty=True)


class ShoreEngine:
    """Owns the device, buffer pool, log, lock manager, and tables."""

    def __init__(
        self,
        buffer_capacity: int = 128,
        lock_timeout: float = 0.2,
        db_path: Optional[str] = None,
        log_path: Optional[str] = None,
        read_latency: float = 0.0,
        write_latency: float = 0.0,
    ) -> None:
        self.device = SimulatedSSD(
            path=db_path, read_latency=read_latency, write_latency=write_latency
        )
        self.pool = BufferPool(self.device, capacity=buffer_capacity)
        self.log = WriteAheadLog(path=log_path)
        self.locks = LockManager(timeout=lock_timeout)
        self.tables: Dict[str, ShoreTable] = {}
        self.allocation_lock = threading.Lock()
        self._txn_ids = itertools.count(1)
        self.stats = {"commits": 0, "aborts": 0}
        self._stats_lock = threading.Lock()

    def create_table(
        self, name: str, partition_fn: Callable[[Hashable], Hashable] = None
    ) -> ShoreTable:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = ShoreTable(self, name, partition_fn)
        self.tables[name] = table
        return table

    def table(self, name: str) -> ShoreTable:
        return self.tables[name]

    def transaction(self) -> "ShoreTransaction":
        return ShoreTransaction(self, next(self._txn_ids))

    def run(self, body: Callable[["ShoreTransaction"], Any], max_retries: int = 50) -> Any:
        """Execute ``body(txn)`` with abort-and-retry on lock timeouts.

        Retries back off with randomized exponential delays so that
        repeatedly colliding transactions (deadlock victims) desynchronize
        instead of livelocking.
        """
        import random as _random
        import time as _time

        backoff_rng = _random.Random(id(body) ^ threading.get_ident())
        for attempt in range(max_retries):
            txn = self.transaction()
            try:
                result = body(txn)
                txn.commit()
                return result
            except TransactionAborted:
                txn.abort()
                with self._stats_lock:
                    self.stats["aborts"] += 1
                if attempt >= 1:
                    limit = min(0.0005 * (2 ** min(attempt, 7)), 0.05)
                    _time.sleep(backoff_rng.uniform(0.0, limit))
                continue
        raise TransactionAborted(f"gave up after {max_retries} retries")

    def checkpoint(self) -> int:
        """Flush all pages and mark the log; bounds future recovery work.

        After a checkpoint, recovery rebuilds the indexes from the
        (fully flushed) pages and replays only log records beyond the
        checkpoint. Returns the checkpoint LSN.
        """
        self.pool.flush_all()
        lsn = self.log.append(0, OP_CHECKPOINT)
        self.log.force()
        return lsn

    def rebuild_indexes(self) -> int:
        """Reconstruct every table's index by scanning data pages.

        Records are self-describing (table name, key, value); tables
        must already be created (schema is code, not data). Returns
        the number of live records indexed.
        """
        from .pages import SlottedPage

        n_pages = self.device.adopt_existing()
        indexed = 0
        for page_id in range(n_pages):
            page = SlottedPage(
                self.device.page_size, self.device.read_page(page_id)
            )
            for slot in range(page.n_slots):
                if not page.is_live(slot):
                    continue
                name, key, _value = page.read(slot)
                table = self.tables.get(name)
                if table is None:
                    continue
                table.index_insert(key, (page_id, slot))
                indexed += 1
        return indexed

    def recover(self) -> int:
        """Redo recovery: restore the last committed state.

        Without a checkpoint: replays every committed transaction's
        redo records into a fresh page store. With a checkpoint:
        rebuilds indexes from the flushed pages, then replays only the
        committed records beyond the last checkpoint (idempotently).
        Returns the number of transactions replayed.
        """
        committed = set()
        checkpoint_lsn = 0
        for record in self.log.records():
            if record.op == OP_COMMIT:
                committed.add(record.txn_id)
            elif record.op == OP_CHECKPOINT:
                checkpoint_lsn = record.lsn
        if checkpoint_lsn:
            self.rebuild_indexes()
        replayed = set()
        for record in self.log.records():
            if record.lsn <= checkpoint_lsn:
                continue
            if record.txn_id not in committed:
                continue
            table = self.tables.get(record.table) if record.table else None
            if table is None:
                continue
            replayed.add(record.txn_id)
            rid = table.rid_of(record.key)
            if record.op == OP_INSERT:
                if rid is None:
                    table.index_insert(
                        record.key, table.store_value(record.key, record.value)
                    )
                else:
                    table.update_value(rid, record.key, record.value)
            elif record.op == OP_UPDATE:
                if rid is not None:
                    new_rid = table.update_value(rid, record.key, record.value)
                    if new_rid != rid:
                        table.index_delete(record.key)
                        table.index_insert(record.key, new_rid)
                else:
                    table.index_insert(
                        record.key, table.store_value(record.key, record.value)
                    )
            elif record.op == OP_DELETE:
                if rid is not None:
                    table.delete_value(table.index_delete(record.key))
        self.pool.flush_all()
        return len(replayed)

    def close(self) -> None:
        self.pool.flush_all()
        self.log.close()
        self.device.close()


class ShoreTransaction:
    """Strict-2PL transaction with commit-time apply (duck-types silo's)."""

    def __init__(self, engine: ShoreEngine, txn_id: int) -> None:
        self._engine = engine
        self.txn_id = txn_id
        self._writes: Dict[Tuple[str, Hashable], Tuple[ShoreTable, Any]] = {}
        self._inserts: Dict[Tuple[str, Hashable], Tuple[ShoreTable, Any]] = {}
        self._deletes: Dict[Tuple[str, Hashable], ShoreTable] = {}
        self._done = False

    # -- locking helpers ---------------------------------------------------
    def _lock_shared(self, table: ShoreTable, partition: Hashable) -> None:
        try:
            self._engine.locks.acquire_shared(
                self.txn_id, (table.name, partition)
            )
        except LockTimeout as exc:
            raise TransactionAborted(str(exc)) from exc

    def _lock_exclusive(self, table: ShoreTable, partition: Hashable) -> None:
        try:
            self._engine.locks.acquire_exclusive(
                self.txn_id, (table.name, partition)
            )
        except LockTimeout as exc:
            raise TransactionAborted(str(exc)) from exc

    # -- operations (silo-compatible surface) ------------------------------
    def read(self, table: ShoreTable, key: Hashable) -> Any:
        ref = (table.name, key)
        if ref in self._writes:
            return self._writes[ref][1]
        if ref in self._inserts:
            return self._inserts[ref][1]
        if ref in self._deletes:
            return None
        self._lock_shared(table, table.partition_of(key))
        rid = table.rid_of(key)
        if rid is None:
            return None
        return table.read_value(rid)

    def write(self, table: ShoreTable, key: Hashable, value: Any) -> None:
        ref = (table.name, key)
        self._lock_exclusive(table, table.partition_of(key))
        if ref in self._inserts:
            self._inserts[ref] = (table, value)
            return
        self._writes[ref] = (table, value)
        self._engine.log.append(self.txn_id, OP_UPDATE, table.name, key, value)

    def insert(self, table: ShoreTable, key: Hashable, value: Any) -> None:
        ref = (table.name, key)
        self._lock_exclusive(table, table.partition_of(key))
        if ref in self._inserts or ref in self._writes:
            raise TransactionAborted("double insert within transaction")
        self._inserts[ref] = (table, value)
        self._engine.log.append(self.txn_id, OP_INSERT, table.name, key, value)

    def delete(self, table: ShoreTable, key: Hashable) -> None:
        ref = (table.name, key)
        self._lock_exclusive(table, table.partition_of(key))
        self._inserts.pop(ref, None)
        self._writes.pop(ref, None)
        self._deletes[ref] = table
        self._engine.log.append(self.txn_id, OP_DELETE, table.name, key)

    def note_scan(self, table: ShoreTable, partition: Hashable) -> None:
        self._lock_shared(table, partition)

    def scan(self, table: ShoreTable, partition: Hashable, lo, hi) -> List:
        self._lock_shared(table, partition)
        out = []
        for key in table.keys_in_range(partition, lo, hi):
            value = self.read(table, key)
            if value is not None:
                out.append((key, value))
        for (name, key), (t, value) in self._inserts.items():
            if name == table.name and t.partition_of(key) == partition and lo <= key < hi:
                out.append((key, value))
        out.sort(key=lambda kv: kv[0])
        return out

    # -- commit/abort --------------------------------------------------------
    def commit(self) -> None:
        if self._done:
            raise RuntimeError("transaction already finished")
        self._done = True
        engine = self._engine
        try:
            if self._writes or self._inserts or self._deletes:
                engine.log.commit(self.txn_id)  # force redo + COMMIT
                for (name, key), (table, value) in self._writes.items():
                    rid = table.rid_of(key)
                    if rid is None:
                        table.index_insert(key, table.store_value(key, value))
                        continue
                    new_rid = table.update_value(rid, key, value)
                    if new_rid != rid:
                        table.index_delete(key)
                        table.index_insert(key, new_rid)
                for (name, key), (table, value) in self._inserts.items():
                    table.index_insert(key, table.store_value(key, value))
                for (name, key), table in self._deletes.items():
                    rid = table.rid_of(key)
                    if rid is not None:
                        table.delete_value(table.index_delete(key))
            with engine._stats_lock:
                engine.stats["commits"] += 1
        finally:
            engine.locks.release_all(self.txn_id)

    def abort(self) -> None:
        if self._done:
            return
        self._done = True
        self._engine.log.append(self.txn_id, "abort")
        self._engine.locks.release_all(self.txn_id)

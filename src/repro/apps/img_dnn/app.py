"""img-dnn: the handwriting (image) recognition application."""

from __future__ import annotations

import numpy as np

from ..base import Application, Client
from .autoencoder import AutoencoderClassifier
from .mnist_synth import IMAGE_SIZE, N_CLASSES, SyntheticMnist

__all__ = ["ImgDnnApp", "ImgDnnClient"]


class ImgDnnClient(Client):
    """Draws random digit images to classify."""

    def __init__(self, seed: int = 0) -> None:
        self._generator = SyntheticMnist(seed=seed + 1000)

    def next_request(self) -> np.ndarray:
        return self._generator.sample().pixels


class ImgDnnApp(Application):
    """Autoencoder + softmax digit recognizer.

    Requests are flattened images; responses are predicted digit
    labels. Each request is a fixed-size matrix pipeline, so service
    times are nearly constant (Fig. 2).
    """

    name = "img-dnn"
    domain = "Image Recognition"

    def __init__(
        self, train_samples: int = 1500, epochs: int = 10, seed: int = 0
    ) -> None:
        if train_samples < N_CLASSES:
            raise ValueError("too few training samples")
        self._train_samples = train_samples
        self._epochs = epochs
        self._seed = seed
        self._model: AutoencoderClassifier = None
        self.train_accuracy: float = None

    def setup(self) -> None:
        generator = SyntheticMnist(seed=self._seed)
        x, y = generator.dataset(self._train_samples)
        model = AutoencoderClassifier(
            layer_sizes=(IMAGE_SIZE * IMAGE_SIZE, 96, 48), seed=self._seed
        )
        model.pretrain(x, epochs=max(3, self._epochs // 2))
        model.train_classifier(x, y, epochs=self._epochs)
        self.train_accuracy = model.accuracy(x, y)
        self._model = model

    @property
    def model(self) -> AutoencoderClassifier:
        if self._model is None:
            raise RuntimeError("call setup() first")
        return self._model

    def process(self, payload: np.ndarray) -> int:
        return int(self.model.predict(payload))

    def handle_batch(self, payloads) -> list:
        """Classify a whole batch in one vectorized forward pass.

        Stacks the flattened images into one ``(batch, pixels)`` matrix
        so every layer's matmul runs once per *batch* instead of once
        per request — the BLAS-amortization win dynamic batching exists
        for: per-call overhead (Python dispatch, kernel launch) is paid
        once, and the matrix-matrix products use the cache far better
        than ``batch`` separate matrix-vector products.
        """
        if not payloads:
            return []
        labels = self.model.predict(np.stack(payloads))
        return [int(label) for label in np.atleast_1d(labels)]

    def make_client(self, seed: int = 0) -> ImgDnnClient:
        return ImgDnnClient(seed=seed)

"""Autoencoder + softmax recognition pipeline.

img-dnn identifies handwritten characters with a deep autoencoder
coupled with softmax regression (Sec. III). The pipeline here is the
same: an encoder is pretrained to reconstruct the input (autoencoder
objective), then a softmax head is trained on the learned codes, with
a light fine-tuning pass through both.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .network import DenseLayer, SoftmaxClassifier

__all__ = ["AutoencoderClassifier"]


class AutoencoderClassifier:
    """Encoder stack + softmax head for digit recognition.

    Parameters
    ----------
    layer_sizes:
        Encoder widths, input first (e.g. ``(256, 96, 48)``).
    n_classes:
        Output classes (10 digits).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int] = (256, 96, 48),
        n_classes: int = 10,
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and one hidden layer")
        rng = np.random.default_rng(seed)
        self.layer_sizes = tuple(layer_sizes)
        self.encoder = [
            DenseLayer(layer_sizes[i], layer_sizes[i + 1], rng)
            for i in range(len(layer_sizes) - 1)
        ]
        self.decoder = [
            DenseLayer(layer_sizes[i + 1], layer_sizes[i], rng)
            for i in reversed(range(len(layer_sizes) - 1))
        ]
        self.head = SoftmaxClassifier(layer_sizes[-1], n_classes, rng)

    # -- training -------------------------------------------------------
    def pretrain(
        self, x: np.ndarray, epochs: int = 5, lr: float = 1.0, batch: int = 32
    ) -> float:
        """Autoencoder reconstruction pretraining; returns final MSE."""
        mse = float("inf")
        for _ in range(epochs):
            errs = []
            for lo in range(0, len(x), batch):
                xb = x[lo : lo + batch]
                h = xb
                for layer in self.encoder:
                    h = layer.forward(h, remember=True)
                recon = h
                for layer in self.decoder:
                    recon = layer.forward(recon, remember=True)
                err = recon - xb
                errs.append(float((err ** 2).mean()))
                grad = 2.0 * err
                for layer in reversed(self.decoder):
                    grad = layer.backward(grad, lr)
                for layer in reversed(self.encoder):
                    grad = layer.backward(grad, lr)
            mse = float(np.mean(errs))
        return mse

    def train_classifier(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        lr: float = 2.0,
        batch: int = 32,
        fine_tune: bool = True,
    ) -> float:
        """Train the softmax head (and fine-tune the encoder).

        Returns the final training loss.
        """
        loss = float("inf")
        for _ in range(epochs):
            losses = []
            for lo in range(0, len(x), batch):
                xb, yb = x[lo : lo + batch], y[lo : lo + batch]
                h = xb
                for layer in self.encoder:
                    h = layer.forward(h, remember=True)
                step_loss, grad = self.head.train_step(h, yb, lr)
                losses.append(step_loss)
                if fine_tune:
                    for layer in reversed(self.encoder):
                        grad = layer.backward(grad, lr)
            loss = float(np.mean(losses))
        return loss

    # -- inference --------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        h = x
        for layer in self.encoder:
            h = layer.forward(h)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a batch (or single flattened image)."""
        single = x.ndim == 1
        batch = x[None, :] if single else x
        pred = self.head.predict(self.encode(batch))
        return pred[0] if single else pred

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == y).mean())

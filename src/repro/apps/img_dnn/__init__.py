"""img-dnn: image recognition (autoencoder + softmax regression)."""

from .app import ImgDnnApp, ImgDnnClient
from .autoencoder import AutoencoderClassifier
from .mnist_synth import IMAGE_SIZE, N_CLASSES, DigitSample, SyntheticMnist
from .network import DenseLayer, SoftmaxClassifier, sigmoid, softmax

__all__ = [
    "ImgDnnApp",
    "ImgDnnClient",
    "AutoencoderClassifier",
    "IMAGE_SIZE",
    "N_CLASSES",
    "DigitSample",
    "SyntheticMnist",
    "DenseLayer",
    "SoftmaxClassifier",
    "sigmoid",
    "softmax",
]

"""Synthetic MNIST-like handwritten digit generation.

The paper drives img-dnn with MNIST samples. Offline, we synthesize a
comparable dataset: canonical 8x8 digit glyphs upsampled to 16x16 and
perturbed with random shifts, per-pixel noise, and stroke-intensity
jitter — variation enough that classification is a real (but
learnable) task for the autoencoder+softmax pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["DigitSample", "SyntheticMnist", "IMAGE_SIZE", "N_CLASSES"]

IMAGE_SIZE = 16
N_CLASSES = 10

_GLYPHS = {
    0: ["..####..",
        ".#....#.",
        "#......#",
        "#......#",
        "#......#",
        "#......#",
        ".#....#.",
        "..####.."],
    1: ["...##...",
        "..###...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        ".######."],
    2: ["..####..",
        ".#....#.",
        "......#.",
        ".....#..",
        "....#...",
        "...#....",
        "..#.....",
        ".######."],
    3: ["..####..",
        ".#....#.",
        "......#.",
        "...###..",
        "......#.",
        "......#.",
        ".#....#.",
        "..####.."],
    4: ["....##..",
        "...#.#..",
        "..#..#..",
        ".#...#..",
        "########",
        ".....#..",
        ".....#..",
        ".....#.."],
    5: [".######.",
        ".#......",
        ".#......",
        ".#####..",
        "......#.",
        "......#.",
        ".#....#.",
        "..####.."],
    6: ["..####..",
        ".#......",
        "#.......",
        "#.####..",
        "##....#.",
        "#......#",
        ".#....#.",
        "..####.."],
    7: ["########",
        "......#.",
        ".....#..",
        "....#...",
        "...#....",
        "...#....",
        "...#....",
        "...#...."],
    8: ["..####..",
        ".#....#.",
        ".#....#.",
        "..####..",
        ".#....#.",
        "#......#",
        ".#....#.",
        "..####.."],
    9: ["..####..",
        ".#....#.",
        "#......#",
        ".#.....#",
        "..######",
        ".......#",
        "......#.",
        "..####.."],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = _GLYPHS[digit]
    return np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in rows]
    )


def _upsample(img: np.ndarray, factor: int = 2) -> np.ndarray:
    return np.kron(img, np.ones((factor, factor)))


@dataclass(frozen=True)
class DigitSample:
    """One image (flattened, in [0, 1]) with its label."""

    pixels: np.ndarray  # (IMAGE_SIZE * IMAGE_SIZE,)
    label: int


class SyntheticMnist:
    """Deterministic generator of noisy digit images.

    Parameters
    ----------
    shift:
        Maximum absolute translation in pixels (both axes).
    noise:
        Per-pixel additive Gaussian noise sigma.
    """

    def __init__(self, shift: int = 2, noise: float = 0.15, seed: int = 0) -> None:
        if shift < 0 or noise < 0:
            raise ValueError("shift and noise must be non-negative")
        self.shift = shift
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        self._bases = {d: _upsample(_glyph_array(d)) for d in range(N_CLASSES)}

    def sample(self, digit: int = None) -> DigitSample:
        if digit is None:
            digit = int(self._rng.integers(0, N_CLASSES))
        if not 0 <= digit < N_CLASSES:
            raise ValueError("digit must be in [0, 10)")
        img = self._bases[digit] * self._rng.uniform(0.7, 1.0)
        dy, dx = self._rng.integers(-self.shift, self.shift + 1, size=2)
        img = np.roll(np.roll(img, int(dy), axis=0), int(dx), axis=1)
        img = img + self._rng.normal(0.0, self.noise, size=img.shape)
        return DigitSample(np.clip(img, 0.0, 1.0).ravel(), digit)

    def dataset(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)`` with balanced classes, shuffled."""
        if n < N_CLASSES:
            raise ValueError("need at least one sample per class")
        samples: List[DigitSample] = []
        for i in range(n):
            samples.append(self.sample(i % N_CLASSES))
        self._rng.shuffle(samples)
        x = np.stack([s.pixels for s in samples])
        y = np.array([s.label for s in samples])
        return x, y

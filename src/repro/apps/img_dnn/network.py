"""Minimal dense neural-network layers (numpy, from scratch).

Just enough machinery for img-dnn's pipeline: fully-connected layers
with sigmoid activations, a softmax cross-entropy head, and plain SGD.
Forward passes are the per-request work; training happens once at
setup.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["DenseLayer", "sigmoid", "softmax", "SoftmaxClassifier"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)


class DenseLayer:
    """Fully connected layer with sigmoid activation."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError("layer dimensions must be >= 1")
        limit = np.sqrt(6.0 / (n_in + n_out))
        self.weights = rng.uniform(-limit, limit, size=(n_in, n_out))
        self.bias = np.zeros(n_out)
        self._x: np.ndarray = None
        self._a: np.ndarray = None

    def forward(self, x: np.ndarray, remember: bool = False) -> np.ndarray:
        a = sigmoid(x @ self.weights + self.bias)
        if remember:
            self._x, self._a = x, a
        return a

    def backward(self, grad_out: np.ndarray, lr: float) -> np.ndarray:
        """SGD step from upstream gradient; returns gradient w.r.t input."""
        if self._a is None:
            raise RuntimeError("forward(remember=True) must precede backward")
        dz = grad_out * self._a * (1.0 - self._a)
        grad_in = dz @ self.weights.T
        self.weights -= lr * (self._x.T @ dz) / len(dz)
        self.bias -= lr * dz.mean(axis=0)
        return grad_in


class SoftmaxClassifier:
    """Softmax regression head with cross-entropy loss."""

    def __init__(self, n_in: int, n_classes: int, rng: np.random.Generator) -> None:
        if n_in < 1 or n_classes < 2:
            raise ValueError("need n_in >= 1 and n_classes >= 2")
        self.weights = rng.normal(0.0, 0.01, size=(n_in, n_classes))
        self.bias = np.zeros(n_classes)

    def probabilities(self, x: np.ndarray) -> np.ndarray:
        return softmax(x @ self.weights + self.bias)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(x @ self.weights + self.bias, axis=-1)

    def train_step(self, x: np.ndarray, y: np.ndarray, lr: float) -> Tuple[float, np.ndarray]:
        """One SGD step; returns (loss, gradient w.r.t. inputs)."""
        probs = self.probabilities(x)
        n = len(x)
        loss = -np.log(probs[np.arange(n), y] + 1e-12).mean()
        delta = probs
        delta[np.arange(n), y] -= 1.0
        grad_in = delta @ self.weights.T
        self.weights -= lr * (x.T @ delta) / n
        self.bias -= lr * delta.mean(axis=0)
        return float(loss), grad_in

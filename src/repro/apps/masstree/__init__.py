"""masstree: fast in-memory key-value store (trie of B+trees)."""

from .app import MasstreeApp, MasstreeClient
from .btree import BPlusTree
from .tree import Masstree, key_slices

__all__ = ["MasstreeApp", "MasstreeClient", "BPlusTree", "Masstree", "key_slices"]

"""Masstree-style trie of B+trees.

Masstree [Mao et al., EuroSys 2012] organizes keys as a trie with
fanout 2^64: each trie layer is a B+tree indexed by one 8-byte slice
of the key, and keys longer than 8 bytes descend into a next-layer
tree hanging off the slice's slot. This bounds per-node key-compare
cost (fixed-width slices compare as integers) while supporting
arbitrary-length keys — the property that makes masstree fast on real
key distributions.

This module reproduces that structure faithfully (layering, slice
encoding, descent) on top of :class:`BPlusTree` layers. A single lock
protects writers; reads take it too, since CPython offers no safe
lock-free traversal — the concurrency *interface* matches, the
scalability of the original's optimistic concurrency does not (and is
modelled, not measured, in the simulator).
"""

from __future__ import annotations

import struct
import threading
from typing import Any, Iterator, Tuple

from .btree import BPlusTree

__all__ = ["Masstree", "key_slices"]

_SLICE = struct.Struct(">Q")


def key_slices(key: bytes) -> Tuple[int, ...]:
    """Split ``key`` into big-endian 8-byte integer slices.

    The final partial slice is zero-padded and tagged with its true
    length in the low bits' companion (handled by the layer logic via
    (slice, length) tuples) so that e.g. b"a" and b"a\\x00" stay
    distinct.
    """
    if not isinstance(key, bytes):
        raise TypeError("masstree keys are bytes")
    slices = []
    for off in range(0, max(len(key), 1), 8):
        chunk = key[off : off + 8]
        padded = chunk.ljust(8, b"\x00")
        slices.append((_SLICE.unpack(padded)[0], len(chunk)))
    return tuple(slices)


class _Layer:
    """One trie layer: a B+tree over (slice_value, slice_len) keys.

    Each slot holds either a terminal value or a deeper layer (when
    distinct keys share this 8-byte prefix slice).
    """

    __slots__ = ("tree",)

    def __init__(self, order: int) -> None:
        self.tree = BPlusTree(order=order)


class _Terminal:
    """Wrapper marking a slot as a stored value (vs. a sub-layer)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class Masstree:
    """Concurrent ordered map from bytes keys to arbitrary values."""

    def __init__(self, order: int = 16) -> None:
        self._order = order
        self._root = _Layer(order)
        self._lock = threading.Lock()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- operations --------------------------------------------------------
    def get(self, key: bytes, default: Any = None) -> Any:
        slices = key_slices(key)
        with self._lock:
            layer = self._root
            for i, sl in enumerate(slices):
                slot = layer.tree.get(sl)
                if slot is None:
                    return default
                if isinstance(slot, _Terminal):
                    # Terminal found before slices ran out => shorter
                    # stored key sharing this prefix, not ours.
                    return slot.value if i == len(slices) - 1 else default
                if i == len(slices) - 1:
                    # Our key ends here but longer keys share the
                    # prefix: our terminal lives under the zero-length
                    # slice of the sub-layer (see _put_slices).
                    inner = slot.tree.get((0, 0))
                    if isinstance(inner, _Terminal):
                        return inner.value
                    return default
                layer = slot
            return default

    def put(self, key: bytes, value: Any) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        slices = key_slices(key)
        with self._lock:
            return self._put_slices(self._root, slices, 0, value)

    def _put_slices(self, layer: _Layer, slices, depth: int, value: Any) -> bool:
        sl = slices[depth]
        last = depth == len(slices) - 1
        slot = layer.tree.get(sl)
        if last:
            if slot is None:
                layer.tree.put(sl, _Terminal(value))
                self._size += 1
                return True
            if isinstance(slot, _Terminal):
                slot.value = value
                return False
            # A deeper layer exists for longer keys with this prefix;
            # a full 8-byte slice can also terminate here. Store the
            # terminal inside the sub-layer under a zero-length slice.
            return self._put_slices(slot, slices + ((0, 0),), depth + 1, value)
        if slot is None:
            sub = _Layer(self._order)
            layer.tree.put(sl, sub)
            return self._put_slices(sub, slices, depth + 1, value)
        if isinstance(slot, _Terminal):
            # Collision: existing shorter/equal-prefix key must move
            # down into a fresh sub-layer under the zero-length slice.
            sub = _Layer(self._order)
            sub.tree.put((0, 0), slot)
            layer.tree.put(sl, sub)
            return self._put_slices(sub, slices, depth + 1, value)
        return self._put_slices(slot, slices, depth + 1, value)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True if it was present."""
        slices = key_slices(key)
        with self._lock:
            layer = self._root
            for i, sl in enumerate(slices):
                slot = layer.tree.get(sl)
                if slot is None:
                    return False
                if isinstance(slot, _Terminal):
                    if i == len(slices) - 1:
                        layer.tree.delete(sl)
                        self._size -= 1
                        return True
                    return False
                if i == len(slices) - 1:
                    # Key may terminate inside the sub-layer.
                    inner = slot.tree.get((0, 0))
                    if isinstance(inner, _Terminal):
                        slot.tree.delete((0, 0))
                        self._size -= 1
                        return True
                    return False
                layer = slot
            return False

    def __contains__(self, key: bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """All (key, value) pairs in byte-lexicographic key order."""
        with self._lock:
            yield from self._iter_layer(self._root, b"")

    def range(self, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, Any]]:
        """Pairs with ``lo <= key < hi`` in key order.

        Implemented over the ordered layer iteration; masstree's
        fixed-width slice ordering makes byte-lexicographic key order
        equal layer-traversal order, so no sorting is needed.
        """
        if not isinstance(lo, bytes) or not isinstance(hi, bytes):
            raise TypeError("range bounds are bytes")
        for key, value in self.items():
            if key >= hi:
                return
            if key >= lo:
                yield key, value

    def _iter_layer(self, layer: _Layer, prefix: bytes):
        for (value_bits, length), slot in layer.tree.items():
            chunk = _SLICE.pack(value_bits)[:length]
            if isinstance(slot, _Terminal):
                yield prefix + chunk, slot.value
            else:
                yield from self._iter_layer(slot, prefix + chunk)

"""In-memory B+tree.

The building block of the masstree-style key-value store: an order-N
B+tree with sorted keys in leaves, linked leaf nodes for range scans,
and standard split-on-insert rebalancing. Keys are arbitrary ordered
Python values (the masstree layer uses fixed-width byte slices).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []  # internal nodes only
        self.values: List[Any] = []  # leaves only
        self.next_leaf: Optional["_Node"] = None  # leaves only


class BPlusTree:
    """Order-``order`` B+tree mapping keys to values.

    ``order`` is the maximum number of keys per node; nodes split when
    they exceed it. Lookup and insert are O(log n) with cache-friendly
    sorted arrays in each node — the design masstree builds its trie
    layers out of.
    """

    def __init__(self, order: int = 16) -> None:
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- lookup ----------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insert ----------------------------------------------------------
    def put(self, key: Any, value: Any) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return False
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1
        # Split upward while nodes overflow.
        while len(node.keys) > self.order:
            sep, sibling = self._split(node)
            if not path:
                new_root = _Node(is_leaf=False)
                new_root.keys = [sep]
                new_root.children = [node, sibling]
                self._root = new_root
                break
            parent, child_idx = path.pop()
            parent.keys.insert(child_idx, sep)
            parent.children.insert(child_idx + 1, sibling)
            node = parent
        return True

    def _split(self, node: _Node) -> Tuple[Any, _Node]:
        """Split an overflowing node; returns (separator, right sibling)."""
        mid = len(node.keys) // 2
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        return separator, sibling

    # -- delete ----------------------------------------------------------
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns True if it was present.

        Uses lazy deletion (no rebalancing): leaves may underflow,
        which trades a little space for much simpler concurrent reads —
        the same trade masstree itself makes for removes.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            self._size -= 1
            return True
        return False

    # -- scans -----------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All items in key order (via the leaf chain)."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        """Items with ``lo <= key < hi`` in key order."""
        leaf = self._find_leaf(lo)
        idx = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key >= hi:
                    return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    # -- invariants (used by property tests) ------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        self._check_node(self._root, None, None, is_root=True)
        # Leaf chain must be sorted and cover exactly len(self) items.
        items = list(self.items())
        keys = [k for k, _ in items]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(items) == self._size, "size counter mismatch"

    def _check_node(self, node: _Node, lo, hi, is_root: bool = False) -> None:
        assert node.keys == sorted(node.keys), "node keys unsorted"
        for key in node.keys:
            if lo is not None:
                assert key >= lo, "key below subtree lower bound"
            if hi is not None:
                assert key < hi, "key above subtree upper bound"
        if node.is_leaf:
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) <= self.order
        else:
            assert len(node.children) == len(node.keys) + 1
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                self._check_node(child, bounds[i], bounds[i + 1])

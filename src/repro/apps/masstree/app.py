"""masstree: the in-memory key-value store application."""

from __future__ import annotations

from typing import Optional

from ...workloads.ycsb import YcsbOperation, YcsbWorkload
from ..base import Application, Client
from .tree import Masstree

__all__ = ["MasstreeApp", "MasstreeClient"]


class MasstreeClient(Client):
    """mycsb-a driver: 50% GET / 50% PUT, Zipfian key popularity."""

    def __init__(self, n_records: int, value_size: int, seed: int = 0) -> None:
        self._workload = YcsbWorkload(
            n_records=n_records, value_size=value_size, seed=seed
        )

    def next_request(self) -> YcsbOperation:
        return self._workload.next_operation()


class MasstreeApp(Application):
    """Key-value store with near-constant per-request service times.

    Requests are :class:`YcsbOperation` payloads; GETs return the
    stored value (or None), PUTs return True/False for insert/update.
    """

    name = "masstree"
    domain = "Key-Value Store"

    def __init__(
        self, n_records: int = 10_000, value_size: int = 100, seed: int = 0
    ) -> None:
        self._n_records = n_records
        self._value_size = value_size
        self._seed = seed
        self._tree: Masstree = None

    def setup(self) -> None:
        tree = Masstree()
        workload = YcsbWorkload(
            n_records=self._n_records, value_size=self._value_size
        )
        for key, value in workload.initial_records().items():
            tree.put(key.encode(), value)
        self._tree = tree

    @property
    def tree(self) -> Masstree:
        if self._tree is None:
            raise RuntimeError("call setup() first")
        return self._tree

    def process(self, payload: YcsbOperation) -> Optional[bytes]:
        if payload.op == "get":
            return self.tree.get(payload.key.encode())
        if payload.op == "put":
            return self.tree.put(payload.key.encode(), payload.value)
        if payload.op == "scan":
            # Short range scan from the key (YCSB workload-E style);
            # the scan length rides in the value field as an int.
            length = int.from_bytes(payload.value or b"\x0a", "big")
            out = []
            for key, value in self.tree.range(
                payload.key.encode(), b"\xff" * 24
            ):
                out.append((key, value))
                if len(out) >= length:
                    break
            return out
        raise ValueError(f"unknown operation {payload.op!r}")

    def handle_batch(self, payloads) -> list:
        """Grouped lookups: one tree descent per *distinct* hot key.

        YCSB's Zipfian popularity makes duplicate keys within a batch
        common, so the batch is served in arrival order with a
        write-through memo: a GET whose key was already read (or
        written) by an earlier member reuses that value instead of
        descending the tree again. Order semantics match the unbatched
        loop exactly — a PUT updates the memo, so a later GET of the
        same key observes it.
        """
        tree = self.tree
        memo = {}
        responses = []
        for op in payloads:
            if op.op == "get":
                key = op.key.encode()
                if key not in memo:
                    memo[key] = tree.get(key)
                responses.append(memo[key])
            elif op.op == "put":
                key = op.key.encode()
                responses.append(tree.put(key, op.value))
                memo[key] = op.value
            else:
                responses.append(self.process(op))
        return responses

    def make_client(self, seed: int = 0) -> MasstreeClient:
        return MasstreeClient(self._n_records, self._value_size, seed=seed)

"""GMM-HMM acoustic model.

Each phone is a 3-state left-to-right HMM; each state emits feature
vectors from a diagonal-covariance Gaussian mixture. The full decoding
network is the concatenation of word HMMs (phones in sequence) with
inter-word transitions — the structure sphinx searches with Viterbi
beam decoding.

The model is *generated*, not trained: state means are drawn from a
deterministic RNG so that (a) the synthetic feature generator and the
recognizer share ground truth, and (b) states are acoustically
separable but confusable enough that beam search does real pruning
work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .lexicon import PHONES

__all__ = ["AcousticModel", "DecodingNetwork"]

STATES_PER_PHONE = 3


@dataclass(frozen=True)
class DecodingNetwork:
    """Flattened HMM state space for the whole vocabulary.

    States are laid out contiguously per word, phones in order, 3
    states per phone, so within-word forward transitions are simply
    ``state -> state + 1``. Arrays:

    - ``means``/``log_vars``: (n_states, n_mix, dim) GMM parameters.
    - ``mix_logw``: (n_states, n_mix) mixture log-weights.
    - ``word_entry``/``word_exit``: first and last state per word.
    - ``log_self``/``log_fwd``: loop and advance log-probabilities.
    """

    words: Tuple[str, ...]
    means: np.ndarray
    log_vars: np.ndarray
    mix_logw: np.ndarray
    word_entry: np.ndarray
    word_exit: np.ndarray
    log_self: float
    log_fwd: float

    @property
    def n_states(self) -> int:
        return self.means.shape[0]

    @property
    def dim(self) -> int:
        return self.means.shape[2]


class AcousticModel:
    """Builds and holds the GMM-HMM parameters.

    Parameters
    ----------
    lexicon:
        Word -> phone-sequence map.
    dim:
        Feature dimensionality (13 mimics MFCC statics).
    n_mix:
        Gaussians per state.
    separation:
        Distance between phone-state cluster centers in feature space;
        lower values make states more confusable (more beam work).
    """

    def __init__(
        self,
        lexicon: Dict[str, List[str]],
        dim: int = 13,
        n_mix: int = 2,
        separation: float = 3.0,
        self_loop_prob: float = 0.6,
        seed: int = 0,
    ) -> None:
        if not lexicon:
            raise ValueError("lexicon must be non-empty")
        if not 0.0 < self_loop_prob < 1.0:
            raise ValueError("self_loop_prob must be in (0, 1)")
        self.lexicon = dict(lexicon)
        self.dim = dim
        self.n_mix = n_mix
        self.separation = separation
        self.self_loop_prob = self_loop_prob
        self.seed = seed
        self._network: DecodingNetwork = None
        # Per-phone per-state canonical means, shared across words so
        # the same phone sounds the same wherever it appears.
        rng = np.random.default_rng(seed)
        self._phone_state_means = {
            phone: rng.normal(0.0, separation, size=(STATES_PER_PHONE, dim))
            for phone in PHONES
        }

    def network(self) -> DecodingNetwork:
        if self._network is not None:
            return self._network
        rng = np.random.default_rng(self.seed + 1)
        words = tuple(sorted(self.lexicon))
        means, log_vars, logw = [], [], []
        entries, exits = [], []
        state = 0
        for word in words:
            entries.append(state)
            for phone in self.lexicon[word]:
                base = self._phone_state_means[phone]
                for s in range(STATES_PER_PHONE):
                    # Mixture components jitter around the canonical mean.
                    comp_means = base[s] + rng.normal(
                        0.0, 0.3, size=(self.n_mix, self.dim)
                    )
                    means.append(comp_means)
                    log_vars.append(np.zeros((self.n_mix, self.dim)))
                    w = rng.dirichlet(np.ones(self.n_mix) * 5.0)
                    logw.append(np.log(w))
                    state += 1
            exits.append(state - 1)
        self._network = DecodingNetwork(
            words=words,
            means=np.asarray(means),
            log_vars=np.asarray(log_vars),
            mix_logw=np.asarray(logw),
            word_entry=np.asarray(entries),
            word_exit=np.asarray(exits),
            log_self=math.log(self.self_loop_prob),
            log_fwd=math.log(1.0 - self.self_loop_prob),
        )
        return self._network

    def emission_logprobs(
        self, frames: np.ndarray, active: np.ndarray = None
    ) -> np.ndarray:
        """Log P(frame | state) for every (frame, state) pair.

        ``frames`` is (T, dim). If ``active`` (bool mask over states)
        is given, only those states are evaluated and the rest get
        -inf — that is where beam pruning actually saves work.
        """
        net = self.network()
        means = net.means
        log_vars = net.log_vars
        logw = net.mix_logw
        if active is not None:
            means = means[active]
            log_vars = log_vars[active]
            logw = logw[active]
        # (T, S', M, D) squared Mahalanobis terms, diagonal covariance.
        diff = frames[:, None, None, :] - means[None, :, :, :]
        inv_var = np.exp(-log_vars)[None, :, :, :]
        quad = np.sum(diff * diff * inv_var + log_vars[None], axis=3)
        const = -0.5 * means.shape[-1] * math.log(2.0 * math.pi)
        comp_ll = const - 0.5 * quad + logw[None, :, :]
        # logsumexp over mixture components.
        mx = comp_ll.max(axis=2, keepdims=True)
        ll = mx[:, :, 0] + np.log(np.sum(np.exp(comp_ll - mx), axis=2))
        if active is None:
            return ll
        full = np.full((frames.shape[0], net.n_states), -np.inf)
        full[:, active] = ll
        return full

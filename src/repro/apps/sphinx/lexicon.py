"""Pronunciation lexicon for the alphanumeric recognition task.

CMU AN4 (the paper's sphinx input set) is an alphanumeric database:
utterances are sequences of spelled letters and digits. The lexicon
maps each word (letter or digit) to a phone sequence drawn from a
compact phone inventory, mirroring AN4's structure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["PHONES", "build_lexicon", "AN4_WORDS"]

#: Compact phone inventory (a subset of ARPAbet).
PHONES: Tuple[str, ...] = (
    "ah", "ey", "b", "iy", "s", "d", "eh", "f", "jh", "k",
    "l", "m", "n", "ow", "p", "r", "t", "uw", "v", "w",
    "y", "z", "th", "ay", "ch",
)

#: AN4-style vocabulary: spelled letters and digits.
AN4_WORDS: Tuple[str, ...] = tuple(
    list("abcdefghijklmnopqrstuvwxyz")
    + ["zero", "one", "two", "three", "four", "five", "six", "seven",
       "eight", "nine"]
)

_LETTER_PRONUNCIATIONS: Dict[str, List[str]] = {
    "a": ["ey"], "b": ["b", "iy"], "c": ["s", "iy"], "d": ["d", "iy"],
    "e": ["iy"], "f": ["eh", "f"], "g": ["jh", "iy"], "h": ["ey", "ch"],
    "i": ["ay"], "j": ["jh", "ey"], "k": ["k", "ey"], "l": ["eh", "l"],
    "m": ["eh", "m"], "n": ["eh", "n"], "o": ["ow"], "p": ["p", "iy"],
    "q": ["k", "y", "uw"], "r": ["ah", "r"], "s": ["eh", "s"],
    "t": ["t", "iy"], "u": ["y", "uw"], "v": ["v", "iy"],
    "w": ["d", "ah", "b", "l", "y", "uw"], "x": ["eh", "k", "s"],
    "y": ["w", "ay"], "z": ["z", "iy"],
}

_DIGIT_PRONUNCIATIONS: Dict[str, List[str]] = {
    "zero": ["z", "iy", "r", "ow"], "one": ["w", "ah", "n"],
    "two": ["t", "uw"], "three": ["th", "r", "iy"],
    "four": ["f", "ow", "r"], "five": ["f", "ay", "v"],
    "six": ["s", "iy", "k", "s"],
    "seven": ["s", "eh", "v", "eh", "n"], "eight": ["ey", "t"],
    "nine": ["n", "ay", "n"],
}


def build_lexicon() -> Dict[str, List[str]]:
    """Word -> phone sequence for the full AN4-style vocabulary."""
    lexicon: Dict[str, List[str]] = {}
    lexicon.update(_LETTER_PRONUNCIATIONS)
    lexicon.update(_DIGIT_PRONUNCIATIONS)
    phone_set = set(PHONES)
    for word, phones in lexicon.items():
        unknown = set(phones) - phone_set
        if unknown:
            raise ValueError(f"word {word!r} uses unknown phones {unknown}")
    return lexicon

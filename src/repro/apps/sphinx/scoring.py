"""Recognition accuracy scoring.

Word error rate (WER) via Levenshtein alignment — the standard speech
recognition metric: (substitutions + deletions + insertions) divided
by reference length. Used by tests and examples to validate that the
recognizer actually recognizes.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["edit_distance", "word_error_rate"]


def edit_distance(reference: Sequence[str], hypothesis: Sequence[str]) -> int:
    """Levenshtein distance between two token sequences."""
    ref = list(reference)
    hyp = list(hypothesis)
    if not ref:
        return len(hyp)
    if not hyp:
        return len(ref)
    previous = list(range(len(hyp) + 1))
    for i, ref_tok in enumerate(ref, start=1):
        current = [i] + [0] * len(hyp)
        for j, hyp_tok in enumerate(hyp, start=1):
            cost = 0 if ref_tok == hyp_tok else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution / match
            )
        previous = current
    return previous[-1]


def word_error_rate(
    reference: Sequence[str], hypothesis: Sequence[str]
) -> float:
    """WER = edit distance / reference length (can exceed 1)."""
    if not reference:
        raise ValueError("reference transcript must be non-empty")
    return edit_distance(reference, hypothesis) / len(reference)

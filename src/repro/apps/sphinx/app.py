"""sphinx: the speech recognition application."""

from __future__ import annotations

import numpy as np

from ..base import Application, Client
from .features import UtteranceGenerator
from .hmm import AcousticModel
from .lexicon import build_lexicon
from .viterbi import RecognitionResult, ViterbiDecoder

__all__ = ["SphinxApp", "SphinxClient"]


class SphinxClient(Client):
    """Draws random AN4-style utterances (feature-frame matrices)."""

    def __init__(self, model: AcousticModel, seed: int = 0, **gen_kwargs) -> None:
        self._generator = UtteranceGenerator(model, seed=seed, **gen_kwargs)

    def next_request(self) -> np.ndarray:
        return self._generator.next_utterance().frames


class SphinxApp(Application):
    """GMM-HMM recognizer with Viterbi beam search.

    Requests are (T, dim) feature matrices; responses are
    :class:`RecognitionResult`. Compute-intensive with high variance —
    the longest service times in the suite, as in the paper.
    """

    name = "sphinx"
    domain = "Speech Recognition"

    def __init__(self, beam: float = 80.0, seed: int = 0) -> None:
        self._seed = seed
        self._beam = beam
        self._model: AcousticModel = None
        self._decoder: ViterbiDecoder = None

    def setup(self) -> None:
        self._model = AcousticModel(build_lexicon(), seed=self._seed)
        self._model.network()  # build eagerly, not on first request
        self._decoder = ViterbiDecoder(self._model, beam=self._beam)

    @property
    def model(self) -> AcousticModel:
        if self._model is None:
            raise RuntimeError("call setup() first")
        return self._model

    def process(self, payload: np.ndarray) -> RecognitionResult:
        if self._decoder is None:
            raise RuntimeError("call setup() first")
        return self._decoder.decode(payload)

    def make_client(self, seed: int = 0) -> SphinxClient:
        return SphinxClient(self.model, seed=seed)

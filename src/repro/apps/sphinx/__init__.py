"""sphinx: speech recognition (GMM-HMM + beam-searched Viterbi)."""

from .app import SphinxApp, SphinxClient
from .features import Utterance, UtteranceGenerator
from .hmm import STATES_PER_PHONE, AcousticModel, DecodingNetwork
from .lexicon import AN4_WORDS, PHONES, build_lexicon
from .scoring import edit_distance, word_error_rate
from .viterbi import RecognitionResult, ViterbiDecoder

__all__ = [
    "SphinxApp",
    "SphinxClient",
    "Utterance",
    "UtteranceGenerator",
    "STATES_PER_PHONE",
    "AcousticModel",
    "DecodingNetwork",
    "AN4_WORDS",
    "PHONES",
    "build_lexicon",
    "RecognitionResult",
    "ViterbiDecoder",
    "edit_distance",
    "word_error_rate",
]

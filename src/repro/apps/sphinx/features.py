"""Synthetic utterance generation.

Stands in for the CMU AN4 recordings: draws a word sequence (an
alphanumeric string, like AN4's spelled IDs and numbers), walks each
word's HMM generatively — sampling a dwell time per state and emitting
feature frames from the state's mixture — and adds observation noise.
Because the frames come from the same acoustic model the recognizer
searches, recognition accuracy is meaningful and decoding effort
behaves like the real thing (longer utterances => more frames => more
beam work).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .hmm import AcousticModel

__all__ = ["Utterance", "UtteranceGenerator"]


@dataclass(frozen=True)
class Utterance:
    """Feature frames plus the ground-truth transcript."""

    frames: np.ndarray  # (T, dim)
    transcript: Tuple[str, ...]


class UtteranceGenerator:
    """Draws AN4-style utterances from an acoustic model.

    Parameters
    ----------
    min_words / max_words:
        Utterance length range in words (AN4 utterances are short
        strings of letters and digits).
    mean_dwell:
        Mean frames spent in each HMM state (geometric dwell).
    noise:
        Observation noise standard deviation added on top of the
        state's sampled emission.
    """

    def __init__(
        self,
        model: AcousticModel,
        min_words: int = 2,
        max_words: int = 8,
        mean_dwell: float = 3.0,
        noise: float = 0.4,
        seed: int = 0,
    ) -> None:
        if not 1 <= min_words <= max_words:
            raise ValueError("need 1 <= min_words <= max_words")
        if mean_dwell < 1.0:
            raise ValueError("mean_dwell must be >= 1")
        self._model = model
        self._net = model.network()
        self.min_words = min_words
        self.max_words = max_words
        self.mean_dwell = mean_dwell
        self.noise = noise
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed + 7)

    def next_utterance(self) -> Utterance:
        n_words = self._rng.randint(self.min_words, self.max_words)
        words = tuple(
            self._rng.choice(self._net.words) for _ in range(n_words)
        )
        frames: List[np.ndarray] = []
        for word in words:
            frames.extend(self._emit_word(word))
        return Utterance(np.asarray(frames), words)

    def _emit_word(self, word: str) -> List[np.ndarray]:
        word_idx = self._net.words.index(word)
        start = int(self._net.word_entry[word_idx])
        end = int(self._net.word_exit[word_idx])
        frames: List[np.ndarray] = []
        for state in range(start, end + 1):
            dwell = 1 + self._np_rng.geometric(1.0 / self.mean_dwell)
            for _ in range(int(dwell)):
                frames.append(self._emit_state(state))
        return frames

    def _emit_state(self, state: int) -> np.ndarray:
        logw = self._net.mix_logw[state]
        comp = self._np_rng.choice(len(logw), p=np.exp(logw) / np.exp(logw).sum())
        mean = self._net.means[state, comp]
        std = np.exp(0.5 * self._net.log_vars[state, comp])
        return self._np_rng.normal(mean, std) + self._np_rng.normal(
            0.0, self.noise, size=mean.shape
        )

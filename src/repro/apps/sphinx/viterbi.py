"""Beam-searched Viterbi decoding over the flattened word network.

Token-passing Viterbi with per-frame beam pruning: only states within
``beam`` of the best score stay active, and emissions are evaluated
for active states only — so acoustic confusability directly translates
into decoding work, as in sphinx's probabilistically pruned search
tree (Sec. III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .hmm import AcousticModel

__all__ = ["RecognitionResult", "ViterbiDecoder"]


@dataclass(frozen=True)
class RecognitionResult:
    """Decoded transcript with its Viterbi score and work counter."""

    words: Tuple[str, ...]
    score: float
    active_states: int  # total active states across frames (work proxy)


class ViterbiDecoder:
    """Decodes feature-frame matrices into word sequences.

    Parameters
    ----------
    beam:
        Log-likelihood beam width; states scoring below
        ``best - beam`` are pruned each frame.
    """

    def __init__(self, model: AcousticModel, beam: float = 80.0) -> None:
        if beam <= 0:
            raise ValueError("beam must be positive")
        self._model = model
        self._net = model.network()
        self.beam = beam
        net = self._net
        n_words = len(net.words)
        self._word_lm = math.log(1.0 / n_words)  # uniform word bigram
        # state -> owning word index
        self._state_word = np.zeros(net.n_states, dtype=np.int64)
        for w in range(n_words):
            self._state_word[net.word_entry[w] : net.word_exit[w] + 1] = w
        self._entry_mask = np.zeros(net.n_states, dtype=bool)
        self._entry_mask[net.word_entry] = True

    def decode(self, frames: np.ndarray) -> RecognitionResult:
        if frames.ndim != 2 or frames.shape[1] != self._net.dim:
            raise ValueError(
                f"frames must be (T, {self._net.dim}), got {frames.shape}"
            )
        if frames.shape[0] == 0:
            return RecognitionResult((), 0.0, 0)
        net = self._net
        n_states = net.n_states
        n_frames = frames.shape[0]
        bp = np.zeros((n_frames, n_states), dtype=np.int32)
        neg_inf = -np.inf

        score = np.full(n_states, neg_inf)
        score[net.word_entry] = self._word_lm
        active = score > neg_inf
        ll0 = self._model.emission_logprobs(frames[0:1], active)[0]
        score = score + ll0
        bp[0, :] = np.arange(n_states)
        total_active = int(active.sum())

        for t in range(1, n_frames):
            self_sc = score + net.log_self
            fwd_sc = np.full(n_states, neg_inf)
            fwd_sc[1:] = score[:-1] + net.log_fwd
            fwd_sc[self._entry_mask] = neg_inf  # no cross-word fall-through

            new_score = self_sc.copy()
            pred = np.arange(n_states, dtype=np.int32)
            take_fwd = fwd_sc > new_score
            new_score[take_fwd] = fwd_sc[take_fwd]
            pred[take_fwd] = np.nonzero(take_fwd)[0].astype(np.int32) - 1

            # Word-to-word transitions: best exit feeds every entry.
            exit_scores = score[net.word_exit] + net.log_fwd + self._word_lm
            best_exit_word = int(np.argmax(exit_scores))
            best_exit_score = float(exit_scores[best_exit_word])
            best_exit_state = np.int32(net.word_exit[best_exit_word])
            entries = net.word_entry
            better = best_exit_score > new_score[entries]
            new_score[entries[better]] = best_exit_score
            pred[entries[better]] = best_exit_state

            # Beam pruning before paying for emissions.
            best = new_score.max()
            if best == neg_inf:
                break
            active = new_score >= best - self.beam
            new_score[~active] = neg_inf
            total_active += int(active.sum())
            ll = self._model.emission_logprobs(frames[t : t + 1], active)[0]
            score = new_score + ll
            bp[t, :] = pred

        # Final: best word-exit state wins.
        final_scores = score[net.word_exit]
        best_word = int(np.argmax(final_scores))
        best_score = float(final_scores[best_word])
        state = int(net.word_exit[best_word])

        # Backtrace, emitting a word at each entry event.
        path: List[int] = [state]
        for t in range(n_frames - 1, 0, -1):
            state = int(bp[t, state])
            path.append(state)
        path.reverse()
        words: List[str] = [str(net.words[self._state_word[path[0]]])]
        for prev, cur in zip(path, path[1:]):
            if cur != prev and self._entry_mask[cur]:
                words.append(str(net.words[self._state_word[cur]]))
        return RecognitionResult(tuple(words), best_score, total_active)

"""specjbb: the Java-middleware business-transaction application."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from ..base import Application, Client
from . import transactions
from .company import Company

__all__ = ["SpecJbbApp", "SpecJbbClient", "JbbRequest"]

#: Request mix: mostly short transactions, occasional long batches.
_MIX = (
    ("new_order", 0.35),
    ("payment", 0.35),
    ("order_status", 0.15),
    ("delivery", 0.05),
    ("stock_report", 0.05),
    ("customer_report", 0.05),
)


@dataclass(frozen=True)
class JbbRequest:
    """One middleware request: a kind tag plus parameters."""

    kind: str
    params: Dict = field(default_factory=dict)


class SpecJbbClient(Client):
    """Generates the SPECjbb-style request mix."""

    def __init__(self, company_shape: Dict, seed: int = 0) -> None:
        self._shape = company_shape
        self._rng = random.Random(seed)

    def next_request(self) -> JbbRequest:
        rng = self._rng
        u = rng.random()
        acc = 0.0
        kind = _MIX[-1][0]
        for name, weight in _MIX:
            acc += weight
            if u < acc:
                kind = name
                break
        w = rng.randint(1, self._shape["n_warehouses"])
        d = rng.randint(1, self._shape["n_districts"])
        c = rng.randint(1, self._shape["customers_per_district"])
        if kind == "new_order":
            items = [
                {
                    "item_id": rng.randint(1, self._shape["n_items"]),
                    "quantity": rng.randint(1, 5),
                }
                for _ in range(rng.randint(1, 8))
            ]
            return JbbRequest(kind, {"w": w, "d": d, "c": c, "items": items})
        if kind == "payment":
            return JbbRequest(
                kind,
                {"w": w, "d": d, "c": c, "amount": round(rng.uniform(1, 500), 2)},
            )
        if kind == "order_status":
            return JbbRequest(kind, {"w": w, "d": d, "c": c})
        if kind == "delivery":
            return JbbRequest(kind, {"w": w, "carrier": rng.randint(1, 10)})
        if kind == "stock_report":
            return JbbRequest(kind, {"w": w, "threshold": rng.randint(60, 100)})
        return JbbRequest(kind, {"w": w, "d": d})


class SpecJbbApp(Application):
    """3-tier wholesale-company middleware.

    The front tier (request validation/dispatch) lives in
    :meth:`process`; business logic is the middle tier
    (:mod:`transactions`); the in-memory model is the backend.
    """

    name = "specjbb"
    domain = "Java Middleware"

    def __init__(
        self,
        n_warehouses: int = 2,
        n_districts: int = 4,
        customers_per_district: int = 50,
        n_items: int = 1000,
        seed: int = 0,
    ) -> None:
        self._shape = {
            "n_warehouses": n_warehouses,
            "n_districts": n_districts,
            "customers_per_district": customers_per_district,
            "n_items": n_items,
        }
        self._seed = seed
        self._company: Company = None

    def setup(self) -> None:
        self._company = Company(seed=self._seed, **self._shape)

    @property
    def company(self) -> Company:
        if self._company is None:
            raise RuntimeError("call setup() first")
        return self._company

    def process(self, payload: JbbRequest) -> Dict:
        company = self.company
        kind, p = payload.kind, payload.params
        if kind == "new_order":
            return transactions.new_order(company, p["w"], p["d"], p["c"], p["items"])
        if kind == "payment":
            return transactions.process_payment(
                company, p["w"], p["d"], p["c"], p["amount"]
            )
        if kind == "order_status":
            return transactions.order_status(company, p["w"], p["d"], p["c"])
        if kind == "delivery":
            return transactions.process_deliveries(company, p["w"], p["carrier"])
        if kind == "stock_report":
            return transactions.stock_report(company, p["w"], p["threshold"])
        if kind == "customer_report":
            return transactions.customer_report(company, p["w"], p["d"])
        raise ValueError(f"unknown request kind {kind!r}")

    def make_client(self, seed: int = 0) -> SpecJbbClient:
        return SpecJbbClient(self._shape, seed=seed)

"""specjbb: Java middleware (3-tier wholesale-company model)."""

from .app import JbbRequest, SpecJbbApp, SpecJbbClient
from .company import Company, Customer, Order, OrderLine, Warehouse

__all__ = [
    "JbbRequest",
    "SpecJbbApp",
    "SpecJbbClient",
    "Company",
    "Customer",
    "Order",
    "OrderLine",
    "Warehouse",
]

"""Business transactions of the wholesale company (middle tier).

Each function implements one client-request type against the backend
model, holding the warehouse lock for the duration (coarse-grained
middleware-style locking). The mix mirrors SPECjbb's: mostly short
transactions (new order, payment, order status) with an occasional
much longer batch (delivery sweeps a district's undelivered orders;
stock report scans the stock table) — the source of specjbb's
narrow-body, long-tail service-time shape in Fig. 2.
"""

from __future__ import annotations

from typing import Dict, List

from .company import Company, Order, OrderLine

__all__ = [
    "new_order",
    "process_payment",
    "order_status",
    "process_deliveries",
    "stock_report",
    "customer_report",
]


def new_order(
    company: Company,
    warehouse_id: int,
    district_id: int,
    customer_id: int,
    items: List[Dict],
) -> Dict:
    """Create an order; returns order id and total amount."""
    if not items:
        raise ValueError("an order needs at least one line")
    wh = company.warehouse(warehouse_id)
    with wh.lock:
        customer = wh.customers[district_id][customer_id]
        lines = []
        total = 0.0
        for item in items:
            item_id, qty = item["item_id"], item["quantity"]
            price = company.price(item_id)
            amount = round(price * qty, 2)
            stock = wh.stock[item_id]
            # Restock when low, as SPECjbb's warehouse logic does.
            wh.stock[item_id] = stock - qty if stock >= qty + 10 else stock - qty + 100
            lines.append(OrderLine(item_id, qty, amount))
            total += amount
        order_id = wh.next_order_id
        wh.next_order_id += 1
        order = Order(order_id, customer_id, district_id, lines)
        wh.orders[order_id] = order
        wh.undelivered.append(order_id)
        customer.order_history.append(order_id)
        customer.balance += total
        return {"order_id": order_id, "total": round(total, 2)}


def process_payment(
    company: Company,
    warehouse_id: int,
    district_id: int,
    customer_id: int,
    amount: float,
) -> Dict:
    """Apply a customer payment."""
    if amount <= 0:
        raise ValueError("payment amount must be positive")
    wh = company.warehouse(warehouse_id)
    with wh.lock:
        customer = wh.customers[district_id][customer_id]
        customer.balance -= amount
        customer.ytd_payment += amount
        customer.payment_count += 1
        wh.ytd += amount
        return {"balance": round(customer.balance, 2)}


def order_status(
    company: Company, warehouse_id: int, district_id: int, customer_id: int
) -> Dict:
    """Look up the customer's most recent order."""
    wh = company.warehouse(warehouse_id)
    with wh.lock:
        customer = wh.customers[district_id][customer_id]
        if not customer.order_history:
            return {"order_id": None, "lines": 0, "delivered": None}
        order = wh.orders[customer.order_history[-1]]
        return {
            "order_id": order.order_id,
            "lines": len(order.lines),
            "delivered": order.delivered,
        }


def process_deliveries(
    company: Company, warehouse_id: int, carrier_id: int, batch_size: int = 10
) -> Dict:
    """Deliver a batch of pending orders (the long-tail transaction)."""
    wh = company.warehouse(warehouse_id)
    with wh.lock:
        delivered = 0
        while wh.undelivered and delivered < batch_size:
            order_id = wh.undelivered.pop(0)
            order = wh.orders[order_id]
            order.delivered = True
            order.carrier_id = carrier_id
            # Settle the order amount against the customer balance.
            customer = wh.customers[order.district_id][order.customer_id]
            customer.balance -= sum(line.amount for line in order.lines)
            delivered += 1
        return {"delivered": delivered}


def stock_report(company: Company, warehouse_id: int, threshold: int) -> Dict:
    """Count items below a stock threshold (full stock-table scan)."""
    wh = company.warehouse(warehouse_id)
    with wh.lock:
        low = sum(1 for qty in wh.stock.values() if qty < threshold)
        return {"low_stock_items": low}


def customer_report(
    company: Company, warehouse_id: int, district_id: int
) -> Dict:
    """Aggregate a district's customer balances (reporting tier)."""
    wh = company.warehouse(warehouse_id)
    with wh.lock:
        district = wh.customers[district_id]
        balances = [c.balance for c in district.values()]
        return {
            "customers": len(balances),
            "total_balance": round(sum(balances), 2),
            "max_balance": round(max(balances), 2) if balances else 0.0,
        }

"""In-memory wholesale-company model (the SPECjbb business domain).

SPECjbb emulates a three-tier system for a wholesale company handling
client requests such as payments and deliveries (Sec. III). This
module is the backend tier: warehouses, districts, customers, stock,
and orders held in in-memory structures, with per-warehouse locking —
the Java-collections-heavy style of real middleware backends.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Customer", "Order", "OrderLine", "Warehouse", "Company"]


@dataclass
class Customer:
    customer_id: int
    name: str
    balance: float = 0.0
    ytd_payment: float = 0.0
    payment_count: int = 0
    order_history: List[int] = field(default_factory=list)


@dataclass
class OrderLine:
    item_id: int
    quantity: int
    amount: float


@dataclass
class Order:
    order_id: int
    customer_id: int
    district_id: int
    lines: List[OrderLine]
    delivered: bool = False
    carrier_id: Optional[int] = None


@dataclass
class Warehouse:
    """One warehouse: stock, customers per district, order books."""

    warehouse_id: int
    n_districts: int
    stock: Dict[int, int]
    customers: Dict[int, Dict[int, Customer]]  # district -> id -> customer
    orders: Dict[int, Order] = field(default_factory=dict)
    undelivered: List[int] = field(default_factory=list)
    ytd: float = 0.0
    next_order_id: int = 1
    lock: threading.Lock = field(default_factory=threading.Lock)


class Company:
    """The modelled wholesale company (backend tier).

    Parameters
    ----------
    n_warehouses / n_districts / customers_per_district / n_items:
        Model cardinalities. Defaults are deliberately modest so setup
        is fast; the business-logic shape, not the data volume, drives
        specjbb's short-request behaviour.
    """

    def __init__(
        self,
        n_warehouses: int = 2,
        n_districts: int = 4,
        customers_per_district: int = 50,
        n_items: int = 1000,
        seed: int = 0,
    ) -> None:
        if min(n_warehouses, n_districts, customers_per_district, n_items) < 1:
            raise ValueError("company cardinalities must be >= 1")
        self.n_warehouses = n_warehouses
        self.n_districts = n_districts
        self.customers_per_district = customers_per_district
        self.n_items = n_items
        rng = random.Random(seed)
        self.item_prices: Dict[int, float] = {
            i: round(rng.uniform(1.0, 100.0), 2) for i in range(1, n_items + 1)
        }
        self.warehouses: Dict[int, Warehouse] = {}
        for w in range(1, n_warehouses + 1):
            customers = {
                d: {
                    c: Customer(c, f"customer-{w}-{d}-{c}")
                    for c in range(1, customers_per_district + 1)
                }
                for d in range(1, n_districts + 1)
            }
            stock = {i: rng.randint(50, 200) for i in range(1, n_items + 1)}
            self.warehouses[w] = Warehouse(w, n_districts, stock, customers)

    def warehouse(self, warehouse_id: int) -> Warehouse:
        try:
            return self.warehouses[warehouse_id]
        except KeyError:
            raise KeyError(f"no warehouse {warehouse_id}") from None

    def price(self, item_id: int) -> float:
        try:
            return self.item_prices[item_id]
        except KeyError:
            raise KeyError(f"no item {item_id}") from None

    def total_orders(self) -> int:
        return sum(len(w.orders) for w in self.warehouses.values())

"""Synthetic Wikipedia-like corpus generation.

The paper indexes a 2013 dump of English Wikipedia; we have no network,
so we synthesize a corpus with the statistical properties that matter
to search-engine service times: a Zipfian term-frequency distribution
(so popular query terms have long postings lists) and a wide spread of
document lengths (so per-document scoring work varies).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["Document", "SyntheticCorpus"]

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _make_word(rng: random.Random, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_CONSONANTS))
        parts.append(rng.choice(_VOWELS))
    return "".join(parts)


@dataclass(frozen=True)
class Document:
    """One corpus document."""

    doc_id: int
    title: str
    text: str


class SyntheticCorpus:
    """Deterministic pseudo-Wikipedia.

    Parameters
    ----------
    n_docs:
        Number of documents.
    vocab_size:
        Vocabulary size; terms are generated once and reused with
        Zipfian frequency across all documents.
    mean_doc_len:
        Mean document length in tokens. Actual lengths are drawn from a
        lognormal-ish spread (short stubs to long articles), like real
        encyclopedias.
    """

    def __init__(
        self,
        n_docs: int = 2000,
        vocab_size: int = 5000,
        mean_doc_len: int = 200,
        seed: int = 0,
    ) -> None:
        if n_docs < 1 or vocab_size < 10 or mean_doc_len < 5:
            raise ValueError("corpus parameters too small")
        self.n_docs = n_docs
        self.vocab_size = vocab_size
        self.mean_doc_len = mean_doc_len
        self.seed = seed
        rng = random.Random(seed)
        seen = set()
        vocab: List[str] = []
        while len(vocab) < vocab_size:
            word = _make_word(rng, rng.randint(1, 4))
            if word not in seen:
                seen.add(word)
                vocab.append(word)
        #: Vocabulary ordered most-frequent-first (Zipf rank order).
        self.vocabulary: List[str] = vocab
        # Zipfian cumulative weights for term selection.
        weights = [1.0 / (i + 1) for i in range(vocab_size)]
        total = sum(weights)
        self._cum = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cum.append(acc)
        self._cum[-1] = 1.0

    def _pick_term(self, rng: random.Random) -> str:
        import bisect

        u = rng.random()
        return self.vocabulary[
            min(bisect.bisect_left(self._cum, u), self.vocab_size - 1)
        ]

    def documents(self) -> List[Document]:
        """Generate the full corpus (deterministic for a given seed)."""
        rng = random.Random(self.seed + 1)
        docs = []
        for doc_id in range(self.n_docs):
            # Lognormal length spread: stubs to long articles.
            length = max(5, int(rng.lognormvariate(0.0, 0.6) * self.mean_doc_len))
            words = [self._pick_term(rng) for _ in range(length)]
            title = " ".join(words[: min(4, len(words))])
            docs.append(Document(doc_id, title, " ".join(words)))
        return docs

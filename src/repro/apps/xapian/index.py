"""Inverted index with BM25 ranked retrieval.

This is the leaf-node search core: term -> postings (doc id, term
frequency), document lengths for BM25 normalization, and top-k query
evaluation with a document-at-a-time heap. Service time scales with
the total postings volume of the query terms, which — combined with
Zipfian query popularity — produces the broad service-time
distribution Fig. 2 shows for xapian.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .corpus import Document
from .tokenizer import tokenize

__all__ = ["SearchResult", "InvertedIndex"]


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    doc_id: int
    score: float
    title: str


class InvertedIndex:
    """In-memory inverted index with BM25 scoring.

    Parameters
    ----------
    k1, b:
        Standard BM25 parameters (term-frequency saturation and length
        normalization).
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0 or not 0.0 <= b <= 1.0:
            raise ValueError("invalid BM25 parameters")
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        self._doc_len: Dict[int, int] = {}
        self._titles: Dict[int, str] = {}
        self._total_len = 0

    # -- construction ----------------------------------------------------
    def add_document(self, doc: Document) -> None:
        if doc.doc_id in self._doc_len:
            raise ValueError(f"duplicate document id {doc.doc_id}")
        terms = tokenize(doc.text)
        counts = Counter(terms)
        for term, tf in counts.items():
            self._postings[term].append((doc.doc_id, tf))
        self._doc_len[doc.doc_id] = len(terms)
        self._titles[doc.doc_id] = doc.title
        self._total_len += len(terms)

    def build(self, documents: Iterable[Document]) -> None:
        for doc in documents:
            self.add_document(doc)
        # Postings sorted by doc id: deterministic iteration and the
        # layout a real engine would use for skipping/compression.
        for plist in self._postings.values():
            plist.sort()

    # -- statistics ------------------------------------------------------
    @property
    def n_docs(self) -> int:
        return len(self._doc_len)

    @property
    def n_terms(self) -> int:
        return len(self._postings)

    @property
    def avg_doc_len(self) -> float:
        if not self._doc_len:
            raise ValueError("index is empty")
        return self._total_len / len(self._doc_len)

    def doc_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def postings(self, term: str) -> Sequence[Tuple[int, int]]:
        return tuple(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """BM25 idf with the standard +1 floor (never negative)."""
        df = self.doc_frequency(term)
        n = self.n_docs
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    # -- query evaluation --------------------------------------------------
    def search(
        self, query: str, top_k: int = 10, conjunctive: bool = False
    ) -> List[SearchResult]:
        """BM25 top-k retrieval.

        Disjunctive (OR) by default; ``conjunctive=True`` requires
        every query term to appear (AND semantics), evaluated with a
        sorted-postings intersection — shortest list first, as real
        engines do.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.n_docs == 0:
            return []
        terms = tokenize(query)
        if not terms:
            return []
        unique_terms = sorted(set(terms))
        candidates = None
        if conjunctive:
            candidates = self._intersect(unique_terms)
            if not candidates:
                return []
        avg_len = self.avg_doc_len
        scores: Dict[int, float] = defaultdict(float)
        for term in unique_terms:
            plist = self._postings.get(term)
            if not plist:
                continue
            idf = self.idf(term)
            for doc_id, tf in plist:
                if candidates is not None and doc_id not in candidates:
                    continue
                dl = self._doc_len[doc_id]
                denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg_len)
                scores[doc_id] += idf * tf * (self.k1 + 1.0) / denom
        top = heapq.nlargest(top_k, scores.items(), key=lambda kv: (kv[1], -kv[0]))
        return [
            SearchResult(doc_id, score, self._titles[doc_id])
            for doc_id, score in top
        ]

    def _intersect(self, terms) -> set:
        """Document ids containing every term (shortest-first merge)."""
        plists = []
        for term in terms:
            plist = self._postings.get(term)
            if not plist:
                return set()
            plists.append(plist)
        plists.sort(key=len)
        result = {doc_id for doc_id, _ in plists[0]}
        for plist in plists[1:]:
            result &= {doc_id for doc_id, _ in plist}
            if not result:
                return result
        return result

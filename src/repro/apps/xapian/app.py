"""xapian: the online-search leaf node application."""

from __future__ import annotations

from typing import List

from ...workloads.zipf import ZipfQuerySampler
from ..base import Application, Client
from .corpus import SyntheticCorpus
from .index import InvertedIndex, SearchResult

__all__ = ["XapianApp", "XapianClient"]


class XapianClient(Client):
    """Draws search queries with Zipfian term popularity (Sec. III)."""

    def __init__(self, vocabulary, seed: int = 0) -> None:
        self._sampler = ZipfQuerySampler(vocabulary, seed=seed)

    def next_request(self) -> str:
        return self._sampler.next_query()


class XapianApp(Application):
    """Search-engine leaf node over a synthetic Wikipedia-like corpus.

    Each request is a free-text query; the response is the BM25 top-k.
    Read-only after setup, so it is safely shared across worker
    threads.
    """

    name = "xapian"
    domain = "Online Search"

    def __init__(
        self,
        n_docs: int = 2000,
        vocab_size: int = 5000,
        mean_doc_len: int = 200,
        top_k: int = 10,
        seed: int = 0,
    ) -> None:
        self._corpus = SyntheticCorpus(
            n_docs=n_docs,
            vocab_size=vocab_size,
            mean_doc_len=mean_doc_len,
            seed=seed,
        )
        self._top_k = top_k
        self._index: InvertedIndex = None

    def setup(self) -> None:
        index = InvertedIndex()
        index.build(self._corpus.documents())
        self._index = index

    @property
    def index(self) -> InvertedIndex:
        if self._index is None:
            raise RuntimeError("call setup() first")
        return self._index

    def process(self, payload: str) -> List[SearchResult]:
        return self.index.search(payload, top_k=self._top_k)

    def cache_key(self, payload: str) -> str:
        """The query string: the index is immutable after setup, so
        identical queries always score identically — the Zipfian term
        mix makes repeats frequent enough to cache."""
        return payload

    def handle_batch(self, payloads) -> list:
        """Grouped search: score each *distinct* query once per batch.

        Query terms are Zipfian, so identical queries recur within a
        batch under load; the postings traversal and BM25 scoring run
        once per distinct query and duplicates share the result (each
        response is an independent list, so callers may mutate theirs).
        The index is immutable after setup, which is what makes the
        sharing safe.
        """
        memo = {}
        responses = []
        for query in payloads:
            if query not in memo:
                memo[query] = self.index.search(query, top_k=self._top_k)
            responses.append(list(memo[query]))
        return responses

    def make_client(self, seed: int = 0) -> XapianClient:
        return XapianClient(self._corpus.vocabulary, seed=seed)

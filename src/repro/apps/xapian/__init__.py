"""xapian: online search leaf node (inverted index + BM25)."""

from .app import XapianApp, XapianClient
from .corpus import Document, SyntheticCorpus
from .index import InvertedIndex, SearchResult
from .tokenizer import STOPWORDS, tokenize

__all__ = [
    "XapianApp",
    "XapianClient",
    "Document",
    "SyntheticCorpus",
    "InvertedIndex",
    "SearchResult",
    "STOPWORDS",
    "tokenize",
]

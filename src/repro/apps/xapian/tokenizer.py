"""Tokenization and light normalization for the search engine."""

from __future__ import annotations

import re
from typing import List

__all__ = ["tokenize", "STOPWORDS"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Common English stopwords removed at both index and query time.
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with this which or not but they their there then than
    so if into out up down over under again once only own same""".split()
)


def tokenize(text: str, drop_stopwords: bool = True) -> List[str]:
    """Lowercase, split on non-alphanumerics, drop stopwords.

    A light suffix-stripping step (plural/gerund endings) stands in for
    a full stemmer; it is deterministic and keeps index and query terms
    consistent.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    out = []
    for token in tokens:
        if drop_stopwords and token in STOPWORDS:
            continue
        out.append(_strip_suffix(token))
    return out


def _strip_suffix(token: str) -> str:
    for suffix in ("ing", "ies", "es", "s"):
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            if suffix == "ies":
                return token[: -len(suffix)] + "y"
            return token[: -len(suffix)]
    return token

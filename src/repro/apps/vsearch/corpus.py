"""Synthetic embedding corpus for the vector-search workload.

Real embedding spaces are clustered: documents about one topic land
near each other, and queries land near some topic's center. We model
that directly — a Gaussian mixture with ``n_clusters`` topic centers,
document vectors scattered around a center, and query vectors drawn
the same way (so nearest neighbors are meaningful and IVF recall
behaves like it does on real embeddings: most of a query's true
neighbors live in a handful of coarse lists).

Cluster sizes are deliberately uneven (popularity decays with cluster
rank) so IVF posting lists have different lengths and service time is
data-dependent, like a real ANN index.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmbeddingCorpus"]


class EmbeddingCorpus:
    """Seeded synthetic embeddings: documents plus a query pool.

    Attributes
    ----------
    vectors:
        ``(n_vectors, dim)`` float32 document embeddings.
    ids:
        ``(n_vectors,)`` int64 global document ids (``0..n-1``).
    queries:
        ``(n_queries, dim)`` float32 query embeddings. Query ``q`` is
        drawn near cluster ``q % n_clusters``, so the Zipfian query-id
        skew of the client translates into topic skew.
    """

    def __init__(
        self,
        n_vectors: int = 4096,
        dim: int = 32,
        n_clusters: int = 32,
        n_queries: int = 256,
        noise: float = 0.25,
        query_noise: float = 0.35,
        seed: int = 0,
    ) -> None:
        if n_vectors < n_clusters:
            raise ValueError("need at least one vector per cluster")
        if n_queries < 1:
            raise ValueError("need at least one query")
        self.n_vectors = n_vectors
        self.dim = dim
        self.n_clusters = n_clusters
        self.n_queries = n_queries
        self.seed = seed

        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((n_clusters, dim))
        # Uneven topic popularity: cluster k gets weight 1/(k+1).
        weights = 1.0 / (1.0 + np.arange(n_clusters))
        weights /= weights.sum()
        assignments = rng.choice(n_clusters, size=n_vectors, p=weights)
        self.vectors = (
            centers[assignments]
            + noise * rng.standard_normal((n_vectors, dim))
        ).astype(np.float32)
        self.ids = np.arange(n_vectors, dtype=np.int64)

        query_clusters = np.arange(n_queries) % n_clusters
        self.queries = (
            centers[query_clusters]
            + query_noise * rng.standard_normal((n_queries, dim))
        ).astype(np.float32)

    def partition(self, n_shards: int):
        """Round-robin split into ``n_shards`` disjoint (vectors, ids).

        Round-robin (doc ``i`` to shard ``i % K``) gives every shard
        the same topic mixture, so per-shard posting-list shapes — and
        therefore per-shard service times — stay statistically alike.
        """
        if n_shards < 1:
            raise ValueError("need at least one shard")
        parts = []
        for shard in range(n_shards):
            mask = self.ids % n_shards == shard
            parts.append((self.vectors[mask], self.ids[mask]))
        return parts

"""From-scratch IVF (inverted-file) approximate nearest neighbor index.

The classic two-level ANN structure [Sivic & Zisserman 2003; FAISS]:
a coarse k-means quantizer assigns every document vector to its
nearest centroid, and search scans only the ``nprobe`` posting lists
whose centroids are closest to the query. Search cost is therefore
``nprobe`` × (probed-list length) distance computations — latency is
data-dependent, and recall trades off against service time through
``nprobe``, exactly the knob a real vector database exposes.

Determinism contract: all distance math is per-row (each candidate's
squared L2 distance to the query is computed from that row alone), so
a document's distance is bit-identical whether it is scored inside a
global index or inside a shard holding a subset. Ties break by
document id. Together these make sharded top-k *exactly* equal to the
global top-k — the property `merge_topk` relies on and the tests
assert.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["IVFIndex", "brute_force_topk", "merge_topk"]

#: One search result: (document id, squared L2 distance).
Hit = Tuple[int, float]


def _topk_hits(ids: np.ndarray, dists: np.ndarray, k: int) -> List[Hit]:
    """Smallest-k by (distance, id) — deterministic under ties."""
    k = min(k, len(ids))
    if k == 0:
        return []
    # lexsort's last key is primary: sort by distance, break ties by id.
    order = np.lexsort((ids, dists))[:k]
    return [(int(ids[i]), float(dists[i])) for i in order]


def brute_force_topk(
    vectors: np.ndarray, ids: np.ndarray, query: np.ndarray, k: int
) -> List[Hit]:
    """Exact top-k by squared L2 distance (the recall ground truth)."""
    dists = np.square(vectors - query).sum(axis=1)
    return _topk_hits(ids, dists, k)


def merge_topk(partials: Sequence[List[Hit]], k: int) -> List[Hit]:
    """Gather-point merge: global top-k from per-shard top-k lists.

    Correct whenever each shard returned *its* best k: the global
    k-th best document is within the best k of whichever shard holds
    it, so it is always present in the union.
    """
    merged = [hit for partial in partials for hit in partial]
    merged.sort(key=lambda hit: (hit[1], hit[0]))
    return merged[:k]


class IVFIndex:
    """Coarse k-means quantizer over per-list posting arrays."""

    def __init__(
        self, n_lists: int = 16, train_iters: int = 10, seed: int = 0
    ) -> None:
        if n_lists < 1:
            raise ValueError("need at least one list")
        self.n_lists = n_lists
        self.train_iters = train_iters
        self.seed = seed
        self.centroids = None  # (n_lists, dim) after build()
        self._list_ids: List[np.ndarray] = []
        self._list_vectors: List[np.ndarray] = []

    def build(self, vectors: np.ndarray, ids: np.ndarray = None) -> None:
        """Train the coarse quantizer and fill the posting lists."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValueError("vectors must be a non-empty 2-d array")
        if ids is None:
            ids = np.arange(len(vectors), dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        n_lists = min(self.n_lists, len(vectors))

        rng = np.random.default_rng(self.seed)
        centroids = vectors[
            rng.choice(len(vectors), size=n_lists, replace=False)
        ].astype(np.float32)
        for _ in range(self.train_iters):
            assign = self._nearest_centroid(vectors, centroids)
            for c in range(n_lists):
                members = vectors[assign == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
                else:
                    # Reseed an empty cluster on a random document.
                    centroids[c] = vectors[rng.integers(len(vectors))]
        assign = self._nearest_centroid(vectors, centroids)

        self.centroids = centroids
        self._list_ids = []
        self._list_vectors = []
        for c in range(n_lists):
            mask = assign == c
            self._list_ids.append(ids[mask])
            self._list_vectors.append(vectors[mask])

    @staticmethod
    def _nearest_centroid(
        vectors: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        dists = np.square(
            vectors[:, None, :] - centroids[None, :, :]
        ).sum(axis=2)
        return dists.argmin(axis=1)

    @property
    def list_sizes(self) -> List[int]:
        return [len(lst) for lst in self._list_ids]

    def probed_size(self, query: np.ndarray, nprobe: int) -> int:
        """How many candidates `search` would score — the work done."""
        return sum(
            len(self._list_ids[c]) for c in self._probe_order(query, nprobe)
        )

    def _probe_order(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        cdists = np.square(self.centroids - query).sum(axis=1)
        nprobe = min(max(1, nprobe), len(self.centroids))
        return np.argsort(cdists, kind="stable")[:nprobe]

    def search(
        self, query: np.ndarray, k: int = 10, nprobe: int = 1
    ) -> List[Hit]:
        """Top-k over the ``nprobe`` closest posting lists."""
        if self.centroids is None:
            raise RuntimeError("index not built; call build() first")
        query = np.asarray(query, dtype=np.float32)
        probe = self._probe_order(query, nprobe)
        cand_ids = np.concatenate([self._list_ids[c] for c in probe])
        if len(cand_ids) == 0:
            return []
        cand_vectors = np.concatenate(
            [self._list_vectors[c] for c in probe]
        )
        dists = np.square(cand_vectors - query).sum(axis=1)
        return _topk_hits(cand_ids, dists, k)

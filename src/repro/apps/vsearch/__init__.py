"""vsearch: sharded IVF vector search (the suite's ninth app)."""

from .app import VsearchApp, VsearchClient
from .corpus import EmbeddingCorpus
from .ivf import IVFIndex, brute_force_topk, merge_topk

__all__ = [
    "VsearchApp",
    "VsearchClient",
    "EmbeddingCorpus",
    "IVFIndex",
    "brute_force_topk",
    "merge_topk",
]

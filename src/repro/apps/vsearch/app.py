"""vsearch: the sharded vector-search (ANN retrieval) application.

The suite's ninth application and its first *sharded* one: the
latency-critical workload behind RAG and semantic search, which the
2016 suite predates. Requests are query ids into a shared query pool
(Zipfian popularity — hot queries recur, composing with a caching
tier); responses are top-k ``(doc_id, distance)`` hits from a
from-scratch IVF index (:mod:`.ivf`). Service time scales with
``nprobe`` × probed-list length, so latency is data-dependent.

``VsearchApp.sharded(K)`` partitions the corpus round-robin across K
shard apps behind a :class:`~repro.apps.base.ShardedApp`: one logical
query scatters to every shard and the gather point merges per-shard
top-k. Because distance math is per-row and ties break by id
(see :mod:`.ivf`), the merged result equals the unsharded global
top-k exactly.
"""

from __future__ import annotations

from typing import List

from ...workloads.zipf import ZipfRankSampler
from ..base import Application, Client, ShardedApp
from .corpus import EmbeddingCorpus
from .ivf import Hit, IVFIndex, brute_force_topk, merge_topk

__all__ = ["VsearchApp", "VsearchClient"]


class VsearchClient(Client):
    """Draws query ids with Zipfian popularity (rank 0 = hottest)."""

    def __init__(self, n_queries: int, theta: float = 0.9,
                 seed: int = 0) -> None:
        self._ranks = ZipfRankSampler(n_queries, theta=theta, seed=seed)

    def next_request(self) -> int:
        return self._ranks.next_rank()


class _VsearchShard(Application):
    """One index shard: an IVF index over a corpus partition.

    Shares the parent's query pool (payloads are query ids) and
    returns its *local* top-k — the gather point's merge input.
    Read-only after setup, so safely shared across worker threads.
    """

    name = "vsearch-shard"
    domain = "Vector Search / RAG"

    def __init__(self, queries, vectors, ids, n_lists: int,
                 nprobe: int, top_k: int, seed: int) -> None:
        self._queries = queries
        self._vectors = vectors
        self._ids = ids
        self._n_lists = n_lists
        self._nprobe = nprobe
        self._top_k = top_k
        self._seed = seed
        self._index: IVFIndex = None

    def setup(self) -> None:
        index = IVFIndex(n_lists=self._n_lists, seed=self._seed)
        index.build(self._vectors, self._ids)
        self._index = index

    def process(self, payload: int) -> List[Hit]:
        return self._index.search(
            self._queries[payload], k=self._top_k, nprobe=self._nprobe
        )

    def handle_batch(self, payloads) -> list:
        # Zipfian query ids recur within a batch: probe each distinct
        # query once; duplicates share the (copied) hit list.
        memo = {}
        responses = []
        for qid in payloads:
            if qid not in memo:
                memo[qid] = self.process(qid)
            responses.append(list(memo[qid]))
        return responses


class VsearchApp(Application):
    """IVF vector search over a synthetic embedding corpus.

    ``nprobe`` is the recall-vs-latency knob: more probed lists means
    more distance computations per query and higher recall@k against
    the brute-force ground truth.
    """

    name = "vsearch"
    domain = "Vector Search / RAG"

    def __init__(
        self,
        n_vectors: int = 4096,
        dim: int = 32,
        n_clusters: int = 32,
        n_lists: int = 32,
        nprobe: int = 4,
        top_k: int = 10,
        n_queries: int = 256,
        theta: float = 0.9,
        seed: int = 0,
    ) -> None:
        self._corpus = EmbeddingCorpus(
            n_vectors=n_vectors,
            dim=dim,
            n_clusters=n_clusters,
            n_queries=n_queries,
            seed=seed,
        )
        self.n_lists = n_lists
        self.nprobe = nprobe
        self.top_k = top_k
        self.theta = theta
        self.seed = seed
        self._index: IVFIndex = None

    @property
    def corpus(self) -> EmbeddingCorpus:
        return self._corpus

    @property
    def index(self) -> IVFIndex:
        if self._index is None:
            raise RuntimeError("call setup() first")
        return self._index

    def setup(self) -> None:
        index = IVFIndex(n_lists=self.n_lists, seed=self.seed)
        index.build(self._corpus.vectors, self._corpus.ids)
        self._index = index

    def process(self, payload: int) -> List[Hit]:
        return self.index.search(
            self._corpus.queries[payload], k=self.top_k, nprobe=self.nprobe
        )

    def cache_key(self, payload: int) -> int:
        """The query id: queries and index are frozen at setup, and the
        Zipfian id stream re-asks popular queries constantly."""
        return payload

    def handle_batch(self, payloads) -> list:
        memo = {}
        responses = []
        for qid in payloads:
            if qid not in memo:
                memo[qid] = self.process(qid)
            responses.append(list(memo[qid]))
        return responses

    def make_client(self, seed: int = 0) -> VsearchClient:
        return VsearchClient(
            self._corpus.n_queries, theta=self.theta, seed=seed
        )

    def exact_topk(self, query_id: int) -> List[Hit]:
        """Brute-force ground truth for one pool query."""
        return brute_force_topk(
            self._corpus.vectors,
            self._corpus.ids,
            self._corpus.queries[query_id],
            self.top_k,
        )

    def recall_at_k(self, nprobe: int = None, sample: int = None) -> float:
        """Mean recall@top_k of IVF search vs brute force."""
        nprobe = self.nprobe if nprobe is None else nprobe
        n = self._corpus.n_queries if sample is None else min(
            sample, self._corpus.n_queries
        )
        total = 0.0
        for qid in range(n):
            truth = {doc for doc, _ in self.exact_topk(qid)}
            got = {
                doc
                for doc, _ in self.index.search(
                    self._corpus.queries[qid], k=self.top_k, nprobe=nprobe
                )
            }
            total += len(truth & got) / max(1, len(truth))
        return total / n

    def sharded(self, n_shards: int) -> ShardedApp:
        """Partition the corpus round-robin into K index shards.

        Per-shard work is total/K: to model *scale-out* (dataset grows
        with the fleet, per-shard work constant), build the app with
        ``n_vectors = K * per_shard_size`` before sharding.
        """
        top_k = self.top_k
        shards = [
            _VsearchShard(
                self._corpus.queries,
                vectors,
                ids,
                n_lists=self.n_lists,
                nprobe=self.nprobe,
                top_k=top_k,
                # Distinct k-means seeds so shard list shapes are
                # independent, not mirror images.
                seed=self.seed + 7919 * (shard + 1),
            )
            for shard, (vectors, ids) in enumerate(
                self._corpus.partition(n_shards)
            )
        ]
        return ShardedApp(
            shards,
            merge=lambda partials: merge_topk(partials, top_k),
            client_factory=self.make_client,
            name="vsearch",
            domain=self.domain,
        )

"""Application interface and registry.

Every TailBench application plugs into the harness through the same
two-sided contract:

- server side — :class:`Application`: ``setup()`` builds the dataset
  (index, table, model); ``process(payload)`` services one request.
- client side — :class:`Client`: ``next_request()`` yields the next
  request payload, drawn from the app's workload distribution.

The registry maps the paper's application names (xapian, masstree,
moses, sphinx, img-dnn, specjbb, silo, shore) to factories, so the
experiment drivers can iterate over the whole suite.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

__all__ = ["Application", "Client", "register_app", "create_app", "app_names"]


class Client:
    """Generates the request stream for one application."""

    def next_request(self) -> Any:
        """Return the next request payload."""
        raise NotImplementedError


class Application:
    """One latency-critical server application."""

    #: Canonical name used in the paper's tables/figures.
    name: str = "base"
    #: Domain label from Table I (documentation only).
    domain: str = ""

    def setup(self) -> None:
        """Build datasets/models. Must be called before ``process``."""
        raise NotImplementedError

    def process(self, payload: Any) -> Any:
        """Service one request; returns the response payload.

        Called concurrently from multiple worker threads when the
        harness runs with ``n_threads > 1`` — implementations must be
        thread-safe (the OLTP apps bring their own concurrency
        control; read-mostly apps use immutable shared state).
        """
        raise NotImplementedError

    def handle_batch(self, payloads: Sequence[Any]) -> List[Any]:
        """Service a batch of requests; returns one response per payload.

        Called by the batched worker loop (see :mod:`repro.batching`)
        with every payload of one formed batch. The default simply
        loops over :meth:`process` — functionally identical to
        unbatched serving, so every application is batchable out of the
        box. Applications with vectorizable work override this to
        amortize per-request cost across the batch (img-dnn stacks the
        inputs into one matrix pass; masstree and xapian group
        duplicate lookups). Must preserve order and length: response
        ``i`` answers payload ``i``. The same thread-safety contract as
        :meth:`process` applies.
        """
        return [self.process(payload) for payload in payloads]

    def make_client(self, seed: int = 0) -> Client:
        """Build a request generator with its own RNG stream."""
        raise NotImplementedError

    def clone(self) -> "Application":
        """Return a replica for one server instance of a topology.

        The default shares ``self``: ``process`` is already required to
        be thread-safe, so one object can back several replicas.
        Applications with per-instance mutable state (write-heavy OLTP
        tables, per-instance caches) override this to return an
        independent, already-set-up copy.
        """
        return self


_REGISTRY: Dict[str, Callable[..., Application]] = {}


def register_app(name: str, factory: Callable[..., Application]) -> None:
    """Register an application factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"application {name!r} already registered")
    _REGISTRY[name] = factory


def create_app(name: str, **kwargs) -> Application:
    """Instantiate a registered application (without calling setup)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def app_names() -> List[str]:
    """All registered application names, sorted."""
    return sorted(_REGISTRY)

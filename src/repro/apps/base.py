"""Application interface and registry.

Every TailBench application plugs into the harness through the same
two-sided contract:

- server side — :class:`Application`: ``setup()`` builds the dataset
  (index, table, model); ``process(payload)`` services one request.
- client side — :class:`Client`: ``next_request()`` yields the next
  request payload, drawn from the app's workload distribution.

The registry maps the paper's application names (xapian, masstree,
moses, sphinx, img-dnn, specjbb, silo, shore) to factories, so the
experiment drivers can iterate over the whole suite.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

__all__ = [
    "Application",
    "Client",
    "ShardedApp",
    "register_app",
    "create_app",
    "app_names",
]


class Client:
    """Generates the request stream for one application."""

    def next_request(self) -> Any:
        """Return the next request payload."""
        raise NotImplementedError


class Application:
    """One latency-critical server application."""

    #: Canonical name used in the paper's tables/figures.
    name: str = "base"
    #: Domain label from Table I (documentation only).
    domain: str = ""

    def setup(self) -> None:
        """Build datasets/models. Must be called before ``process``."""
        raise NotImplementedError

    def process(self, payload: Any) -> Any:
        """Service one request; returns the response payload.

        Called concurrently from multiple worker threads when the
        harness runs with ``n_threads > 1`` — implementations must be
        thread-safe (the OLTP apps bring their own concurrency
        control; read-mostly apps use immutable shared state).
        """
        raise NotImplementedError

    def handle_batch(self, payloads: Sequence[Any]) -> List[Any]:
        """Service a batch of requests; returns one response per payload.

        Called by the batched worker loop (see :mod:`repro.batching`)
        with every payload of one formed batch. The default simply
        loops over :meth:`process` — functionally identical to
        unbatched serving, so every application is batchable out of the
        box. Applications with vectorizable work override this to
        amortize per-request cost across the batch (img-dnn stacks the
        inputs into one matrix pass; masstree and xapian group
        duplicate lookups). Must preserve order and length: response
        ``i`` answers payload ``i``. The same thread-safety contract as
        :meth:`process` applies.
        """
        return [self.process(payload) for payload in payloads]

    def make_client(self, seed: int = 0) -> Client:
        """Build a request generator with its own RNG stream."""
        raise NotImplementedError

    def cache_key(self, payload: Any) -> Optional[Hashable]:
        """Key under which this request's response may be cached.

        ``None`` (the default) marks the request *uncacheable* — the
        right answer for any app whose responses are not a pure
        function of the payload (writes, session state, time-varying
        reads). Read-only apps with repeat-heavy request mixes opt in
        by returning a hashable, deterministic function of the payload:
        xapian keys on the query string, vsearch on the query id. The
        caching tier (:mod:`repro.cache`) only ever short-circuits
        requests whose app returned a key.
        """
        return None

    def clone(self) -> "Application":
        """Return a replica for one server instance of a topology.

        The default shares ``self``: ``process`` is already required to
        be thread-safe, so one object can back several replicas.
        Applications with per-instance mutable state (write-heavy OLTP
        tables, per-instance caches) override this to return an
        independent, already-set-up copy.
        """
        return self

    def replica(self, server_id: int) -> "Application":
        """Return the application backing server ``server_id``.

        Replica 0 is ``self``; the rest are :meth:`clone`\\ s. Sharded
        applications override this so each server instance holds a
        *different* partition of the data rather than a copy.
        """
        return self if server_id == 0 else self.clone()


class ShardedApp(Application):
    """One logical application partitioned across K shard apps.

    Each shard owns a disjoint slice of the dataset; a logical query
    must visit every shard and merge their partial responses. Under
    the harness this composes with :class:`repro.core.FanoutConfig`:
    server instance ``i`` is backed by ``shards[i]`` (via
    :meth:`replica`), one logical request scatters to all K, and the
    gather point calls :meth:`merge_responses`.

    :meth:`process` runs the scatter-gather inline (sequentially, in
    one thread) — the reference path used by correctness tests and by
    unsharded serving of a sharded app.
    """

    def __init__(
        self,
        shards: Sequence[Application],
        merge: Callable[[Sequence[Any]], Any],
        client_factory: Callable[[int], Client] = None,
        name: str = None,
        domain: str = None,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        self._merge = merge
        self._client_factory = client_factory
        self.name = name if name is not None else self.shards[0].name
        self.domain = (
            domain if domain is not None else self.shards[0].domain
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def setup(self) -> None:
        for shard in self.shards:
            shard.setup()

    def replica(self, server_id: int) -> Application:
        return self.shards[server_id]

    def process(self, payload: Any) -> Any:
        return self._merge([s.process(payload) for s in self.shards])

    def merge_responses(self, responses: Sequence[Any]) -> Any:
        """Combine per-shard partial responses into the logical one."""
        return self._merge(responses)

    def make_client(self, seed: int = 0) -> Client:
        if self._client_factory is not None:
            return self._client_factory(seed)
        return self.shards[0].make_client(seed)


_REGISTRY: Dict[str, Callable[..., Application]] = {}


def register_app(name: str, factory: Callable[..., Application]) -> None:
    """Register an application factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"application {name!r} already registered")
    _REGISTRY[name] = factory


def create_app(name: str, **kwargs) -> Application:
    """Instantiate a registered application (without calling setup)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def app_names() -> List[str]:
    """All registered application names, sorted."""
    return sorted(_REGISTRY)

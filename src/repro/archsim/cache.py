"""Set-associative cache model.

Tag-array-only simulation (no data movement): enough to count hits and
misses per level, which is all Table I's MPKI characterization needs.
Replacement policy is pluggable; :mod:`repro.archsim.drrip` provides
the DRRIP policy the paper's L3 uses (Table II).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ReplacementPolicy", "LruPolicy", "SetAssociativeCache"]


class ReplacementPolicy:
    """Per-set replacement state machine."""

    def on_hit(self, set_state, way: int) -> None:
        raise NotImplementedError

    def on_fill(self, set_state, way: int) -> None:
        raise NotImplementedError

    def victim(self, set_state) -> int:
        """Pick the way to evict (all ways valid)."""
        raise NotImplementedError

    def new_set_state(self, n_ways: int):
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: state is a recency list (MRU first)."""

    def new_set_state(self, n_ways: int) -> List[int]:
        return list(range(n_ways))

    def on_hit(self, set_state: List[int], way: int) -> None:
        set_state.remove(way)
        set_state.insert(0, way)

    def on_fill(self, set_state: List[int], way: int) -> None:
        self.on_hit(set_state, way)

    def victim(self, set_state: List[int]) -> int:
        return set_state[-1]


class SetAssociativeCache:
    """One cache level.

    Parameters
    ----------
    size_bytes / ways / line_bytes:
        Geometry; ``size_bytes`` must be an exact multiple of
        ``ways * line_bytes``.
    policy:
        Replacement policy (default LRU).
    name:
        Label used in statistics output.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways * line_bytes")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.n_sets = size_bytes // (ways * line_bytes)
        self._policy = policy or LruPolicy()
        # tags[set][way] = line address or None
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(self.n_sets)
        ]
        self._states = [self._policy.new_set_state(ways) for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int):
        line = addr // self.line_bytes
        return line % self.n_sets, line

    def access(self, addr: int) -> bool:
        """Look up ``addr``; fills on miss. Returns True on hit."""
        set_idx, line = self._locate(addr)
        tags = self._tags[set_idx]
        state = self._states[set_idx]
        for way, tag in enumerate(tags):
            if tag == line:
                self.hits += 1
                self._policy.on_hit(state, way)
                return True
        self.misses += 1
        # Fill: prefer an invalid way, otherwise evict the victim.
        try:
            way = tags.index(None)
        except ValueError:
            way = self._policy.victim(state)
        tags[way] = line
        self._policy.on_fill(state, way)
        return False

    def contains(self, addr: int) -> bool:
        """Presence probe without statistics or state changes."""
        set_idx, line = self._locate(addr)
        return line in self._tags[set_idx]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

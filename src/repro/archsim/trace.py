"""Synthetic per-application instruction/data/branch traces.

We cannot trace the original C++/Java binaries, so each application
gets a parameterized synthetic trace whose *statistical structure*
matches how that application exercises the machine. The model:

- **Instruction fetch** — execution loops inside small basic-block
  regions (which hit L1I after first touch) and occasionally jumps to
  a random block within the application's code footprint. Big code
  footprints (shore's storage manager, specjbb's JITed middleware)
  make those jumps miss.
- **Data accesses** — a mixture of locality pools: a *hot* region that
  fits in L1D (stack, hot metadata), a *warm* region sized between L2
  and L3 (indexes, models), a *stride* pool (row-major matrix walks,
  64 B steps), a *stream* pool (8 B sequential scans), and a *cold*
  pool (random probes into a dataset far larger than L3 — masstree's
  1.1 GB table, moses's phrase tables).
- **Branches** — loop back-edges biased taken, with per-app noise that
  defeats the predictor at the rate real data-dependent branches do.

Pool weights and sizes are derived from Table I's MPKI targets (see
``TRACE_PROFILES``); the caches themselves are simulated faithfully,
so the reported MPKIs emerge from the hierarchy, not from a lookup
table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["TraceProfile", "TraceGenerator", "TRACE_PROFILES",
           "FETCH", "MEM", "BRANCH"]

#: Event kinds yielded by the generator.
FETCH, MEM, BRANCH = "fetch", "mem", "branch"

_CODE_BASE = 0x0040_0000
_HOT_BASE = 0x1000_0000
_WARM_BASE = 0x2000_0000
_STRIDE_BASE = 0x3000_0000
_STREAM_BASE = 0x4000_0000
_COLD_BASE = 0x8000_0000
_LOOP_BYTES = 256  # basic-block loop body size


@dataclass(frozen=True)
class TraceProfile:
    """Statistical shape of one application's execution.

    Data-pool weights must sum to <= 1; the remainder goes to the hot
    pool (which effectively always hits L1D).
    """

    name: str
    code_kb: int  # instruction footprint
    jump_prob: float  # prob. of a far jump per instruction
    mem_fraction: float  # data accesses per instruction
    #: Active code set: jump targets cluster here (hot paths). Sized
    #: to be L2-resident, as profiled server code is; 0 = whole image.
    active_code_kb: int = 0
    hot_kb: int = 16  # hot-region size (fits L1D)
    warm_kb: int = 512  # warm-region size
    warm_weight: float = 0.0
    stride_kb: int = 192  # 64 B-stride region size
    stride_weight: float = 0.0
    stream_kb: int = 4096  # 8 B-stream region size
    stream_weight: float = 0.0
    cold_kb: int = 1 << 20  # cold-region size
    cold_weight: float = 0.0
    branch_fraction: float = 0.17  # branches per instruction
    branch_noise: float = 0.05  # prob. a branch defies its bias

    def __post_init__(self) -> None:
        if min(self.code_kb, self.hot_kb, self.warm_kb, self.stride_kb,
               self.stream_kb, self.cold_kb) < 1:
            raise ValueError("footprints must be >= 1 KB")
        weights = (self.warm_weight, self.stride_weight, self.stream_weight,
                   self.cold_weight)
        if any(not 0.0 <= w <= 1.0 for w in weights) or sum(weights) > 1.0:
            raise ValueError("pool weights must be in [0, 1] and sum to <= 1")
        for field_name in ("jump_prob", "mem_fraction", "branch_fraction",
                           "branch_noise"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1]")


class TraceGenerator:
    """Yields ``(kind, address_or_outcome)`` events for one profile."""

    def __init__(self, profile: TraceProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = random.Random(seed)
        self._block = _CODE_BASE  # current basic-block base
        self._pc_off = 0
        self._stride_ptr = _STRIDE_BASE
        self._stream_ptr = _STREAM_BASE
        # Cumulative weights for the data-pool mixture.
        p = profile
        self._cum = []
        acc = 0.0
        for w in (p.warm_weight, p.stride_weight, p.stream_weight, p.cold_weight):
            acc += w
            self._cum.append(acc)

    def events(self, n_instructions: int) -> Iterator[Tuple[str, int]]:
        """Generate the trace for ``n_instructions`` instructions."""
        if n_instructions < 1:
            raise ValueError("n_instructions must be >= 1")
        rng = self._rng
        p = self.profile
        code_bytes = p.code_kb * 1024
        active_bytes = (p.active_code_kb or p.code_kb) * 1024
        # Active blocks are a random sample of the full image's blocks
        # (hot paths interleaved with cold code): they stress L1I by
        # footprint while remaining a bounded, L2-residentable set,
        # without periodic set-aliasing artifacts.
        n_blocks = code_bytes // _LOOP_BYTES
        n_active = max(1, active_bytes // _LOOP_BYTES)
        placer = random.Random(0xC0DE)
        active_blocks = (
            placer.sample(range(n_blocks), n_active)
            if n_active < n_blocks
            else range(n_blocks)
        )
        for _ in range(n_instructions):
            # Fetch: loop within the current basic block, far-jump rarely.
            if rng.random() < p.jump_prob:
                self._block = _CODE_BASE + (
                    active_blocks[rng.randrange(n_active)]
                ) * _LOOP_BYTES
                self._pc_off = 0
            else:
                self._pc_off = (self._pc_off + 4) % _LOOP_BYTES
            yield FETCH, self._block + self._pc_off

            if rng.random() < p.mem_fraction:
                yield MEM, self._data_address()

            if rng.random() < p.branch_fraction:
                yield BRANCH, int(self._branch_outcome())

    def _data_address(self) -> int:
        rng = self._rng
        p = self.profile
        u = rng.random()
        if u >= self._cum[-1]:  # hot pool (the remainder)
            return _HOT_BASE + (rng.randrange(p.hot_kb * 1024) & ~7)
        if u < self._cum[0]:  # warm: random within a mid-size region
            return _WARM_BASE + (rng.randrange(p.warm_kb * 1024) & ~7)
        if u < self._cum[1]:  # stride: 64 B steps (one line per access)
            self._stride_ptr += 64
            if self._stride_ptr >= _STRIDE_BASE + p.stride_kb * 1024:
                self._stride_ptr = _STRIDE_BASE
            return self._stride_ptr
        if u < self._cum[2]:  # stream: 8 B sequential scan
            self._stream_ptr += 8
            if self._stream_ptr >= _STREAM_BASE + p.stream_kb * 1024:
                self._stream_ptr = _STREAM_BASE
            return self._stream_ptr
        return _COLD_BASE + (rng.randrange(p.cold_kb * 1024) & ~7)

    def _branch_outcome(self) -> bool:
        # Loop back-edges dominate (biased taken); profile-controlled
        # noise flips outcomes at random — that is what defeats the
        # predictor.
        rng = self._rng
        if rng.random() < self.profile.branch_noise:
            return rng.random() < 0.5
        return True


#: Per-application trace shapes. Weights/sizes are back-solved from
#: Table I's MPKI rows (see module docstring); branch noise is
#: ``2 * target_branch_mpki / (branch_fraction * 1000)``.
TRACE_PROFILES: Dict[str, TraceProfile] = {
    "xapian": TraceProfile(
        "xapian", code_kb=256, jump_prob=0.00033, mem_fraction=0.35,
        active_code_kb=192, warm_kb=768, warm_weight=0.035,
        stream_kb=4096, stream_weight=0.03,
        branch_fraction=0.17, branch_noise=0.085,
    ),
    "masstree": TraceProfile(
        "masstree", code_kb=128, jump_prob=0.000072, mem_fraction=0.35,
        warm_kb=512, warm_weight=0.018,
        cold_kb=1100 * 1024, cold_weight=0.0157,  # the 1.1 GB table
        branch_fraction=0.17, branch_noise=0.067,
    ),
    "moses": TraceProfile(
        "moses", code_kb=512, jump_prob=0.0005, mem_fraction=0.35,
        active_code_kb=224,
        warm_kb=768, warm_weight=0.019,
        cold_kb=2 * 1024 * 1024, cold_weight=0.0576,  # phrase tables + LM
        branch_fraction=0.15, branch_noise=0.030,
    ),
    "sphinx": TraceProfile(
        "sphinx", code_kb=64, jump_prob=0.00003, mem_fraction=0.35,
        stream_kb=16 * 1024, stream_weight=0.44,  # acoustic model scans
        cold_kb=100 * 1024, cold_weight=0.0125,
        branch_fraction=0.17, branch_noise=0.082,
    ),
    "img-dnn": TraceProfile(
        "img-dnn", code_kb=64, jump_prob=0.000155, mem_fraction=0.55,
        stride_kb=128, stride_weight=0.132,  # weight-matrix rows
        stream_kb=64 * 1024, stream_weight=0.218,
        branch_fraction=0.08, branch_noise=0.0088,
    ),
    "specjbb": TraceProfile(
        "specjbb", code_kb=1024, jump_prob=0.00285, mem_fraction=0.35,
        active_code_kb=96,
        warm_kb=2048, warm_weight=0.0343,
        cold_kb=1024 * 1024, cold_weight=0.0102,
        branch_fraction=0.17, branch_noise=0.059,
    ),
    "silo": TraceProfile(
        "silo", code_kb=256, jump_prob=0.000355, mem_fraction=0.30,
        warm_kb=640, warm_weight=0.006,
        cold_kb=40 * 1024, cold_weight=0.0037,
        branch_fraction=0.16, branch_noise=0.070,
    ),
    "shore": TraceProfile(
        "shore", code_kb=1536, jump_prob=0.0093, mem_fraction=0.35,
        active_code_kb=96,
        warm_kb=4096, warm_weight=0.048,
        cold_kb=100 * 1024, cold_weight=0.0125,
        branch_fraction=0.17, branch_noise=0.082,
    ),
}

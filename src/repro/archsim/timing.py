"""Execution-time estimation from microarchitectural events.

A zsim-style timing model on top of the cache/branch characterization:
cycles are a base CPI plus per-event penalties for each miss level and
branch mispredict. Two uses:

- estimate per-app CPI (and thus relative service-time cost per
  instruction) from first principles, independently of the calibrated
  latency profiles;
- quantify *memory-boundness*: the CPI ratio between the real memory
  hierarchy and an idealized one (zero-penalty misses) — a
  trace-grounded cross-check of the Sec. VII case study's
  memory-vs-synchronization split.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mpki import AppMpki, characterize_app

__all__ = ["TimingParameters", "CpiEstimate", "estimate_cpi"]


@dataclass(frozen=True)
class TimingParameters:
    """Per-event cycle costs (SandyBridge-era magnitudes).

    ``base_cpi`` reflects a wide out-of-order core on cache-resident
    code; penalties are *exposed* latencies after overlap (hence lower
    than raw load-to-use numbers).
    """

    base_cpi: float = 0.45
    l2_hit_penalty: float = 8.0  # L1 miss, L2 hit
    l3_hit_penalty: float = 30.0  # L2 miss, L3 hit
    memory_penalty: float = 180.0  # L3 miss
    branch_penalty: float = 14.0  # mispredict flush

    def __post_init__(self) -> None:
        for name in (
            "base_cpi", "l2_hit_penalty", "l3_hit_penalty",
            "memory_penalty", "branch_penalty",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CpiEstimate:
    """CPI decomposition for one application."""

    name: str
    cpi: float
    base: float
    l2_component: float
    l3_component: float
    memory_component: float
    branch_component: float

    @property
    def memory_boundness(self) -> float:
        """Fraction of cycles attributable to the memory hierarchy."""
        return (
            self.l2_component + self.l3_component + self.memory_component
        ) / self.cpi

    @property
    def ideal_memory_cpi(self) -> float:
        """CPI with a zero-latency, infinite-bandwidth memory system."""
        return self.base + self.branch_component

    @property
    def ideal_memory_speedup(self) -> float:
        """How much faster the app runs under ideal memory (Sec. VII)."""
        return self.cpi / self.ideal_memory_cpi


def cpi_from_mpki(
    mpki: AppMpki, params: TimingParameters = TimingParameters()
) -> CpiEstimate:
    """Convert a characterization into a CPI decomposition.

    Per kilo-instruction: L1 misses that hit L2 pay the L2 penalty,
    L2 misses that hit L3 pay the L3 penalty, L3 misses pay memory.
    Both instruction and data misses are counted (the hierarchy stats
    already merge them at L2/L3).
    """
    per_ki = 1.0 / 1000.0
    l1_misses = mpki.l1i + mpki.l1d
    l2_hits = max(l1_misses - mpki.l2, 0.0)
    l3_hits = max(mpki.l2 - mpki.l3, 0.0)
    l2_component = l2_hits * params.l2_hit_penalty * per_ki
    l3_component = l3_hits * params.l3_hit_penalty * per_ki
    memory_component = mpki.l3 * params.memory_penalty * per_ki
    branch_component = mpki.branch * params.branch_penalty * per_ki
    cpi = (
        params.base_cpi
        + l2_component
        + l3_component
        + memory_component
        + branch_component
    )
    return CpiEstimate(
        name=mpki.name,
        cpi=cpi,
        base=params.base_cpi,
        l2_component=l2_component,
        l3_component=l3_component,
        memory_component=memory_component,
        branch_component=branch_component,
    )


def estimate_cpi(
    name: str,
    n_instructions: int = 200_000,
    params: TimingParameters = TimingParameters(),
    seed: int = 0,
) -> CpiEstimate:
    """Characterize ``name`` and estimate its CPI decomposition."""
    mpki = characterize_app(name, n_instructions=n_instructions, seed=seed)
    return cpi_from_mpki(mpki, params)

"""Gshare branch predictor.

Global-history-XOR-PC indexed table of 2-bit saturating counters — the
classic dynamic predictor. Misprediction counts per kilo-instruction
give Table I's Branch MPKI row.
"""

from __future__ import annotations

__all__ = ["GsharePredictor"]


class GsharePredictor:
    """2-bit counter table indexed by ``PC xor global_history``."""

    def __init__(
        self, table_bits: int = 12, history_bits: int = 12, init_value: int = 1
    ) -> None:
        if table_bits < 1 or history_bits < 0:
            raise ValueError("invalid predictor geometry")
        if not 0 <= init_value <= 3:
            raise ValueError("init_value must be a 2-bit counter value")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._table = [init_value] * (1 << table_bits)
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, then train on the outcome; returns correctness."""
        idx = self._index(pc)
        predicted = self._table[idx] >= 2
        correct = predicted == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken and self._table[idx] < 3:
            self._table[idx] += 1
        elif not taken and self._table[idx] > 0:
            self._table[idx] -= 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return correct

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.predictions if self.predictions else 0.0
        )

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return self.mispredictions / (instructions / 1000.0)

"""Microarchitecture substrate: caches, DRRIP, branch prediction, traces."""

from .branch import GsharePredictor
from .cache import LruPolicy, ReplacementPolicy, SetAssociativeCache
from .drrip import BrripPolicy, DrripPolicy, SrripPolicy
from .hierarchy import CacheHierarchy, HierarchyStats
from .mpki import AppMpki, characterize_app, characterize_suite
from .timing import CpiEstimate, TimingParameters, cpi_from_mpki, estimate_cpi
from .trace import TRACE_PROFILES, TraceGenerator, TraceProfile

__all__ = [
    "GsharePredictor",
    "LruPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "BrripPolicy",
    "DrripPolicy",
    "SrripPolicy",
    "CacheHierarchy",
    "HierarchyStats",
    "AppMpki",
    "characterize_app",
    "characterize_suite",
    "TRACE_PROFILES",
    "TraceGenerator",
    "TraceProfile",
    "CpiEstimate",
    "TimingParameters",
    "cpi_from_mpki",
    "estimate_cpi",
]

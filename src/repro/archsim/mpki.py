"""Microarchitectural characterization (Table I's MPKI rows).

Runs each application's synthetic trace through the Table II cache
hierarchy and a gshare branch predictor, reporting L1I/L1D/L2/L3 and
branch MPKI. Values are qualitative — the traces are synthetic — but
the cross-application ordering and magnitudes track Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.config import PAPER_SYSTEM, SystemConfig
from .branch import GsharePredictor
from .hierarchy import CacheHierarchy
from .trace import BRANCH, FETCH, MEM, TRACE_PROFILES, TraceGenerator

__all__ = ["AppMpki", "characterize_app", "characterize_suite"]


def _prewarm(hierarchy: CacheHierarchy, profile) -> None:
    """Structurally warm the caches with the trace's resident pools.

    A short Python trace cannot organically fill a 20 MB L3, so the
    pools that *would* be resident in steady state (code, hot, warm,
    stride, stream) are touched line by line before measurement. The
    cold pool is deliberately left cold — its misses are the
    steady-state behaviour being measured.
    """
    from .trace import (  # local import to avoid a cycle at module load
        _CODE_BASE, _HOT_BASE, _STREAM_BASE, _STRIDE_BASE, _WARM_BASE,
    )

    line = hierarchy.l1d.line_bytes
    for base, kb in (
        (_HOT_BASE, profile.hot_kb),
        (_WARM_BASE, profile.warm_kb),
        (_STRIDE_BASE, profile.stride_kb),
        (_STREAM_BASE, profile.stream_kb),
    ):
        for addr in range(base, base + kb * 1024, line):
            hierarchy.load_store(addr)
    for addr in range(_CODE_BASE, _CODE_BASE + profile.code_kb * 1024, line):
        hierarchy.fetch(addr)
    hierarchy.instructions = 0
    hierarchy.l1i.reset_stats()
    hierarchy.l1d.reset_stats()
    hierarchy.l2.reset_stats()
    hierarchy.l3.reset_stats()


@dataclass(frozen=True)
class AppMpki:
    """One application's characterization result."""

    name: str
    instructions: int
    l1i: float
    l1d: float
    l2: float
    l3: float
    branch: float

    def as_row(self) -> Dict[str, float]:
        return {
            "L1I MPKI": self.l1i,
            "L1D MPKI": self.l1d,
            "L2 MPKI": self.l2,
            "L3 MPKI": self.l3,
            "Branch MPKI": self.branch,
        }


def characterize_app(
    name: str,
    n_instructions: int = 300_000,
    system: SystemConfig = PAPER_SYSTEM,
    seed: int = 0,
    warmup_fraction: float = 0.2,
) -> AppMpki:
    """Characterize one application by name.

    The leading ``warmup_fraction`` of the trace warms the caches and
    predictor; statistics are reset before the measured region, per
    the harness's steady-state-only rule.
    """
    try:
        profile = TRACE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"no trace profile for {name!r}; known: {sorted(TRACE_PROFILES)}"
        ) from None
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    hierarchy = CacheHierarchy(system)
    # Counters start agreeing with the dominant taken bias so short
    # traces measure steady-state prediction, not table fill-in.
    predictor = GsharePredictor(history_bits=8, init_value=2)
    generator = TraceGenerator(profile, seed=seed)
    _prewarm(hierarchy, profile)
    warmup_end = int(n_instructions * warmup_fraction)
    measured_instructions = 0
    in_measurement = warmup_end == 0
    last_pc = 0
    for kind, value in generator.events(n_instructions):
        if kind == FETCH:
            if not in_measurement and hierarchy.instructions >= warmup_end:
                in_measurement = True
                hierarchy.l1i.reset_stats()
                hierarchy.l1d.reset_stats()
                hierarchy.l2.reset_stats()
                hierarchy.l3.reset_stats()
                predictor.predictions = 0
                predictor.mispredictions = 0
            hierarchy.fetch(value)
            last_pc = value
            if in_measurement:
                measured_instructions += 1
        elif kind == MEM:
            hierarchy.load_store(value)
        elif kind == BRANCH:
            predictor.update(last_pc, bool(value))
    if measured_instructions == 0:
        raise ValueError("trace too short for the requested warmup")
    kilo = measured_instructions / 1000.0
    return AppMpki(
        name=name,
        instructions=measured_instructions,
        l1i=hierarchy.l1i.misses / kilo,
        l1d=hierarchy.l1d.misses / kilo,
        l2=hierarchy.l2.misses / kilo,
        l3=hierarchy.l3.misses / kilo,
        branch=predictor.mispredictions / kilo,
    )


def characterize_suite(
    n_instructions: int = 300_000, seed: int = 0
) -> Dict[str, AppMpki]:
    """Characterize every application in the suite."""
    return {
        name: characterize_app(name, n_instructions=n_instructions, seed=seed)
        for name in sorted(TRACE_PROFILES)
    }

"""DRRIP replacement (Dynamic Re-Reference Interval Prediction).

The paper's experimental system uses DRRIP in the L3 (Table II).
Implements SRRIP (fills at "long re-reference" RRPV), BRRIP (fills at
"distant" with occasional "long"), and set dueling between them with a
policy-selection counter [Jaleel et al., ISCA 2010].
"""

from __future__ import annotations

import random
from typing import List

from .cache import ReplacementPolicy

__all__ = ["SrripPolicy", "BrripPolicy", "DrripPolicy"]


class _RrpvState:
    """Per-set RRPV registers."""

    __slots__ = ("rrpv",)

    def __init__(self, n_ways: int, max_rrpv: int) -> None:
        self.rrpv: List[int] = [max_rrpv] * n_ways


class SrripPolicy(ReplacementPolicy):
    """Static RRIP: fill at max_rrpv - 1, promote to 0 on hit."""

    def __init__(self, max_rrpv: int = 3) -> None:
        if max_rrpv < 1:
            raise ValueError("max_rrpv must be >= 1")
        self.max_rrpv = max_rrpv

    def new_set_state(self, n_ways: int) -> _RrpvState:
        return _RrpvState(n_ways, self.max_rrpv)

    def on_hit(self, set_state: _RrpvState, way: int) -> None:
        set_state.rrpv[way] = 0

    def on_fill(self, set_state: _RrpvState, way: int) -> None:
        set_state.rrpv[way] = self.max_rrpv - 1

    def victim(self, set_state: _RrpvState) -> int:
        rrpv = set_state.rrpv
        while True:
            for way, value in enumerate(rrpv):
                if value >= self.max_rrpv:
                    return way
            for way in range(len(rrpv)):  # age everyone and rescan
                rrpv[way] += 1


class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: mostly fill at distant, rarely at long."""

    def __init__(self, max_rrpv: int = 3, long_probability: float = 1 / 32,
                 seed: int = 0) -> None:
        super().__init__(max_rrpv)
        if not 0.0 <= long_probability <= 1.0:
            raise ValueError("long_probability must be in [0, 1]")
        self.long_probability = long_probability
        self._rng = random.Random(seed)

    def on_fill(self, set_state: _RrpvState, way: int) -> None:
        if self._rng.random() < self.long_probability:
            set_state.rrpv[way] = self.max_rrpv - 1
        else:
            set_state.rrpv[way] = self.max_rrpv


class DrripPolicy(ReplacementPolicy):
    """Set-dueling DRRIP: SRRIP vs BRRIP leader sets + PSEL counter.

    Set membership is decided lazily by per-set identity: this policy
    object is shared across sets, and each set's state records which
    camp it belongs to (leader-SRRIP / leader-BRRIP / follower).
    """

    _FOLLOWER, _LEAD_SRRIP, _LEAD_BRRIP = 0, 1, 2

    def __init__(
        self,
        max_rrpv: int = 3,
        duel_period: int = 32,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        self._srrip = SrripPolicy(max_rrpv)
        self._brrip = BrripPolicy(max_rrpv, seed=seed)
        self.max_rrpv = max_rrpv
        self.duel_period = duel_period
        self._psel_max = (1 << psel_bits) - 1
        self._psel = self._psel_max // 2
        self._set_counter = 0

    def new_set_state(self, n_ways: int):
        # Leader sets are interleaved: set 0 of each duel period leads
        # SRRIP, set duel_period//2 leads BRRIP.
        idx = self._set_counter % self.duel_period
        self._set_counter += 1
        if idx == 0:
            camp = self._LEAD_SRRIP
        elif idx == self.duel_period // 2:
            camp = self._LEAD_BRRIP
        else:
            camp = self._FOLLOWER
        state = _RrpvState(n_ways, self.max_rrpv)
        return (camp, state)

    def _active_policy(self, camp: int) -> SrripPolicy:
        if camp == self._LEAD_SRRIP:
            return self._srrip
        if camp == self._LEAD_BRRIP:
            return self._brrip
        # Follower: PSEL's upper half favours BRRIP.
        return self._srrip if self._psel < (self._psel_max + 1) // 2 else self._brrip

    def on_hit(self, set_state, way: int) -> None:
        camp, state = set_state
        self._srrip.on_hit(state, way)  # hit promotion is policy-independent

    def on_fill(self, set_state, way: int) -> None:
        camp, state = set_state
        # A fill means the leader set missed: steer PSEL away from it.
        if camp == self._LEAD_SRRIP and self._psel < self._psel_max:
            self._psel += 1
        elif camp == self._LEAD_BRRIP and self._psel > 0:
            self._psel -= 1
        self._active_policy(camp).on_fill(state, way)

    def victim(self, set_state) -> int:
        camp, state = set_state
        return self._srrip.victim(state)  # RRPV victim search is shared

    @property
    def psel(self) -> int:
        return self._psel

"""Cache hierarchy of the experimental system (Table II).

Split L1I/L1D, private unified L2, shared inclusive L3 with DRRIP —
the Xeon E5-2670 configuration TailBench characterizes on. Accesses
walk the hierarchy level by level; per-level hit/miss counts feed the
MPKI rows of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import PAPER_SYSTEM, SystemConfig
from .cache import SetAssociativeCache
from .drrip import DrripPolicy

__all__ = ["CacheHierarchy", "HierarchyStats"]


@dataclass(frozen=True)
class HierarchyStats:
    """Misses per kilo-instruction at every level."""

    instructions: int
    l1i_mpki: float
    l1d_mpki: float
    l2_mpki: float
    l3_mpki: float

    def as_dict(self) -> dict:
        return {
            "L1I": self.l1i_mpki,
            "L1D": self.l1d_mpki,
            "L2": self.l2_mpki,
            "L3": self.l3_mpki,
        }


class CacheHierarchy:
    """One core's view of the memory hierarchy."""

    def __init__(self, system: SystemConfig = PAPER_SYSTEM) -> None:
        line = system.line_bytes
        self.l1i = SetAssociativeCache(
            system.l1i_kb * 1024, system.l1i_ways, line, name="L1I"
        )
        self.l1d = SetAssociativeCache(
            system.l1d_kb * 1024, system.l1d_ways, line, name="L1D"
        )
        self.l2 = SetAssociativeCache(
            system.l2_kb * 1024, system.l2_ways, line, name="L2"
        )
        self.l3 = SetAssociativeCache(
            system.l3_mb * 1024 * 1024,
            system.l3_ways,
            line,
            policy=DrripPolicy(),
            name="L3",
        )
        self.instructions = 0

    def fetch(self, pc: int) -> None:
        """Instruction fetch: L1I -> L2 -> L3."""
        self.instructions += 1
        if not self.l1i.access(pc):
            if not self.l2.access(pc):
                self.l3.access(pc)

    def load_store(self, addr: int) -> None:
        """Data access: L1D -> L2 -> L3."""
        if not self.l1d.access(addr):
            if not self.l2.access(addr):
                self.l3.access(addr)

    def stats(self) -> HierarchyStats:
        if self.instructions == 0:
            raise ValueError("no instructions executed yet")
        kilo = self.instructions / 1000.0
        return HierarchyStats(
            instructions=self.instructions,
            l1i_mpki=self.l1i.misses / kilo,
            l1d_mpki=self.l1d.misses / kilo,
            l2_mpki=self.l2.misses / kilo,
            l3_mpki=self.l3.misses / kilo,
        )

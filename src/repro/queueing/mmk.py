"""Closed-form M/M/k waiting-time and sojourn percentiles.

For exponential service the waiting-time distribution has a clean
form: ``P(W > t) = C(k, a) * exp(-(k*mu - lambda) * t)`` where
``C(k, a)`` is the Erlang-C waiting probability. These analytic
percentiles serve as exact anchors for validating the simulator (and
illustrate how much heavier real tails are than exponential ones).
"""

from __future__ import annotations

import math

from .mgk import erlang_c

__all__ = [
    "mmk_wait_ccdf",
    "mmk_wait_percentile",
    "mm1_sojourn_percentile",
]


def _check(arrival_rate: float, mean_service: float, k: int) -> float:
    if arrival_rate <= 0 or mean_service <= 0:
        raise ValueError("rates must be positive")
    if k < 1:
        raise ValueError("k must be >= 1")
    offered = arrival_rate * mean_service
    if offered >= k:
        raise ValueError("system is saturated (offered load >= k)")
    return offered


def mmk_wait_ccdf(
    arrival_rate: float, mean_service: float, k: int, t: float
) -> float:
    """``P(W > t)`` in M/M/k."""
    offered = _check(arrival_rate, mean_service, k)
    if t < 0:
        raise ValueError("t must be non-negative")
    mu = 1.0 / mean_service
    c = erlang_c(k, offered)
    return c * math.exp(-(k * mu - arrival_rate) * t)


def mmk_wait_percentile(
    arrival_rate: float, mean_service: float, k: int, pct: float
) -> float:
    """The ``pct``-th percentile of waiting time in M/M/k.

    Returns 0 when the waiting probability is below the tail mass
    (most arrivals do not wait at all at low load).
    """
    offered = _check(arrival_rate, mean_service, k)
    if not 0.0 < pct < 100.0:
        raise ValueError("pct must be in (0, 100)")
    tail_mass = 1.0 - pct / 100.0
    c = erlang_c(k, offered)
    if c <= tail_mass:
        return 0.0
    mu = 1.0 / mean_service
    return math.log(c / tail_mass) / (k * mu - arrival_rate)


def mm1_sojourn_percentile(
    arrival_rate: float, mean_service: float, pct: float
) -> float:
    """The ``pct``-th percentile of *sojourn* time in M/M/1.

    M/M/1 sojourn time is exactly exponential with rate
    ``mu - lambda``, so ``T_p = -ln(1 - p) / (mu - lambda)``.
    """
    _check(arrival_rate, mean_service, 1)
    if not 0.0 < pct < 100.0:
        raise ValueError("pct must be in (0, 100)")
    mu = 1.0 / mean_service
    return -math.log(1.0 - pct / 100.0) / (mu - arrival_rate)

"""Analytic queueing models: M/G/1 (Pollaczek–Khinchine) and M/G/k."""

from .mg1 import mean_queue_length, mean_sojourn, mean_wait, utilization
from .mgk import (
    erlang_c,
    mgk_mean_sojourn,
    mgk_mean_wait,
    mgk_percentiles,
    mmk_mean_wait,
)
from .mmk import mm1_sojourn_percentile, mmk_wait_ccdf, mmk_wait_percentile

__all__ = [
    "mean_queue_length",
    "mean_sojourn",
    "mean_wait",
    "utilization",
    "erlang_c",
    "mgk_mean_sojourn",
    "mgk_mean_wait",
    "mgk_percentiles",
    "mmk_mean_wait",
    "mm1_sojourn_percentile",
    "mmk_wait_ccdf",
    "mmk_wait_percentile",
]

"""M/G/1 queueing analysis (Pollaczek–Khinchine).

Poisson arrivals into a single FCFS server with a general service-time
distribution — the analytic model of a single-threaded TailBench
application. Exact formulas for mean waiting/sojourn time, plus a
simulation solver for percentiles (closed forms for M/G/1 waiting-time
percentiles do not exist in general).
"""

from __future__ import annotations

from ..stats import Distribution

__all__ = [
    "utilization",
    "mean_wait",
    "mean_sojourn",
    "mean_queue_length",
]


def utilization(arrival_rate: float, service: Distribution) -> float:
    """Offered load rho = lambda * E[S]."""
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    return arrival_rate * service.mean


def mean_wait(arrival_rate: float, service: Distribution) -> float:
    """Pollaczek–Khinchine mean waiting time.

    ``E[W] = lambda * E[S^2] / (2 * (1 - rho))``; infinite at or beyond
    saturation.
    """
    rho = utilization(arrival_rate, service)
    if rho >= 1.0:
        return float("inf")
    return arrival_rate * service.second_moment / (2.0 * (1.0 - rho))


def mean_sojourn(arrival_rate: float, service: Distribution) -> float:
    """Mean time in system: waiting plus service."""
    return mean_wait(arrival_rate, service) + service.mean


def mean_queue_length(arrival_rate: float, service: Distribution) -> float:
    """Mean number waiting (Little's law on the waiting room)."""
    wait = mean_wait(arrival_rate, service)
    return float("inf") if wait == float("inf") else arrival_rate * wait

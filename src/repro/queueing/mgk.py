"""M/G/k queueing analysis.

The Fig. 8 baselines: what latency *would* be with k threads if adding
threads carried no overhead (service times unchanged). Mean waits use
the Lee–Longton approximation (exact for k=1, asymptotically good
under moderate load); percentiles come from a virtual-time simulation
of the M/G/k system itself, reusing the discrete-event server model.
"""

from __future__ import annotations

import math

from ..sim.calibration import AppProfile
from ..sim.contention import NO_CONTENTION
from ..sim.latency_sim import SimConfig, SimResult, simulate_load
from ..stats import Distribution

__all__ = [
    "erlang_c",
    "mmk_mean_wait",
    "mgk_mean_wait",
    "mgk_mean_sojourn",
    "mgk_percentiles",
]


def erlang_c(k: int, offered: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/k).

    ``offered`` is the offered load in Erlangs, ``a = lambda * E[S]``;
    must be below ``k``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if offered < 0:
        raise ValueError("offered load must be non-negative")
    if offered >= k:
        return 1.0
    # Numerically stable iterative form of the Erlang-B recursion,
    # then convert B -> C.
    b = 1.0
    for i in range(1, k + 1):
        b = offered * b / (i + offered * b)
    rho = offered / k
    return b / (1.0 - rho + rho * b)


def mmk_mean_wait(arrival_rate: float, mean_service: float, k: int) -> float:
    """Mean waiting time in M/M/k."""
    if arrival_rate <= 0 or mean_service <= 0:
        raise ValueError("rates must be positive")
    offered = arrival_rate * mean_service
    if offered >= k:
        return float("inf")
    pw = erlang_c(k, offered)
    return pw * mean_service / (k - offered)


def mgk_mean_wait(arrival_rate: float, service: Distribution, k: int) -> float:
    """Lee–Longton M/G/k mean wait: ``(1 + SCV)/2 * W(M/M/k)``."""
    base = mmk_mean_wait(arrival_rate, service.mean, k)
    if math.isinf(base):
        return base
    return (1.0 + service.scv) / 2.0 * base


def mgk_mean_sojourn(arrival_rate: float, service: Distribution, k: int) -> float:
    """Mean time in system under M/G/k."""
    wait = mgk_mean_wait(arrival_rate, service, k)
    return float("inf") if math.isinf(wait) else wait + service.mean


def mgk_percentiles(
    service: Distribution,
    qps: float,
    k: int,
    measure_requests: int = 20_000,
    seed: int = 0,
) -> SimResult:
    """Percentile latencies of the pure M/G/k model, by simulation.

    This is the dashed-line baseline of Fig. 8: ``k`` servers, the
    *unmodified* service distribution (no contention, no network, no
    simulator error). Returns a full :class:`SimResult` so p95/p99 and
    the whole distribution are available.
    """
    profile = AppProfile(name=f"mg{k}", service=service, contention=NO_CONTENTION)
    config = SimConfig(
        qps=qps,
        n_threads=k,
        configuration="integrated",
        warmup_requests=max(100, measure_requests // 10),
        measure_requests=measure_requests,
        seed=seed,
    )
    return simulate_load(profile, config)

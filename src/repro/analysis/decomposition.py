"""Latency decomposition.

Splits measured sojourn-time distributions into their components —
queueing, service, transport — at any percentile, answering the
question every tail-latency study starts with: *where does the tail
come from?* At low load the service distribution dominates; near
saturation queueing takes over; for microsecond-scale apps under the
networked configuration, the stack is a visible slice (Sec. VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.collector import CollectedStats
from ..stats import percentile

__all__ = ["LatencyBreakdown", "decompose"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Component percentiles of one run (seconds).

    Note that percentiles do not literally add up (the p95 request for
    sojourn is not necessarily the p95 request for queueing); the
    breakdown reports each component's own distribution at the same
    percentile, plus the dominant component among requests actually in
    the sojourn tail.
    """

    pct: float
    sojourn: float
    queue: float
    service: float
    network: float
    #: Fraction of tail requests (sojourn > its pct) whose largest
    #: component is queueing / service / network respectively.
    tail_dominated_by_queue: float
    tail_dominated_by_service: float
    tail_dominated_by_network: float

    def dominant(self) -> str:
        """Name of the component dominating the sojourn tail."""
        shares = {
            "queue": self.tail_dominated_by_queue,
            "service": self.tail_dominated_by_service,
            "network": self.tail_dominated_by_network,
        }
        return max(shares, key=shares.get)


def decompose(stats: CollectedStats, pct: float = 95.0) -> LatencyBreakdown:
    """Break a run's latency into components at percentile ``pct``.

    Requires exact per-request records (short runs); HDR-mode runs
    cannot attribute tail requests to components.
    """
    if not 0.0 < pct < 100.0:
        raise ValueError("pct must be in (0, 100)")
    records = stats.records  # raises in HDR mode
    if not records:
        raise ValueError("no records to decompose")
    sojourns = [r.sojourn_time for r in records]
    threshold = percentile(sojourns, pct)
    tail = [r for r in records if r.sojourn_time > threshold]
    if not tail:  # degenerate distributions: everything equal
        tail = list(records)

    def dominated(selector) -> float:
        count = sum(
            1
            for r in tail
            if selector(r) == max(r.queue_time, r.service_time, r.network_time)
        )
        return count / len(tail)

    return LatencyBreakdown(
        pct=pct,
        sojourn=threshold,
        queue=percentile([r.queue_time for r in records], pct),
        service=percentile([r.service_time for r in records], pct),
        network=percentile([r.network_time for r in records], pct),
        tail_dominated_by_queue=dominated(lambda r: r.queue_time),
        tail_dominated_by_service=dominated(lambda r: r.service_time),
        tail_dominated_by_network=dominated(lambda r: r.network_time),
    )

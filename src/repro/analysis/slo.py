"""SLO-driven capacity analysis.

Datacenter operators provision latency-critical services by the
highest load that still meets a tail-latency SLO (e.g. "p95 under
5 ms"), not by peak throughput — the reason utilization stays low
(Sec. II-A). These helpers turn the simulator into that planning tool:
find the SLO-compliant capacity of a configuration, and quantify how
much capacity a proposed change (more threads, a different harness
configuration, ideal memory) buys or costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sim import AppProfile, SimConfig, SimResult, simulate_load

__all__ = ["SloCapacity", "find_slo_capacity", "capacity_curve"]


@dataclass(frozen=True)
class SloCapacity:
    """Result of an SLO capacity search."""

    qps: float
    latency_at_qps: float
    slo: float
    percentile: float
    utilization: float

    @property
    def headroom(self) -> float:
        """Fraction of the SLO still unused at the found capacity."""
        return 1.0 - self.latency_at_qps / self.slo


def _tail(result: SimResult, percentile: float) -> float:
    return result.sojourn.percentiles.get(
        percentile, result.stats.summary("sojourn").percentiles[percentile]
    )


def find_slo_capacity(
    profile: AppProfile,
    slo_seconds: float,
    percentile: float = 95.0,
    config: SimConfig = None,
    tolerance: float = 0.02,
    measure_requests: int = 8000,
    max_iterations: int = 30,
) -> SloCapacity:
    """Binary-search the highest QPS whose tail latency meets the SLO.

    ``config`` supplies everything except ``qps`` (threads,
    configuration, seed); defaults to a single-threaded integrated
    setup. The search brackets between 0 and the analytic saturation
    rate, converging to ``tolerance`` (relative QPS).
    """
    if slo_seconds <= 0:
        raise ValueError("slo_seconds must be positive")
    if not 0.0 < percentile < 100.0:
        raise ValueError("percentile must be in (0, 100)")
    base = config or SimConfig(measure_requests=measure_requests)

    def measure(qps: float) -> SimResult:
        return simulate_load(profile, base.with_qps(qps))

    saturation = profile.service_model(
        n_threads=base.n_threads
    ).saturation_qps(base.n_threads)
    # If even 1% of saturation misses the SLO, the SLO is infeasible
    # (tail of the service distribution itself exceeds it).
    lo_qps = saturation * 0.01
    lo_result = measure(lo_qps)
    if _tail(lo_result, percentile) > slo_seconds:
        raise ValueError(
            f"SLO {slo_seconds} is below the p{percentile:g} of the "
            f"service-time distribution itself — infeasible at any load"
        )
    lo, hi = lo_qps, saturation * 0.999
    best = (lo_qps, lo_result)
    for _ in range(max_iterations):
        if (hi - lo) / hi < tolerance:
            break
        mid = (lo + hi) / 2.0
        result = measure(mid)
        if _tail(result, percentile) <= slo_seconds:
            lo = mid
            best = (mid, result)
        else:
            hi = mid
    qps, result = best
    return SloCapacity(
        qps=qps,
        latency_at_qps=_tail(result, percentile),
        slo=slo_seconds,
        percentile=percentile,
        utilization=result.utilization,
    )


def capacity_curve(
    profile: AppProfile,
    slos: Tuple[float, ...],
    percentile: float = 95.0,
    config: SimConfig = None,
    measure_requests: int = 6000,
) -> Tuple[SloCapacity, ...]:
    """SLO-compliant capacity at each of several SLO targets.

    The resulting (slo, qps) curve is what operators trade against:
    tighter SLOs cost capacity superlinearly near the tail.
    """
    if not slos:
        raise ValueError("need at least one SLO target")
    return tuple(
        find_slo_capacity(
            profile,
            slo,
            percentile=percentile,
            config=config,
            measure_requests=measure_requests,
        )
        for slo in slos
    )

"""Analysis tools built on the harness and simulator.

Operator-facing utilities the paper's introduction motivates: SLO-
compliant capacity planning, fan-out (tail-at-scale) amplification,
and latency decomposition.
"""

from .decomposition import LatencyBreakdown, decompose
from .fanout import fanout_quantile, fanout_summary, required_leaf_quantile
from .slo import SloCapacity, capacity_curve, find_slo_capacity

__all__ = [
    "LatencyBreakdown",
    "decompose",
    "fanout_quantile",
    "fanout_summary",
    "required_leaf_quantile",
    "SloCapacity",
    "capacity_curve",
    "find_slo_capacity",
]

"""Fan-out (tail-at-scale) analysis.

High-fanout services wait for the slowest of many leaf responses
(Sec. II-A; Dean & Barroso's "tail at scale"). Given a leaf latency
distribution, these helpers compute the end-to-end distribution of the
max over N independent leaves — analytically from an empirical sample,
without re-simulation.

**The iid assumption.** Everything here rests on
``P(max <= t) = F(t)**n``, which requires the n leaf latencies of one
logical request to be *independent and identically distributed*.
Identical is a provisioning property (homogeneous shards, balanced
partitions); independence is the fragile half. In a real scatter-gather
deployment (``repro.core.fanout``) the shards receive the *same*
arrival stream — every logical request lands on all K shards at once —
so their queue waits are positively correlated, and the true end-to-end
quantile sits *below* the iid prediction (correlated maxima are
stochastically smaller: ``P(all <= t) >= F(t)**n``). The prediction is
therefore a slightly conservative upper envelope; at moderate
utilization, where per-shard service-time randomness dominates queueing
delay, the gap is small (the `fig-fanout` experiment measures it at a
few percent). The brute-force resampling cross-check lives in the test
suite (max-of-N over independently drawn leaves), which converges to
these closed forms as the sample grows.
"""

from __future__ import annotations

from typing import Sequence

from ..stats import quantile

__all__ = ["fanout_quantile", "fanout_summary", "required_leaf_quantile"]


def fanout_quantile(
    leaf_samples: Sequence[float],
    fanout: int,
    q: float,
    sorted_values: bool = False,
) -> float:
    """The ``q``-quantile of ``max(L_1..L_fanout)`` for iid leaves.

    Uses the order-statistic identity ``P(max <= t) = F(t)^n``: the
    end-to-end q-quantile equals the leaf's ``q**(1/n)`` quantile. No
    resampling noise, exact given the empirical leaf CDF. Pass
    ``sorted_values=True`` when the samples are already ascending to
    skip the per-call re-sort.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    if not leaf_samples:
        raise ValueError("need leaf samples")
    leaf_q = q ** (1.0 / fanout)
    data = leaf_samples if sorted_values else sorted(leaf_samples)
    return quantile(data, leaf_q, sorted_values=True)


def fanout_summary(
    leaf_samples: Sequence[float],
    fanouts: Sequence[int],
    qs: Sequence[float] = (0.5, 0.95, 0.99),
) -> dict:
    """End-to-end quantiles for several fan-outs: {fanout: {q: value}}."""
    # One shared sort for the whole (fanout x quantile) grid.
    data = sorted(leaf_samples)
    return {
        n: {q: fanout_quantile(data, n, q, sorted_values=True) for q in qs}
        for n in fanouts
    }


def required_leaf_quantile(fanout: int, end_to_end_q: float) -> float:
    """Which leaf quantile bounds the end-to-end ``q`` at ``fanout``.

    E.g. to control the end-to-end *median* at fan-out 100, the leaf's
    ~99.3rd percentile is what matters: ``0.5 ** (1/100) ~= 0.9931``.
    This is the quantitative version of the paper's motivation for
    characterizing leaf-node tails.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if not 0.0 < end_to_end_q < 1.0:
        raise ValueError("end_to_end_q must be in (0, 1)")
    return end_to_end_q ** (1.0 / fanout)

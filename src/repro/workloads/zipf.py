"""Zipfian query-popularity sampling shared by the search workloads.

Online search query popularity follows a Zipfian distribution
[Baeza-Yates 2005; Feitelson 2015], which TailBench uses to pick
xapian's query terms (Sec. III). :class:`ZipfRankSampler` is the one
seeded rank-draw primitive; :class:`ZipfQuerySampler` builds xapian's
multi-term text queries on top of it, and the vector-search client
(:mod:`repro.apps.vsearch`) draws query ids from it directly.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..stats import ZipfianGenerator

__all__ = ["ZipfRankSampler", "ZipfQuerySampler"]


class ZipfRankSampler:
    """One seeded stream of Zipfian ranks over ``n`` items.

    Rank 0 is the most popular item. The sampler owns its RNG so two
    samplers with the same ``(n, theta, seed)`` produce identical
    streams; composite samplers that need extra draws (e.g. query
    length) share :attr:`rng` to keep the whole stream reproducible
    from one seed.
    """

    def __init__(
        self,
        n: int,
        theta: float = 0.9,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one item to rank")
        self.n = n
        self.theta = theta
        self._zipf = ZipfianGenerator(n, theta=theta)
        self.rng = rng if rng is not None else random.Random(seed)

    def next_rank(self) -> int:
        """Draw the next rank in ``[0, n)``."""
        return self._zipf.sample(self.rng)


class ZipfQuerySampler:
    """Draws search queries with Zipfian term popularity.

    Parameters
    ----------
    vocabulary:
        Terms ordered most-frequent-first (rank 0 = most popular).
    theta:
        Zipfian skew exponent.
    min_terms / max_terms:
        Query length is uniform in ``[min_terms, max_terms]`` — real
        search queries average two to three terms.
    """

    def __init__(
        self,
        vocabulary: Sequence[str],
        theta: float = 0.9,
        min_terms: int = 1,
        max_terms: int = 4,
        seed: int = 0,
    ) -> None:
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        if not 1 <= min_terms <= max_terms:
            raise ValueError("need 1 <= min_terms <= max_terms")
        if min_terms > len(vocabulary):
            raise ValueError(
                "min_terms (%d) exceeds vocabulary size (%d): every query "
                "would silently fall short of its minimum length"
                % (min_terms, len(vocabulary))
            )
        self.vocabulary = list(vocabulary)
        self.min_terms = min_terms
        self.max_terms = max_terms
        self._ranks = ZipfRankSampler(
            len(self.vocabulary), theta=theta, seed=seed
        )
        # Length draws interleave with rank draws on the one shared RNG.
        self._rng = self._ranks.rng

    def next_terms(self) -> List[str]:
        n = self._rng.randint(self.min_terms, self.max_terms)
        # A query can never hold more distinct terms than the vocabulary
        # does; cap the drawn length up front so the dedup loop always
        # reaches it instead of bailing out short after duplicate ranks
        # exhaust a small vocabulary.
        n = min(n, len(self.vocabulary))
        terms: List[str] = []
        seen = set()
        while len(terms) < n:
            term = self.vocabulary[self._ranks.next_rank()]
            if term not in seen:
                seen.add(term)
                terms.append(term)
        return terms

    def next_query(self) -> str:
        return " ".join(self.next_terms())

"""Zipfian search-query generation for xapian.

Online search query popularity follows a Zipfian distribution
[Baeza-Yates 2005; Feitelson 2015], which TailBench uses to pick
xapian's query terms (Sec. III). :class:`ZipfQuerySampler` draws query
terms by Zipfian rank from a vocabulary ordered by corpus frequency,
and composes multi-term queries with a configurable length
distribution.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..stats import ZipfianGenerator

__all__ = ["ZipfQuerySampler"]


class ZipfQuerySampler:
    """Draws search queries with Zipfian term popularity.

    Parameters
    ----------
    vocabulary:
        Terms ordered most-frequent-first (rank 0 = most popular).
    theta:
        Zipfian skew exponent.
    min_terms / max_terms:
        Query length is uniform in ``[min_terms, max_terms]`` — real
        search queries average two to three terms.
    """

    def __init__(
        self,
        vocabulary: Sequence[str],
        theta: float = 0.9,
        min_terms: int = 1,
        max_terms: int = 4,
        seed: int = 0,
    ) -> None:
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        if not 1 <= min_terms <= max_terms:
            raise ValueError("need 1 <= min_terms <= max_terms")
        self.vocabulary = list(vocabulary)
        self.min_terms = min_terms
        self.max_terms = max_terms
        self._zipf = ZipfianGenerator(len(self.vocabulary), theta=theta)
        self._rng = random.Random(seed)

    def next_terms(self) -> List[str]:
        n = self._rng.randint(self.min_terms, self.max_terms)
        terms = []
        seen = set()
        while len(terms) < n:
            term = self.vocabulary[self._zipf.sample(self._rng)]
            if term not in seen:
                seen.add(term)
                terms.append(term)
            elif len(seen) >= len(self.vocabulary):
                break
        return terms

    def next_query(self) -> str:
        return " ".join(self.next_terms())

"""Workload generators: TPC-C, YCSB (mycsb-a), Zipfian search queries."""

from .tpcc import (
    STANDARD_MIX,
    TpccScale,
    TpccTransaction,
    TpccWorkload,
    make_last_name,
    nurand,
)
from .ycsb import YcsbOperation, YcsbWorkload, make_key, make_value
from .zipf import ZipfQuerySampler, ZipfRankSampler

__all__ = [
    "STANDARD_MIX",
    "TpccScale",
    "TpccTransaction",
    "TpccWorkload",
    "make_last_name",
    "nurand",
    "YcsbOperation",
    "YcsbWorkload",
    "make_key",
    "make_value",
    "ZipfQuerySampler",
    "ZipfRankSampler",
]

"""YCSB-style key-value workload.

TailBench drives masstree with "mycsb-a", a modified Yahoo Cloud
Serving Benchmark workload with 50% GET and 50% PUT over a ~1 GB table
(Sec. III). This module reproduces that driver: Zipfian key popularity
over a fixed keyspace, deterministic synthetic values, and a GET/PUT
operation mix.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict

from ..stats import ZipfianGenerator

__all__ = ["YcsbOperation", "YcsbWorkload", "make_key", "make_value"]


def make_key(index: int) -> str:
    """Deterministic YCSB-style key (``user`` + hashed index)."""
    if index < 0:
        raise ValueError("index must be non-negative")
    digest = hashlib.md5(str(index).encode()).hexdigest()[:16]
    return f"user{digest}"


def make_value(index: int, size: int = 100) -> bytes:
    """Deterministic pseudo-random value of ``size`` bytes."""
    if size < 1:
        raise ValueError("size must be >= 1")
    seed = hashlib.md5(f"value-{index}".encode()).digest()
    reps = size // len(seed) + 1
    return (seed * reps)[:size]


@dataclass(frozen=True)
class YcsbOperation:
    """One key-value operation: ``op`` is 'get' or 'put'."""

    op: str
    key: str
    value: bytes = b""


class YcsbWorkload:
    """mycsb-a: 50/50 GET/PUT with Zipfian key popularity.

    Parameters
    ----------
    n_records:
        Keyspace size (the table is pre-loaded with these records).
    get_fraction:
        Fraction of operations that are GETs (0.5 for mycsb-a).
    value_size:
        Bytes per value.
    zipf_theta:
        Zipfian skew of key popularity.
    """

    def __init__(
        self,
        n_records: int = 10_000,
        get_fraction: float = 0.5,
        value_size: int = 100,
        zipf_theta: float = 0.99,
        seed: int = 0,
    ) -> None:
        if n_records < 1:
            raise ValueError("n_records must be >= 1")
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0, 1]")
        self.n_records = n_records
        self.get_fraction = get_fraction
        self.value_size = value_size
        self._zipf = ZipfianGenerator(n_records, theta=zipf_theta)
        self._rng = random.Random(seed)
        self._put_counter = n_records  # source of fresh values

    def initial_records(self) -> Dict[str, bytes]:
        """The pre-load dataset: every key with its initial value."""
        return {
            make_key(i): make_value(i, self.value_size)
            for i in range(self.n_records)
        }

    def next_operation(self) -> YcsbOperation:
        rank = self._zipf.sample(self._rng)
        key = make_key(rank)
        if self._rng.random() < self.get_fraction:
            return YcsbOperation("get", key)
        self._put_counter += 1
        return YcsbOperation(
            "put", key, make_value(self._put_counter, self.value_size)
        )

"""TPC-C workload generation (shared by silo and shore).

Implements the input-generation side of the TPC-C benchmark [TPC-C
rev 5.11]: the non-uniform random (NURand) distribution, the standard
transaction mix (45% New-Order, 43% Payment, 4% each of Order-Status,
Delivery, Stock-Level), and per-transaction parameter generation. The
database engines consume the emitted :class:`TpccTransaction`
descriptors.

A ``scale`` factor shrinks the per-warehouse cardinalities uniformly so
tests and examples can run against small databases without changing
the workload's statistical structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "TpccScale",
    "TpccTransaction",
    "TpccWorkload",
    "nurand",
    "make_last_name",
    "STANDARD_MIX",
]

# Syllables used by TPC-C's customer last-name generator (clause 4.3.2.3).
_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)

#: Standard TPC-C transaction mix (clause 5.2.3 minimums, normalized).
STANDARD_MIX: Dict[str, float] = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}


def make_last_name(number: int) -> str:
    """Customer last name from a number in [0, 999] (clause 4.3.2.3)."""
    if not 0 <= number <= 999:
        raise ValueError("last-name number must be in [0, 999]")
    return (
        _NAME_SYLLABLES[number // 100]
        + _NAME_SYLLABLES[(number // 10) % 10]
        + _NAME_SYLLABLES[number % 10]
    )


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C non-uniform random over [x, y] (clause 2.1.6)."""
    if y < x:
        raise ValueError("need x <= y")
    return (
        ((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)
    ) + x


@dataclass(frozen=True)
class TpccScale:
    """Cardinalities of one TPC-C warehouse, scalable for testing."""

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 3000
    items: int = 100_000
    initial_orders_per_district: int = 3000

    def __post_init__(self) -> None:
        for name in (
            "warehouses",
            "districts_per_warehouse",
            "customers_per_district",
            "items",
            "initial_orders_per_district",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @classmethod
    def small(cls, warehouses: int = 1) -> "TpccScale":
        """A down-scaled database for fast tests and examples."""
        return cls(
            warehouses=warehouses,
            districts_per_warehouse=4,
            customers_per_district=60,
            items=500,
            initial_orders_per_district=60,
        )


@dataclass(frozen=True)
class TpccTransaction:
    """One transaction request: a type tag plus its input parameters."""

    kind: str
    params: Dict = field(default_factory=dict)


class TpccWorkload:
    """Generates TPC-C transactions with the standard mix.

    The same generator instance drives both silo and shore so their
    offered workloads are statistically identical (only the engine
    underneath differs), mirroring the paper's setup where both run
    TPC-C.
    """

    def __init__(
        self,
        scale: TpccScale = TpccScale(),
        seed: int = 0,
        mix: Dict[str, float] = None,
    ) -> None:
        self.scale = scale
        self._rng = random.Random(seed)
        mix = dict(STANDARD_MIX if mix is None else mix)
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError("transaction mix must sum to 1")
        unknown = set(mix) - set(STANDARD_MIX)
        if unknown:
            raise ValueError(f"unknown transaction kinds: {sorted(unknown)}")
        self._kinds: List[str] = sorted(mix)
        self._weights: List[float] = [mix[k] for k in self._kinds]

    # -- parameter generators (one per transaction type) ---------------
    def _pick_warehouse(self) -> int:
        return self._rng.randint(1, self.scale.warehouses)

    def _pick_district(self) -> int:
        return self._rng.randint(1, self.scale.districts_per_warehouse)

    def _pick_customer(self) -> int:
        c = self.scale.customers_per_district
        return nurand(self._rng, 1023, 1, c) if c > 1023 else self._rng.randint(1, c)

    def _pick_item(self) -> int:
        n = self.scale.items
        return nurand(self._rng, 8191, 1, n) if n > 8191 else self._rng.randint(1, n)

    def new_order(self) -> TpccTransaction:
        w_id = self._pick_warehouse()
        n_lines = self._rng.randint(5, 15)
        lines = []
        for _ in range(n_lines):
            # 1% of lines reference a remote warehouse when there is one.
            remote = self.scale.warehouses > 1 and self._rng.random() < 0.01
            supply_w = (
                self._rng.choice(
                    [w for w in range(1, self.scale.warehouses + 1) if w != w_id]
                )
                if remote
                else w_id
            )
            lines.append(
                {
                    "item_id": self._pick_item(),
                    "supply_w_id": supply_w,
                    "quantity": self._rng.randint(1, 10),
                }
            )
        return TpccTransaction(
            "new_order",
            {
                "w_id": w_id,
                "d_id": self._pick_district(),
                "c_id": self._pick_customer(),
                "lines": lines,
            },
        )

    def payment(self) -> TpccTransaction:
        w_id = self._pick_warehouse()
        by_name = self._rng.random() < 0.60
        params = {
            "w_id": w_id,
            "d_id": self._pick_district(),
            "amount": round(self._rng.uniform(1.0, 5000.0), 2),
        }
        if by_name:
            params["c_last"] = make_last_name(
                nurand(self._rng, 255, 0, 999)
                if self.scale.customers_per_district >= 1000
                else self._rng.randint(0, 999)
            )
        else:
            params["c_id"] = self._pick_customer()
        return TpccTransaction("payment", params)

    def order_status(self) -> TpccTransaction:
        return TpccTransaction(
            "order_status",
            {
                "w_id": self._pick_warehouse(),
                "d_id": self._pick_district(),
                "c_id": self._pick_customer(),
            },
        )

    def delivery(self) -> TpccTransaction:
        return TpccTransaction(
            "delivery",
            {
                "w_id": self._pick_warehouse(),
                "carrier_id": self._rng.randint(1, 10),
            },
        )

    def stock_level(self) -> TpccTransaction:
        return TpccTransaction(
            "stock_level",
            {
                "w_id": self._pick_warehouse(),
                "d_id": self._pick_district(),
                "threshold": self._rng.randint(10, 20),
            },
        )

    def next_transaction(self) -> TpccTransaction:
        kind = self._rng.choices(self._kinds, weights=self._weights, k=1)[0]
        return getattr(self, kind)()

"""Batching configuration.

One frozen :class:`BatchingConfig` describes the dynamic batcher for a
run. Off by default: a disabled config makes the harness and the
simulator take their original single-request dispatch paths, so
unbatched runs stay bit-identical to the pre-batching code per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BatchingConfig", "NO_BATCHING"]


@dataclass(frozen=True)
class BatchingConfig:
    """Dynamic batching knobs (the size-or-deadline trigger).

    A batch is released to a worker as soon as **either** condition
    holds: the batch is full (``max_batch_size`` waiting requests of
    one priority class) or the oldest waiting request has queued for
    ``max_batch_delay`` seconds. ``max_batch_delay`` therefore bounds
    the extra queueing latency batching can add to any request; at low
    load batches degenerate to size 1 after the delay, at saturation
    they fill instantly.

    ``sim_marginal_cost`` is the simulator's batch service-time model:
    a batch of draws ``s_0..s_{k-1}`` (one per member, preserving the
    per-request RNG stream) costs ``s_0 + sim_marginal_cost * (s_1 +
    ... + s_{k-1})`` — the first member pays full price, each extra
    member only the marginal fraction, mirroring the amortization a
    vectorized ``handle_batch`` achieves live. ``1.0`` degenerates to
    serial processing (no batching benefit), ``0.0`` to perfect
    amortization.
    """

    enabled: bool = False
    max_batch_size: int = 8
    max_batch_delay: float = 0.002
    sim_marginal_cost: float = 0.35

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_batch_delay < 0.0:
            raise ValueError("max_batch_delay must be non-negative")
        if not 0.0 <= self.sim_marginal_cost <= 1.0:
            raise ValueError("sim_marginal_cost must be in [0, 1]")

    def replace(self, **kwargs) -> "BatchingConfig":
        from dataclasses import replace

        return replace(self, **kwargs)


#: Default: batching entirely off (workers dequeue one request at a time).
NO_BATCHING = BatchingConfig()

"""Dynamic request batching.

The batcher sits between the request queue and the worker pool: a
worker no longer dequeues one request at a time but asks the shared
:class:`BatchPolicy` to *form a batch* — up to ``max_batch_size``
requests, released early once the oldest member has waited
``max_batch_delay`` (the size-or-deadline trigger of modern inference
servers). The identical policy object drives both the live
:class:`repro.core.server.Server` worker loop and the discrete-event
simulator's :class:`repro.sim.server_model.SimulatedServer`, so
batch membership — and therefore per-seed results — match across
modes.

Everything is off by default: a :class:`BatchingConfig` with
``enabled=False`` constructs nothing and the worker loop is the
pre-batching single-request loop, bit-identical per seed.
"""

from .config import NO_BATCHING, BatchingConfig
from .policy import BatchPolicy

__all__ = ["BatchingConfig", "NO_BATCHING", "BatchPolicy"]

"""Shared batch-formation logic.

:class:`BatchPolicy` answers exactly two questions against a pending
buffer (:class:`~repro.core.queueing.FifoBuffer` or
:class:`~repro.core.queueing.PriorityBuffer`):

- :meth:`ready_at` — at what instant may the next batch be released?
  *Now* if the buffer already holds a full batch, otherwise the moment
  the current head request will have waited ``max_batch_delay``.
- :meth:`form` — pop the batch (up to ``max_batch_size`` requests,
  never spanning priority classes).

The policy is stateless: all state lives in the buffer, so one policy
object can serve every replica of a topology, and the live worker
loop and the simulator's dispatch events make the identical
release/membership decisions from the identical buffer state.
"""

from __future__ import annotations

from typing import List, Optional

from .config import BatchingConfig

__all__ = ["BatchPolicy"]


class BatchPolicy:
    """Size-or-deadline batch formation over a pending buffer."""

    __slots__ = ("max_batch_size", "max_batch_delay")

    def __init__(self, max_batch_size: int, max_batch_delay: float) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_batch_delay < 0.0:
            raise ValueError("max_batch_delay must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_batch_delay = max_batch_delay

    @classmethod
    def from_config(cls, config: BatchingConfig) -> "BatchPolicy":
        return cls(config.max_batch_size, config.max_batch_delay)

    def ready_at(self, buffer, now: float) -> Optional[float]:
        """Earliest instant a batch may be released from ``buffer``.

        ``None`` when the buffer is empty; ``now`` (or earlier) when a
        batch is releasable immediately — the buffer holds a full
        batch, or its head has already waited out ``max_batch_delay``.
        A future instant means: wait until then (or until the buffer
        fills) before forming.
        """
        if not len(buffer):
            return None
        if len(buffer) >= self.max_batch_size:
            return now
        head = buffer.head_enqueued_at()
        if head is None:  # pragma: no cover - buffers always stamp heads
            return now
        return head + self.max_batch_delay

    def form(self, buffer) -> List:
        """Pop and return the next batch (at least one request).

        Delegates membership to the buffer's ``pop_batch``: FIFO order
        for the plain buffer; for the priority buffer one scheduling
        decision picks the class and the whole batch is drawn from it,
        so batches never span priority classes.
        """
        return buffer.pop_batch(self.max_batch_size)

"""Cross-process trace-event forwarding.

A process-mode replica (:mod:`repro.core.transport.process`) runs its
worker pool in a child interpreter, but the run's single
:class:`~repro.obs.trace.Tracer` ring lives in the harness process.
The child therefore emits into a :class:`TraceRelay` — an object with
the tracer's ``emit`` signature that only buffers tuples — and the
replica's IPC streamer drains the relay into the same framed message
that carries completion records, so tracing adds zero extra pipe
traffic. On the parent side :func:`replay_events` rebases each event's
timestamp from the child's clock to the parent's (using the offset
measured at the replica's ready handshake) and appends it to the real
tracer.

Events forwarded this way interleave with parent-side events in ring
order, not in global timestamp order — consumers that need temporal
order (the exporters already do) sort by ``ts``.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

__all__ = ["TraceRelay", "replay_events"]

#: Wire form of one relayed event:
#: ``(kind, ts, logical_id, request_id, attempt, value)``. The server
#: id is implicit — each replica's stream belongs to one server — and
#: re-attached by :func:`replay_events`.
EventTuple = Tuple[str, float, Optional[int], Optional[int], Optional[int],
                   Optional[float]]


class TraceRelay:
    """Child-side stand-in for a :class:`~repro.obs.trace.Tracer`.

    Implements only ``emit`` — the single entry point the worker pool
    uses — and accumulates events until the IPC streamer drains them.
    Thread-safe: every worker thread of the replica emits into it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[EventTuple] = []

    def emit(
        self,
        kind: str,
        ts: float,
        logical_id: Optional[int] = None,
        request_id: Optional[int] = None,
        attempt: Optional[int] = None,
        server_id: Optional[int] = None,
        value: Optional[float] = None,
    ) -> None:
        event = (kind, ts, logical_id, request_id, attempt, value)
        with self._lock:
            self._events.append(event)

    def drain(self) -> List[EventTuple]:
        """Take (and clear) everything emitted since the last drain."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def replay_events(
    tracer,
    events,
    clock_offset: float,
    server_id: int,
) -> int:
    """Append relayed child events to the parent tracer.

    ``clock_offset`` is ``parent_now - child_now`` measured at the
    replica's ready handshake; adding it maps child timestamps onto
    the parent clock (on Linux both are CLOCK_MONOTONIC so the offset
    is ~0, but the handshake makes no such platform assumption).

    Events pass through kind-agnostically — the SLO markers the live
    layer emits (``slo_burn``/``slo_clear``) never originate in a
    child (the burn-rate monitor runs parent-side, fed by the same
    completion path process replicas funnel into), but any future
    child-side kind relays without changes here.

    Returns the number of events replayed (0 when tracing is off).
    """
    if tracer is None:
        return 0
    n = 0
    for kind, ts, logical_id, request_id, attempt, value in events:
        tracer.emit(
            kind,
            ts + clock_offset,
            logical_id=logical_id,
            request_id=request_id,
            attempt=attempt,
            server_id=server_id,
            value=value,
        )
        n += 1
    return n

"""Observability: request-lifecycle tracing, live metrics, exporters.

The harness and the discrete-event simulator emit the *same* event
schema through the same :class:`Tracer`, so live and simulated runs
produce directly diffable traces. Everything here is off by default
(``ObservabilityConfig(tracing=False)``); when off, the hot paths pay
one ``is None`` test and nothing is allocated.

Entry points:

- ``HarnessConfig(observability=ObservabilityConfig(tracing=True))``
  then ``result.obs`` — live runs.
- ``SimConfig(observability=...)`` then ``result.obs`` — virtual time.
- ``tailbench trace <app>`` — run a workload and print the dashboard.
- ``tailbench tail <app>`` — run it and print the tail attribution.
- ``python -m repro.obs.validate trace.jsonl`` — schema-check a trace.

The streaming layer (:mod:`repro.obs.live`: windowed sketches, SLO
burn-rate alerting, exemplar capture) turns on separately via
``ObservabilityConfig(tracing=True, slo=SloConfig(enabled=True, ...))``
and surfaces as ``result.obs.live``.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from ..core.collector import TimelinePoint
from .attribution import (
    COMPONENTS,
    CriticalPath,
    FanoutReport,
    RankedCause,
    TailReport,
    critical_paths,
    fanout_report,
    tail_report,
)
from .dashboard import (
    BandBreakdown,
    breakdown_by_band,
    per_server_decomposition,
    render_dashboard,
)
from .exporters import (
    TRACE_SCHEMA,
    export_series_jsonl,
    export_trace_jsonl,
    load_trace_jsonl,
    prometheus_text,
    validate_trace_file,
    validate_trace_line,
)
from .live import (
    AlertEvent,
    AlertLog,
    BurnRateMonitor,
    Exemplar,
    LiveObs,
    LiveReport,
    WindowSnapshot,
)
from .metrics import (
    Counter,
    Gauge,
    HdrSketch,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
)
from .trace import (
    EVENT_KINDS,
    LIFECYCLE_EVENTS,
    TraceEvent,
    Tracer,
    decompose_attempts,
    group_attempts,
)

__all__ = [
    "AlertEvent",
    "AlertLog",
    "BandBreakdown",
    "BurnRateMonitor",
    "COMPONENTS",
    "Counter",
    "CriticalPath",
    "EVENT_KINDS",
    "Exemplar",
    "Gauge",
    "HdrSketch",
    "Histogram",
    "LIFECYCLE_EVENTS",
    "LiveObs",
    "LiveReport",
    "FanoutReport",
    "MetricsRegistry",
    "MetricsSampler",
    "ObsResult",
    "RankedCause",
    "TRACE_SCHEMA",
    "TailReport",
    "TimelinePoint",
    "TraceEvent",
    "Tracer",
    "WindowSnapshot",
    "breakdown_by_band",
    "critical_paths",
    "decompose_attempts",
    "export_series_jsonl",
    "fanout_report",
    "export_trace_jsonl",
    "group_attempts",
    "load_trace_jsonl",
    "per_server_decomposition",
    "prometheus_text",
    "render_dashboard",
    "tail_report",
    "validate_trace_file",
    "validate_trace_line",
]


@dataclass(frozen=True)
class ObsResult:
    """One run's observability artifacts, attached to the run result.

    Immutable snapshot taken after the run drains: the retained trace
    events (plus how many the ring evicted), the sampled metric time
    series, and a final scalar snapshot of every registered metric.
    """

    events: Tuple[TraceEvent, ...] = ()
    dropped: int = 0
    series: Dict[str, List[TimelinePoint]] = field(default_factory=dict)
    snapshot: Dict[str, float] = field(default_factory=dict)
    #: Full Prometheus text-format exposition of the final registry
    #: state (keeps histogram buckets, which the scalar snapshot
    #: flattens away).
    prom: str = ""
    #: Frozen report of the streaming SLO layer (windowed quantiles,
    #: burn-rate alert log, exemplars) — ``None`` unless the run set
    #: ``SloConfig(enabled=True)``.
    live: Optional[LiveReport] = None

    def export_prometheus(self, path: str) -> None:
        """Write the Prometheus text-format snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.prom)

    def export_trace_jsonl(self, sink: Union[str, TextIO]) -> int:
        """Write the trace as JSON Lines; returns lines written."""
        return export_trace_jsonl(self.events, sink)

    def export_series_jsonl(self, sink: Union[str, TextIO]) -> int:
        """Write the sampled metric series as JSON Lines."""
        return export_series_jsonl(self.series, sink)

    def decompose(self) -> List[Dict[str, object]]:
        """Per-attempt latency decompositions rebuilt from the events."""
        return decompose_attempts(self.events)

    def per_server(self) -> Dict[int, Dict[str, float]]:
        """Mean queue/service/network per replica, from the trace."""
        return per_server_decomposition(self.events)

    def dashboard(self, title: str = "trace") -> str:
        """Render the terminal dashboard for this run."""
        return render_dashboard(
            self.events, snapshot=self.snapshot, dropped=self.dropped,
            title=title,
        )

    def critical_paths(self) -> List[CriticalPath]:
        """Per-logical-request critical paths rebuilt from the events."""
        return critical_paths(self.events)

    def tail_report(
        self,
        pct: float = 99.0,
        phases: Optional[Sequence[Tuple[str, float, float]]] = None,
        top: int = 8,
    ) -> TailReport:
        """Ranked "why is p99 high" attribution (see
        :func:`repro.obs.attribution.tail_report`)."""
        return tail_report(self.events, pct=pct, phases=phases, top=top)

    def fanout_report(self) -> FanoutReport:
        """Per-shard critical-path tally for scatter-gather runs (see
        :func:`repro.obs.attribution.fanout_report`)."""
        return fanout_report(self.events)

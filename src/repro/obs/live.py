"""Streaming observability: windowed sketches, SLO burn-rate alerting,
and exemplar capture (``repro.obs.live``).

Everything else in :mod:`repro.obs` is post-hoc: statistics computed
from a full-run snapshot after the harness stops. :class:`LiveObs` is
the streaming counterpart — it watches the run *while it serves*,
clocked entirely by the timestamps the caller passes in, so the same
object runs identically under the live harness (wall clock) and the
simulator (virtual time), and across threaded and process transports
(process replicas forward their events through
:mod:`repro.obs.forward`; the parent's completion path feeds this
class exactly as the threaded one does).

Three cooperating pieces:

1. **Windowed sketches** — time is cut into fixed windows anchored at
   :meth:`LiveObs.set_origin`. Each completion feeds an
   :class:`~repro.stats.HdrHistogram` for the current window plus
   cumulative per-replica and per-request-class sketches, so
   p50/p95/p99/p99.9 are available per window, sliding (last
   ``slow_windows`` windows merged), and cumulative — no end-of-run
   snapshot required.
2. **SLO burn-rate monitor** — multi-window, multi-burn-rate alerting
   in the SRE mold. The SLO declares a latency target and an
   objective (e.g. 99% of requests under 100 ms); *burn rate* is the
   observed bad fraction divided by the error budget
   (``1 - objective``). An alert fires only when BOTH the fast
   horizon (quick detection) and the slow horizon (sustained damage)
   burn faster than their thresholds, and clears with hysteresis at
   ``clear_factor`` of those thresholds — so a burn rate that
   hovers at the threshold cannot flap. Transitions emit
   ``slo_burn`` / ``slo_clear`` trace events and append to an
   :class:`AlertLog` that experiments consult directly.

   Budget accounting is *send-anchored*: per window,
   ``bad = max(sent - good, 0)`` over ``total = max(sent, good, 1)``.
   A stalled replica completes almost nothing — a completion-counted
   bad fraction would paradoxically stay low — but its queued,
   never-finishing work shows up as sends without matching good
   completions and burns budget immediately. Each request burns
   budget at most once (in the window it was sent).
3. **Exemplar capture** — a seeded reservoir of the slowest requests
   per window, each retaining its full timestamp chain
   (:class:`~repro.core.request.RequestRecord`). Ties break on a
   seeded RNG draw, so the selection is deterministic per seed in the
   single-threaded simulator.

Disabled cost is structurally zero: with ``slo.enabled`` False the
harness constructs no ``LiveObs`` at all and the hot paths guard with
one ``is None`` test — the same bar the tracer and health layers meet.
"""

from __future__ import annotations

import heapq
import math
import random
import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import SloConfig
from ..stats import HdrHistogram

__all__ = [
    "QUANTILE_LABELS",
    "Exemplar",
    "AlertEvent",
    "AlertLog",
    "BurnRateMonitor",
    "WindowSnapshot",
    "LiveReport",
    "LiveObs",
]

#: Reported quantiles, as (label, percentile) pairs.
QUANTILE_LABELS: Tuple[Tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p95", 95.0),
    ("p99", 99.0),
    ("p99.9", 99.9),
)


def _quantiles(hist: Optional[HdrHistogram]) -> Dict[str, float]:
    if hist is None or hist.total_count == 0:
        return {}
    return {label: hist.percentile(pct) for label, pct in QUANTILE_LABELS}


@dataclass(frozen=True)
class Exemplar:
    """One captured slow request: identity plus its full stamp chain."""

    window_index: int
    sojourn: float
    server_id: int
    generated_at: float
    request_class: Optional[str]
    logical_id: Optional[int]
    attempt: int
    record: object  # RequestRecord — the full timestamp chain


@dataclass(frozen=True)
class AlertEvent:
    """One burn-rate alert transition."""

    kind: str  # "fire" | "clear"
    ts: float  # window boundary where the transition was evaluated
    window_index: int
    fast_burn: float
    slow_burn: float


class AlertLog:
    """Ordered record of burn-rate alert transitions for one run."""

    def __init__(self) -> None:
        self._events: List[AlertEvent] = []

    def append(self, event: AlertEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> Tuple[AlertEvent, ...]:
        return tuple(self._events)

    def fires(self) -> Tuple[AlertEvent, ...]:
        return tuple(e for e in self._events if e.kind == "fire")

    def clears(self) -> Tuple[AlertEvent, ...]:
        return tuple(e for e in self._events if e.kind == "clear")

    @property
    def first_fire_at(self) -> Optional[float]:
        fires = self.fires()
        return fires[0].ts if fires else None

    def active_at(self, ts: float) -> bool:
        """Whether the alert was in the fired state at instant ``ts``."""
        active = False
        for event in self._events:
            if event.ts > ts:
                break
            active = event.kind == "fire"
        return active

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AlertLog({len(self._events)} transitions)"


class BurnRateMonitor:
    """Multi-window multi-burn-rate evaluator over per-window tallies.

    Fed one ``(good, bad, total)`` tally per *completed* window, in
    order. Fires when both the fast-horizon and slow-horizon burn
    rates exceed their thresholds; clears with hysteresis at
    ``clear_factor`` of the thresholds. Between the two bands the
    state holds — that dead zone is what prevents flapping when the
    burn rate sits exactly at a threshold.
    """

    def __init__(self, config: SloConfig, tracer=None) -> None:
        self._config = config
        self._tracer = tracer
        # (good, bad, total) per window, newest last.
        self._tallies: deque = deque(maxlen=config.slow_windows)
        self.active = False
        self.fast_burn = 0.0
        self.slow_burn = 0.0
        self.log = AlertLog()

    def _burn(self, horizon: int) -> float:
        recent = list(self._tallies)[-horizon:]
        bad = sum(t[1] for t in recent)
        total = sum(t[2] for t in recent)
        if total <= 0:
            return 0.0
        return (bad / total) / self._config.error_budget

    def push(
        self, good: int, bad: int, total: int,
        window_index: int, window_end: float,
    ) -> Optional[AlertEvent]:
        """Absorb one completed window; return the transition, if any."""
        cfg = self._config
        self._tallies.append((good, bad, total))
        self.fast_burn = self._burn(cfg.fast_windows)
        self.slow_burn = self._burn(cfg.slow_windows)
        event: Optional[AlertEvent] = None
        if (
            not self.active
            and self.fast_burn >= cfg.fast_burn
            and self.slow_burn >= cfg.slow_burn
        ):
            self.active = True
            event = AlertEvent(
                "fire", window_end, window_index,
                self.fast_burn, self.slow_burn,
            )
        elif (
            self.active
            and self.fast_burn <= cfg.clear_factor * cfg.fast_burn
            and self.slow_burn <= cfg.clear_factor * cfg.slow_burn
        ):
            self.active = False
            event = AlertEvent(
                "clear", window_end, window_index,
                self.fast_burn, self.slow_burn,
            )
        if event is not None:
            self.log.append(event)
            if self._tracer is not None:
                self._tracer.emit(
                    "slo_burn" if event.kind == "fire" else "slo_clear",
                    window_end, value=self.fast_burn,
                )
        return event


@dataclass(frozen=True)
class WindowSnapshot:
    """Closed-window tally: counts, quantiles, and captured exemplars.

    ``partial`` marks the trailing snapshot :meth:`LiveObs.finish`
    takes of the still-open window; partial windows never feed the
    burn-rate monitor (their tallies would under-count).
    """

    index: int
    start: float
    end: float
    sent: int
    completed: int
    good: int
    bad: int
    quantiles: Dict[str, float]
    fast_burn: float
    slow_burn: float
    exemplars: Tuple[Exemplar, ...]
    partial: bool = False

    @property
    def bad_fraction(self) -> float:
        total = max(self.sent, self.good, 1)
        return self.bad / total


@dataclass(frozen=True)
class LiveReport:
    """Frozen end-of-run view of the streaming layer.

    Carried on :class:`~repro.obs.ObsResult` as ``.live`` when the run
    enabled SLO monitoring; ``None`` otherwise.
    """

    config: SloConfig
    windows: Tuple[WindowSnapshot, ...]
    alerts: AlertLog
    quantiles: Dict[str, float]
    sliding: Dict[str, float]
    per_server: Dict[int, Dict[str, float]]
    per_class: Dict[str, Dict[str, float]]
    sent: int
    completed: int
    good: int
    bad: int
    elapsed: float = 0.0

    @property
    def exemplars(self) -> Tuple[Exemplar, ...]:
        """All captured exemplars, in window order."""
        return tuple(e for w in self.windows for e in w.exemplars)

    @property
    def attainment(self) -> float:
        """Fraction of send-anchored budget units that met the SLO."""
        total = max(self.sent, self.good, 1)
        return 1.0 - self.bad / total

    def describe(self) -> str:
        cfg = self.config
        lines = [
            f"SLO: {cfg.objective:.1%} of requests under "
            f"{cfg.target * 1e3:.1f} ms "
            f"(error budget {cfg.error_budget:.2%})",
            f"windows: {len(self.windows)} x {cfg.window:g}s, "
            f"sent={self.sent} completed={self.completed} "
            f"good={self.good} bad={self.bad} "
            f"(attainment {self.attainment:.2%})",
        ]
        if self.quantiles:
            qs = "  ".join(
                f"{label}={self.quantiles[label] * 1e3:.2f}ms"
                for label, _ in QUANTILE_LABELS
                if label in self.quantiles
            )
            lines.append(f"cumulative latency: {qs}")
        fires, clears = self.alerts.fires(), self.alerts.clears()
        if fires:
            lines.append(
                f"alerts: {len(fires)} fire(s), {len(clears)} clear(s); "
                f"first fire at t={fires[0].ts:g}s "
                f"(fast burn {fires[0].fast_burn:.1f}x budget)"
            )
        else:
            lines.append("alerts: none fired")
        return "\n".join(lines)


class _WindowAccumulator:
    """Mutable state of the currently open window."""

    __slots__ = ("sent", "completed", "good", "hist", "heap", "seq")

    def __init__(self) -> None:
        self.sent = 0
        self.completed = 0
        self.good = 0
        self.hist: Optional[HdrHistogram] = None
        # Min-heap of (sojourn, tiebreak, seq, exemplar): the root is
        # the *least* slow retained request, evicted first.
        self.heap: List[Tuple[float, float, int, Exemplar]] = []
        self.seq = 0


class LiveObs:
    """Streaming SLO engine fed from the completion hook.

    Clocked purely by caller-passed timestamps — no wall-clock reads —
    so the identical object serves the live harness and the virtual-
    time simulator. One internal lock makes the live (multi-threaded)
    feed safe; the simulator's single-threaded feed pays an
    uncontended acquire.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.SloConfig` (must be enabled).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; alert transitions
        emit ``slo_burn``/``slo_clear`` events into it.
    seed:
        Seeds the exemplar-reservoir tie-break RNG.
    """

    def __init__(self, config: SloConfig, tracer=None, seed: int = 0) -> None:
        if not config.enabled:
            raise ValueError(
                "LiveObs requires SloConfig(enabled=True) — a disabled run "
                "must not construct the streaming layer at all"
            )
        self._config = config
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._origin: Optional[float] = None
        self._index = 0
        self._win = _WindowAccumulator()
        self._windows: List[WindowSnapshot] = []
        # Last slow_windows closed-window hists, for sliding quantiles.
        self._recent: deque = deque(maxlen=config.slow_windows)
        self.monitor = BurnRateMonitor(config, tracer=tracer)
        self._cumulative = HdrHistogram()
        self._per_server: Dict[int, HdrHistogram] = {}
        self._per_class: Dict[str, HdrHistogram] = {}
        self._sent = 0
        self._completed = 0
        self._good = 0
        self._bad = 0
        # Optional registry mirrors (None unless register_metrics ran).
        self._metric_overall = None
        self._metric_server: Dict[int, object] = {}
        self._registry = None

    # -- wiring --------------------------------------------------------
    def set_origin(self, ts: float) -> None:
        """Anchor window boundaries at ``ts`` (run start).

        The simulator passes ``0.0``; the harness passes its start
        instant. Deterministic boundaries are what let experiments
        align fault onsets to windows and assert alert timing.
        """
        with self._lock:
            if self._origin is not None:
                raise RuntimeError("origin already set")
            self._origin = ts

    def register_metrics(self, registry) -> None:
        """Mirror the stream into a :class:`MetricsRegistry`.

        Registers a cumulative ``tb_latency_live_seconds``
        :class:`~repro.obs.metrics.HdrSketch` (overall + per replica,
        created lazily as replicas appear) and burn-rate gauges backed
        by the monitor, so the existing sampler time-series machinery
        picks the SLO state up with no extra plumbing.
        """
        with self._lock:
            self._registry = registry
            self._metric_overall = registry.hdr(
                "tb_latency_live_seconds",
                help="Streaming sojourn-time sketch (live SLO engine)",
            )
            monitor = self.monitor
            registry.gauge(
                "tb_slo_fast_burn",
                help="Fast-horizon SLO burn rate (multiples of budget)",
                fn=lambda: monitor.fast_burn,
            )
            registry.gauge(
                "tb_slo_slow_burn",
                help="Slow-horizon SLO burn rate (multiples of budget)",
                fn=lambda: monitor.slow_burn,
            )
            registry.gauge(
                "tb_slo_alert_active",
                help="1 while the burn-rate alert is firing",
                fn=lambda: 1.0 if monitor.active else 0.0,
            )

    # -- window machinery ----------------------------------------------
    def _window_index(self, ts: float) -> int:
        # Epsilon absorbs float noise at exact boundaries; late events
        # (ts before the open window, possible under live threading)
        # clamp into the open window rather than rewriting history.
        idx = int(math.floor((ts - self._origin) / self._config.window + 1e-9))
        return max(idx, self._index)

    def _rotate_to(self, target: int) -> None:
        """Close windows until ``target`` is the open one."""
        while self._index < target:
            self._close_window(partial=False)
            self._index += 1
            self._win = _WindowAccumulator()

    def _close_window(self, partial: bool, end_ts: Optional[float] = None
                      ) -> None:
        cfg = self._config
        win = self._win
        start = self._origin + self._index * cfg.window
        end = start + cfg.window if end_ts is None else end_ts
        bad = max(win.sent - win.good, 0)
        total = max(win.sent, win.good, 1)
        self._bad += bad
        if not partial:
            self.monitor.push(win.good, bad, total, self._index, end)
            self._recent.append(win.hist)
        # Slowest first; the seeded tie-break decides equal sojourns.
        exemplars = tuple(
            entry[3]
            for entry in sorted(
                win.heap, key=lambda e: (-e[0], e[1], e[2])
            )
        )
        self._windows.append(
            WindowSnapshot(
                index=self._index,
                start=start,
                end=end,
                sent=win.sent,
                completed=win.completed,
                good=win.good,
                bad=bad,
                quantiles=_quantiles(win.hist),
                fast_burn=self.monitor.fast_burn,
                slow_burn=self.monitor.slow_burn,
                exemplars=exemplars,
                partial=partial,
            )
        )

    def _advance(self, ts: float) -> None:
        if self._origin is None:
            self._origin = ts
        self._rotate_to(self._window_index(ts))

    # -- hot-path feeds ------------------------------------------------
    def observe_sent(self, ts: float) -> None:
        """Count one dispatched attempt (the send-anchored budget unit)."""
        with self._lock:
            self._advance(ts)
            self._win.sent += 1
            self._sent += 1

    def observe(self, request) -> None:
        """Absorb one completed (or rejected) attempt.

        Called from the transport's completion path (live, threaded or
        process) and the simulated server's response path — the same
        places the health layer taps.
        """
        cfg = self._config
        with self._lock:
            ts = request.response_received_at
            if ts is None:
                ts = request.generated_at
            self._advance(ts)
            win = self._win
            win.completed += 1
            self._completed += 1
            record = request.finish(partial=True)
            if not record.complete:
                return
            sojourn = record.sojourn_time
            good = (
                request.error is None
                and not record.shed
                and sojourn <= cfg.target
                and (request.deadline is None or ts <= request.deadline)
            )
            if good:
                win.good += 1
                self._good += 1
            if win.hist is None:
                win.hist = HdrHistogram()
            win.hist.record(sojourn)
            self._cumulative.record(sojourn)
            server_id = record.server_id
            per_server = self._per_server.get(server_id)
            if per_server is None:
                per_server = self._per_server[server_id] = HdrHistogram()
            per_server.record(sojourn)
            if record.request_class is not None:
                per_class = self._per_class.get(record.request_class)
                if per_class is None:
                    per_class = HdrHistogram()
                    self._per_class[record.request_class] = per_class
                per_class.record(sojourn)
            if self._metric_overall is not None:
                self._metric_overall.observe(sojourn)
                sketch = self._metric_server.get(server_id)
                if sketch is None:
                    sketch = self._registry.hdr(
                        "tb_latency_live_seconds",
                        help="Streaming sojourn-time sketch (live SLO "
                             "engine)",
                        server=str(server_id),
                    )
                    self._metric_server[server_id] = sketch
                sketch.observe(sojourn)
            # Exemplar reservoir: top-N slowest this window. One RNG
            # draw per complete observation keeps consumption — and so
            # the per-seed selection — independent of heap state.
            tiebreak = self._rng.random()
            heap = win.heap
            if len(heap) < cfg.exemplars_per_window or (
                (sojourn, tiebreak) > (heap[0][0], heap[0][1])
            ):
                exemplar = Exemplar(
                    window_index=self._index,
                    sojourn=sojourn,
                    server_id=server_id,
                    generated_at=record.generated_at,
                    request_class=record.request_class,
                    logical_id=record.logical_id,
                    attempt=record.attempt,
                    record=record,
                )
                entry = (sojourn, tiebreak, win.seq, exemplar)
                win.seq += 1
                if len(heap) < cfg.exemplars_per_window:
                    heapq.heappush(heap, entry)
                else:
                    heapq.heapreplace(heap, entry)

    # -- teardown ------------------------------------------------------
    def finish(self, now: float) -> LiveReport:
        """Close out the stream and freeze the report.

        Full windows before ``now`` are rotated (and fed to the
        monitor); the still-open window, if it saw any traffic,
        becomes a trailing *partial* snapshot that the monitor never
        sees.
        """
        with self._lock:
            if self._origin is None:
                self._origin = 0.0
            self._rotate_to(self._window_index(now))
            win = self._win
            if win.sent or win.completed:
                self._close_window(partial=True, end_ts=now)
            sliding = HdrHistogram()
            for hist in self._recent:
                if hist is not None:
                    sliding.merge(hist)
            return LiveReport(
                config=self._config,
                windows=tuple(self._windows),
                alerts=self.monitor.log,
                quantiles=_quantiles(self._cumulative),
                sliding=_quantiles(sliding),
                per_server={
                    sid: _quantiles(hist)
                    for sid, hist in sorted(self._per_server.items())
                },
                per_class={
                    name: _quantiles(hist)
                    for name, hist in sorted(self._per_class.items())
                },
                sent=self._sent,
                completed=self._completed,
                good=self._good,
                bad=self._bad,
                elapsed=max(0.0, now - self._origin),
            )

"""Live metrics: Counter / Gauge / Histogram primitives and a registry.

The registry instruments the harness's hot paths — per-replica queue
depth, worker busy fraction, in-flight count, shed/retry/hedge rates,
send-delay drift — and a background :class:`MetricsSampler` turns the
instantaneous values into per-run time series
(:class:`~repro.core.collector.TimelinePoint` lists, one per metric).

Design constraints, in order:

1. **Zero cost when off.** Nothing here is constructed unless the run
   enables observability; instrumented call sites guard with a single
   ``is None`` test.
2. **Cheap when on.** Counters/gauges are plain attribute updates
   (atomic enough under the GIL for monitoring purposes — these feed
   dashboards, not invariants); histograms bucket with ``bisect``.
3. **Sampled, not logged.** Hot paths never append to unbounded lists;
   the sampler thread (or, in virtual time, a recurring simulator
   event) reads the registry at a fixed cadence.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.collector import TimelinePoint

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HdrSketch",
    "MetricsRegistry",
    "MetricsSampler",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): log-spaced 10us .. 10s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)


def _full_name(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count of events."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "_value")

    def __init__(self, name: str, help: str = "", **labels: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    @property
    def full_name(self) -> str:
        return _full_name(self.name, self.labels)


class Gauge:
    """Instantaneous value: set directly, or backed by a callback.

    A callback gauge (``fn=``) evaluates lazily at read time, which is
    how existing counters (queue depths, transport stats, fault
    tallies) become metrics without touching their hot paths at all.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    def add(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    @property
    def full_name(self) -> str:
        return _full_name(self.name, self.labels)


class Histogram:
    """Fixed-bucket latency histogram (Prometheus-style cumulative).

    Tracks per-bucket counts plus total count and sum, so rates and
    means fall out; :meth:`quantile` interpolates within the winning
    bucket (coarse by design — use the stats collector's HDR
    histograms for publication-grade percentiles).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "buckets", "counts", "count", "sum")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 = +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def value(self) -> float:
        """Mean observation (the sampler's scalar view of a histogram)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                return self.buckets[i]
        return self.buckets[-1]

    @property
    def full_name(self) -> str:
        return _full_name(self.name, self.labels)


class HdrSketch:
    """High-dynamic-range latency sketch backed by ``HdrHistogram``.

    Unlike :class:`Histogram`, bucket edges are log-spaced at a fixed
    relative precision rather than hand-picked, so p99/p99.9 are
    recoverable downstream without choosing buckets in advance. The
    Prometheus exporter renders the populated buckets cumulatively
    (see :func:`~repro.obs.exporters.prometheus_text`).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "hist")

    def __init__(self, name: str, help: str = "", **labels: str) -> None:
        from ..stats import HdrHistogram

        self.name = name
        self.labels = labels
        self.help = help
        self.hist = HdrHistogram()

    def observe(self, value: float) -> None:
        self.hist.record(value)

    def quantile(self, q: float) -> float:
        """q-quantile (q in [0, 1]) at the sketch's bucket precision."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.hist.total_count == 0:
            return 0.0
        return self.hist.percentile(q * 100.0)

    @property
    def count(self) -> int:
        return self.hist.total_count

    @property
    def sum(self) -> float:
        return self.hist.mean * self.hist.total_count

    @property
    def value(self) -> float:
        """Mean observation (the sampler's scalar view of a sketch)."""
        return self.hist.mean if self.hist.total_count else 0.0

    @property
    def full_name(self) -> str:
        return _full_name(self.name, self.labels)


class MetricsRegistry:
    """Named collection of metrics for one run.

    Registration is locked (it happens at setup time); reads and hot
    updates are lock-free. ``counter``/``gauge``/``histogram`` are
    get-or-create, so instrumentation points can be wired
    independently.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labels: Dict,
                       **kwargs):
        key = _full_name(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, **kwargs, **labels)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def hdr(self, name: str, help: str = "", **labels: str) -> HdrSketch:
        return self._get_or_create(HdrSketch, name, help, labels)

    def metrics(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> Dict[str, float]:
        """Current scalar value of every metric, keyed by full name."""
        return {m.full_name: m.value for m in self.metrics()}


class MetricsSampler:
    """Background ticker turning registry values into time series.

    Live mode: a daemon thread samples every ``interval`` seconds of
    wall time. (The simulator does not use this class — it schedules
    the same :meth:`sample` body as a recurring virtual-time event, so
    both modes produce identical series shapes.)
    """

    def __init__(self, registry: MetricsRegistry, clock,
                 interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._registry = registry
        self._clock = clock
        self._interval = interval
        self._series: Dict[str, List[TimelinePoint]] = {}
        self._n_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample(self, now: Optional[float] = None) -> None:
        """Record one sample of every registered metric."""
        ts = self._clock.now() if now is None else now
        self._n_samples += 1
        for metric in self._registry.metrics():
            self._series.setdefault(metric.full_name, []).append(
                TimelinePoint(
                    ts, self._n_samples, metric.value,
                    metric=metric.full_name,
                )
            )

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._thread = threading.Thread(
            target=self._loop, name="tb-metrics-sampler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.sample()  # final sample so short runs still get a point

    @property
    def series(self) -> Dict[str, List[TimelinePoint]]:
        return {name: list(points) for name, points in self._series.items()}

"""Trace analysis and terminal dashboard for ``tailbench trace``.

Answers the methodology's core question — *where does the tail come
from?* — directly from a trace: per percentile band of sojourn time,
how much of the latency was client-side send lag, retry/hedge
overhead, wire transit, queueing, batch-formation wait, and actual
service (Sec. V's decomposition, recomputed from events rather than
from the collector's aggregates, so the two can be cross-checked
against each other).

Rows come from :func:`~repro.obs.attribution.critical_paths`, so
retried/hedged logical requests contribute their *winning* path (with
the failed attempts' cost visible as ``retry_overhead``) and batched
runs split replica wait into head-of-line ``queue`` vs ``batch_wait``.
The two batching/resilience columns only render when the trace
actually contains such work, keeping the classic four-column view for
plain runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..stats import format_latency
from .attribution import COMPONENTS, critical_paths
from .trace import TraceEvent

__all__ = [
    "BandBreakdown",
    "breakdown_by_band",
    "per_server_decomposition",
    "render_dashboard",
]

#: Default sojourn-percentile bands: body, shoulder, tail, extreme tail.
DEFAULT_BANDS: Tuple[Tuple[float, float], ...] = (
    (0.0, 50.0),
    (50.0, 90.0),
    (90.0, 99.0),
    (99.0, 100.0),
)

_COMPONENTS = COMPONENTS  # send_lag, retry_overhead, network, queue,
#                           batch_wait, service — see obs.attribution.

#: Components that only appear in the rendered table when nonzero
#: somewhere in the trace (batching/resilience may be off).
_OPTIONAL_COMPONENTS = ("retry_overhead", "batch_wait")


class BandBreakdown:
    """Mean latency components over one sojourn-percentile band."""

    __slots__ = ("lo", "hi", "count", "sojourn", "components")

    def __init__(
        self,
        lo: float,
        hi: float,
        count: int,
        sojourn: float,
        components: Dict[str, float],
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.count = count
        self.sojourn = sojourn
        self.components = components


def _complete_rows(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for path in critical_paths(events):
        row: Dict[str, object] = dict(path.components)
        row["sojourn"] = path.sojourn
        row["server_id"] = path.server_id
        rows.append(row)
    return rows


def breakdown_by_band(
    events: Sequence[TraceEvent],
    bands: Sequence[Tuple[float, float]] = DEFAULT_BANDS,
) -> List[BandBreakdown]:
    """Queueing-vs-service decomposition per sojourn-percentile band.

    Logical requests are ranked by critical-path sojourn; each band
    ``(lo, hi)`` covers that percentile slice and reports the mean of
    every latency component inside it. Requests with no winning path
    (shed/dropped/failed) have no sojourn and are excluded — they are
    visible in the trace as ``shed``/``fault_drop`` events instead.
    """
    rows = _complete_rows(events)
    rows.sort(key=lambda r: r["sojourn"])
    out: List[BandBreakdown] = []
    n = len(rows)
    for lo, hi in bands:
        start = int(n * lo / 100.0)
        end = max(int(n * hi / 100.0), start)
        band_rows = rows[start:end]
        if not band_rows:
            out.append(BandBreakdown(lo, hi, 0, 0.0, dict.fromkeys(_COMPONENTS, 0.0)))
            continue
        k = len(band_rows)
        components = {
            c: sum(r[c] for r in band_rows) / k for c in _COMPONENTS
        }
        sojourn = sum(r["sojourn"] for r in band_rows) / k
        out.append(BandBreakdown(lo, hi, k, sojourn, components))
    return out


def per_server_decomposition(
    events: Sequence[TraceEvent],
) -> Dict[int, Dict[str, float]]:
    """Mean queue/service/network per replica, recomputed from events.

    This is the cross-check the acceptance criteria ask for: the same
    numbers the :class:`~repro.core.collector.StatsCollector` reports
    per server, rebuilt purely from the trace stream.
    """
    per_server: Dict[int, List[Dict[str, object]]] = {}
    for row in _complete_rows(events):
        server_id = row["server_id"]
        if server_id is None:
            server_id = 0
        per_server.setdefault(server_id, []).append(row)
    out: Dict[int, Dict[str, float]] = {}
    for server_id, rows in sorted(per_server.items()):
        k = len(rows)
        summary = {c: sum(r[c] for r in rows) / k for c in _COMPONENTS}
        summary["sojourn"] = sum(r["sojourn"] for r in rows) / k
        summary["count"] = float(k)
        out[server_id] = summary
    return out


def render_dashboard(
    events: Sequence[TraceEvent],
    snapshot: Optional[Dict[str, float]] = None,
    dropped: int = 0,
    title: str = "trace",
) -> str:
    """Render the summary dashboard ``tailbench trace`` prints."""
    lines: List[str] = [f"== {title} =="]
    rows = _complete_rows(events)
    lines.append(
        f"events={len(events)} attempts_reconstructed={len(rows)} "
        f"ring_dropped={dropped}"
    )

    if rows:
        breakdowns = breakdown_by_band(events)
        # Batching/resilience columns render only when that machinery
        # actually contributed time somewhere in the trace.
        shown = ["send_lag", "network", "queue", "service"]
        for extra in _OPTIONAL_COMPONENTS:
            if any(b.components.get(extra, 0.0) > 0.0 for b in breakdowns):
                shown.append(extra)
        headers = {
            "send_lag": "send", "retry_overhead": "retry",
            "network": "network", "queue": "queue",
            "batch_wait": "batch", "service": "service",
        }
        lines.append("")
        lines.append("latency decomposition by sojourn percentile band:")
        header = f"  {'band':>10s} {'n':>6s} {'sojourn':>9s}"
        for comp in shown:
            header += f" {headers[comp]:>9s}"
        header += f" {'queue%':>7s}"
        lines.append(header)
        for band in breakdowns:
            if band.count == 0:
                continue
            c = band.components
            queue_frac = (
                100.0 * c["queue"] / band.sojourn if band.sojourn > 0 else 0.0
            )
            label = f"p{band.lo:g}-p{band.hi:g}"
            line = (
                f"  {label:>10s} {band.count:>6d} "
                f"{format_latency(band.sojourn):>9s}"
            )
            for comp in shown:
                line += f" {format_latency(c[comp]):>9s}"
            line += f" {queue_frac:>6.1f}%"
            lines.append(line)
        per_server = per_server_decomposition(events)
        if len(per_server) > 1:
            lines.append("")
            lines.append("per-replica decomposition:")
            for server_id, summary in per_server.items():
                lines.append(
                    f"  server[{server_id}] n={int(summary['count'])} "
                    f"queue={format_latency(summary['queue'])} "
                    f"service={format_latency(summary['service'])} "
                    f"network={format_latency(summary['network'])} "
                    f"sojourn={format_latency(summary['sojourn'])}"
                )

    counts: Dict[str, int] = {}
    for event in events:
        if event.kind in ("retry", "hedge", "shed", "error", "late",
                          "slo_burn", "slo_clear") or (
            event.kind.startswith("fault_")
        ):
            counts[event.kind] = counts.get(event.kind, 0) + 1
    if counts:
        lines.append("")
        lines.append(
            "events: "
            + " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )

    if snapshot:
        lines.append("")
        lines.append("metrics snapshot:")
        for name in sorted(snapshot):
            lines.append(f"  {name} = {snapshot[name]:g}")
    return "\n".join(lines)

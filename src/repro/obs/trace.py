"""Request-lifecycle event tracer.

Every logical request moving through the harness (or the simulator —
both emit the identical schema) leaves a trail of :class:`TraceEvent`
records::

    generated -> sent -> enqueued -> service_start -> service_end -> received

plus point events for everything that happens *around* the lifecycle:
``retry`` / ``hedge`` sends, ``shed`` rejections, ``error`` responses,
``late`` arrivals, and ``fault_*`` injections. Events carry
``logical_id`` / ``attempt`` / ``server_id``, so retries and hedges of
one logical request can be stitched back together, and every event can
be attributed to the replica the balancer chose.

The tracer is built for hot paths: one bounded ring buffer
(``collections.deque(maxlen=...)``, whose appends are atomic under the
GIL), no locks on the emit path, and a monotone emit counter so
overflow is *reported* (``dropped`` = oldest events evicted), never
silent. With tracing disabled the harness holds no tracer at all —
the hot-path cost is a single ``is None`` test.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "LIFECYCLE_EVENTS",
    "POINT_EVENTS",
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "group_attempts",
    "decompose_attempts",
]

#: Lifecycle span edges, in chain order, paired with the Request
#: attribute each one is stamped from.
LIFECYCLE_EVENTS: Tuple[Tuple[str, str], ...] = (
    ("generated", "generated_at"),
    ("sent", "sent_at"),
    ("enqueued", "enqueued_at"),
    ("service_start", "service_start_at"),
    ("service_end", "service_end_at"),
    ("received", "response_received_at"),
)

#: Point events: outcomes, recovery/fault markers, control-plane
#: decisions (``admit``/``drop_*`` per arrival at the admission gate,
#: ``limit_update`` on AIMD limit changes, ``scale_*`` on membership
#: actions — see :mod:`repro.control`), and batching markers
#: (``batch_form`` once per member with its ``request_id``,
#: ``batch_start``/``batch_end`` once per batch; all three carry the
#: per-server batch sequence number in ``value``, which is what links
#: a batch to its members — see :mod:`repro.batching`), and health
#: markers (``eject``/``readmit``/``probe`` per replica,
#: ``breaker_*`` state transitions, ``budget_exhausted`` when the
#: retry budget denies a retry — see :mod:`repro.health`), and SLO
#: markers (``slo_burn``/``slo_clear`` on burn-rate alert transitions,
#: carrying the fast-window burn rate in ``value`` — see
#: :mod:`repro.obs.live`), and scatter-gather markers
#: (``fanout_send`` once per shard sub-request at scatter time,
#: ``fanout_gather`` once per logical request when the last shard
#: responds, stamped with the critical — slowest — shard's
#: ``server_id``; both carry the gather sequence number in ``value``,
#: which is what links a gather to its sends — see
#: :mod:`repro.core.fanout`).
POINT_EVENTS: Tuple[str, ...] = (
    "retry",
    "hedge",
    "shed",
    "error",
    "late",
    "discard",
    "fault_drop",
    "fault_delay",
    "fault_duplicate",
    "fault_pause",
    "fault_crash",
    "fault_app_error",
    "admit",
    "drop_codel",
    "drop_limit",
    "limit_update",
    "scale_up",
    "scale_down",
    "batch_form",
    "batch_start",
    "batch_end",
    "eject",
    "readmit",
    "probe",
    "breaker_open",
    "breaker_half_open",
    "breaker_close",
    "budget_exhausted",
    "slo_burn",
    "slo_clear",
    "fanout_send",
    "fanout_gather",
    # Caching tier (repro.cache): one hit-or-miss event per keyed
    # lookup, ``cache_expire`` when a TTL'd entry ages out at lookup
    # (always paired with the miss it becomes), ``cache_evict`` per
    # evicted resident (``value`` = occupancy after the store), and
    # ``cache_clear`` at the cold-restart instant (``value`` = entries
    # dropped).
    "cache_hit",
    "cache_miss",
    "cache_evict",
    "cache_expire",
    "cache_clear",
)

#: Every legal value of ``TraceEvent.kind`` (the JSONL ``event`` field).
EVENT_KINDS = frozenset(name for name, _ in LIFECYCLE_EVENTS) | frozenset(
    POINT_EVENTS
)

_LIFECYCLE_ORDER: Dict[str, int] = {
    name: i for i, (name, _) in enumerate(LIFECYCLE_EVENTS)
}


class TraceEvent:
    """One timestamped event in a request's lifecycle."""

    __slots__ = ("ts", "kind", "logical_id", "request_id", "attempt",
                 "server_id", "value")

    def __init__(
        self,
        ts: float,
        kind: str,
        logical_id: Optional[int] = None,
        request_id: Optional[int] = None,
        attempt: Optional[int] = None,
        server_id: Optional[int] = None,
        value: Optional[float] = None,
    ) -> None:
        self.ts = ts
        self.kind = kind
        self.logical_id = logical_id
        self.request_id = request_id
        self.attempt = attempt
        self.server_id = server_id
        #: Optional numeric payload (e.g. an injected delay in seconds).
        self.value = value

    def as_dict(self) -> Dict[str, object]:
        """JSONL-ready mapping; ``None`` fields are omitted."""
        out: Dict[str, object] = {"ts": self.ts, "event": self.kind}
        for field in ("logical_id", "request_id", "attempt", "server_id",
                      "value"):
            val = getattr(self, field)
            if val is not None:
                out[field] = val
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceEvent(t={self.ts:.6f}, {self.kind}, "
            f"logical={self.logical_id}, attempt={self.attempt}, "
            f"server={self.server_id})"
        )


class Tracer:
    """Bounded, lock-cheap sink for :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Ring-buffer size in events. When full, the *oldest* events are
        evicted; :attr:`dropped` reports exactly how many, so a
        truncated trace is always detectable.
    """

    def __init__(self, capacity: int = 262_144) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        # itertools.count consumption is atomic under the GIL, so the
        # emit counter needs no lock of its own.
        self._emit_counter = itertools.count(1)
        self._last_emitted = 0

    # -- emission (hot path) -------------------------------------------
    def emit(
        self,
        kind: str,
        ts: float,
        logical_id: Optional[int] = None,
        request_id: Optional[int] = None,
        attempt: Optional[int] = None,
        server_id: Optional[int] = None,
        value: Optional[float] = None,
    ) -> None:
        """Append one event to the ring."""
        self._last_emitted = next(self._emit_counter)
        self._ring.append(
            TraceEvent(ts, kind, logical_id, request_id, attempt,
                       server_id, value)
        )

    def record_request(self, request, outcome: Optional[str] = None) -> None:
        """Emit every stamped lifecycle edge of ``request`` at once.

        Called on the completion path, where the whole timestamp chain
        is already stamped on the request — one call covers the six
        span edges instead of instrumenting each hot point separately.
        Unstamped edges (e.g. ``service_start`` of a shed attempt) are
        simply absent, so rejected attempts remain representable.
        ``outcome`` optionally appends a point event (``shed`` /
        ``error`` / ``late`` / ``discard``) at the last known instant.
        """
        logical_id = request.logical_id
        request_id = request.request_id
        attempt = request.attempt
        server_id = request.server_id
        last_ts = request.generated_at
        for kind, attr in LIFECYCLE_EVENTS:
            ts = getattr(request, attr)
            if ts is None:
                continue
            last_ts = ts
            self.emit(kind, ts, logical_id, request_id, attempt, server_id)
        if outcome is not None:
            self.emit(outcome, last_ts, logical_id, request_id, attempt,
                      server_id)

    # -- inspection ----------------------------------------------------
    @property
    def emitted(self) -> int:
        """Total events emitted over the tracer's lifetime."""
        return self._last_emitted

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (0 = the trace is complete)."""
        return max(0, self._last_emitted - len(self._ring))

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> Tuple[TraceEvent, ...]:
        """Snapshot of the retained events, oldest first."""
        return tuple(self._ring)


def _attempt_key(event: TraceEvent) -> Tuple[str, int, int]:
    """Identity of the attempt an event belongs to.

    Resilient runs stamp ``logical_id`` on every attempt, so retries
    and hedges of one logical request group by ``(logical_id,
    attempt)``. Plain runs have no logical ids; there each request IS
    its only attempt, so ``request_id`` identifies it.
    """
    if event.logical_id is not None:
        return ("l", event.logical_id, event.attempt or 0)
    return ("r", event.request_id if event.request_id is not None else -1,
            event.attempt or 0)


def group_attempts(
    events: Iterable[TraceEvent],
) -> Dict[Tuple[str, int, int], List[TraceEvent]]:
    """Group lifecycle events by attempt (see :func:`_attempt_key`).

    Events within each group come back in chain order (the ring
    preserves emit order; a completion emits its chain in order, so no
    re-sort is needed — but we sort defensively by (ts, chain index)
    in case point events interleave).
    """
    groups: Dict[Tuple[str, int, int], List[TraceEvent]] = {}
    for event in events:
        if event.kind not in _LIFECYCLE_ORDER:
            continue
        groups.setdefault(_attempt_key(event), []).append(event)
    for group in groups.values():
        group.sort(key=lambda e: (e.ts, _LIFECYCLE_ORDER[e.kind]))
    return groups


def decompose_attempts(
    events: Iterable[TraceEvent],
) -> List[Dict[str, object]]:
    """Rebuild per-attempt latency decompositions from raw events.

    For every attempt with at least ``generated`` and ``sent`` edges,
    returns a mapping with the attempt identity (``logical_id``,
    ``attempt``, ``server_id``) and whichever components its stamps
    support: ``send_delay``, ``network``, ``queue``, ``service``,
    ``sojourn``. Partial chains (shed or dropped attempts) yield
    partial decompositions — present components only — which is what
    makes traces of rejected work analyzable at all.
    """
    out: List[Dict[str, object]] = []
    for _key, group in sorted(group_attempts(events).items()):
        stamps = {e.kind: e.ts for e in group}
        row: Dict[str, object] = {
            "logical_id": group[0].logical_id,
            "attempt": group[0].attempt or 0,
            "server_id": next(
                (e.server_id for e in group if e.server_id is not None), None
            ),
        }
        gen, sent = stamps.get("generated"), stamps.get("sent")
        enq = stamps.get("enqueued")
        start, end = stamps.get("service_start"), stamps.get("service_end")
        recv = stamps.get("received")
        if gen is not None and sent is not None:
            row["send_delay"] = sent - gen
        if enq is not None and sent is not None:
            network = enq - sent
            if recv is not None and end is not None:
                network += recv - end
            row["network"] = network
        if enq is not None and start is not None:
            row["queue"] = start - enq
        if start is not None and end is not None:
            row["service"] = end - start
        if gen is not None and recv is not None:
            row["sojourn"] = recv - gen
        out.append(row)
    return out

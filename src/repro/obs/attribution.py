"""Tail root-cause attribution: per-request critical paths and the
ranked "why is p99 high" report.

:func:`~repro.obs.trace.decompose_attempts` answers *where one attempt
spent its time*. This module answers the operator's question: over the
whole trace, which component, on which replica, in which phase of the
run, is responsible for the tail?

Two layers:

- :func:`critical_paths` rebuilds each *logical* request's winning
  path from raw trace events and splits its end-to-end sojourn into
  six components that sum exactly to it:

  ========================  ==========================================
  ``send_lag``              first dispatch minus generation — the
                            coordinated-omission backlog at the client
  ``retry_overhead``        winning attempt's dispatch minus the first
                            attempt's — time burned in failed attempts,
                            backoff, and hedge delays
  ``network``               wire transit, both directions
  ``queue``                 head-of-line wait at the replica (batched
                            runs: from the *batch's* last arrival)
  ``batch_wait``            extra wait for the batch to accumulate —
                            own enqueue to the last member's enqueue
  ``service``               application time
  ========================  ==========================================

- :func:`tail_report` ranks (component, replica, phase) cells by
  *excess* time: how much longer tail requests spent in that cell than
  body requests did, times how many tail requests sat there. The top
  of that ranking is the answer ``tailbench tail`` prints. Denial
  events (ejections, breaker opens, exhausted retry budgets, load-shed
  drops) are tallied alongside, since they cost goodput rather than
  latency and would otherwise hide from a time-based ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import TraceEvent, group_attempts

__all__ = [
    "COMPONENTS",
    "DENIAL_KINDS",
    "CriticalPath",
    "FanoutReport",
    "RankedCause",
    "TailReport",
    "critical_paths",
    "fanout_report",
    "tail_report",
]

#: Critical-path components, in chain order; they sum to the sojourn.
COMPONENTS: Tuple[str, ...] = (
    "send_lag",
    "retry_overhead",
    "network",
    "queue",
    "batch_wait",
    "service",
)

#: Point events that deny work instead of delaying it.
DENIAL_KINDS: Tuple[str, ...] = (
    "shed",
    "eject",
    "breaker_open",
    "budget_exhausted",
    "drop_codel",
    "drop_limit",
)

#: Point events that disqualify an attempt from being the winner.
_LOSER_KINDS = frozenset(("late", "shed", "error", "discard"))


@dataclass(frozen=True)
class CriticalPath:
    """One logical request's winning path, decomposed."""

    logical_id: Optional[int]
    request_id: Optional[int]
    attempt: int
    server_id: int
    generated_at: float
    sojourn: float
    components: Dict[str, float]
    n_attempts: int = 1
    batched: bool = False


@dataclass(frozen=True)
class RankedCause:
    """One (component, replica, phase) cell of the tail ranking."""

    component: str
    server_id: int
    phase: str
    count: int            # tail requests hitting this cell
    tail_mean: float      # mean component time among those
    body_mean: float      # same component's mean among body requests
    excess: float         # max(tail_mean - body_mean, 0) * count
    total: float          # tail_mean * count
    share: float          # excess / sum of all excesses


@dataclass(frozen=True)
class TailReport:
    """Ranked tail attribution over one trace."""

    pct: float
    threshold: float              # sojourn at the pct-ile boundary
    n_paths: int
    n_tail: int
    causes: Tuple[RankedCause, ...]
    denials: Dict[Tuple[str, int], int]   # (kind, server_id) -> count
    #: Cache lookups over the whole trace (0/0 when no cache ran).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Tail requests whose winning path hit / missed the cache. A tail
    #: dominated by misses while the body enjoys hits is the cache
    #: shaping the tail — the split ``tailbench tail`` prints.
    tail_cache_hits: int = 0
    tail_cache_misses: int = 0

    def top(self) -> Optional[RankedCause]:
        return self.causes[0] if self.causes else None

    def _cache_line(self) -> Optional[str]:
        looked = self.cache_hits + self.cache_misses
        if not looked:
            return None
        tail_n = self.tail_cache_hits + self.tail_cache_misses
        line = (
            f"  cache: hit_rate={self.cache_hits / looked:.1%} "
            f"({self.cache_hits}/{looked})"
        )
        if tail_n:
            line += (
                f"; tail: {self.tail_cache_hits} hit / "
                f"{self.tail_cache_misses} missed "
                f"(tail hit_rate={self.tail_cache_hits / tail_n:.1%})"
            )
        return line

    def render(self) -> str:
        lines = [
            f"tail attribution (p{self.pct:g}): {self.n_tail} of "
            f"{self.n_paths} requests above "
            f"{self.threshold * 1e3:.2f} ms",
        ]
        if not self.causes:
            lines.append("  (no complete critical paths in trace)")
            cache_line = self._cache_line()
            if cache_line is not None:
                lines.append(cache_line)
            return "\n".join(lines)
        header = (
            f"  {'rank':>4s} {'component':>14s} {'server':>6s} "
            f"{'phase':>10s} {'n':>6s} {'tail-mean':>10s} "
            f"{'body-mean':>10s} {'excess':>9s} {'share':>6s}"
        )
        lines.append(header)
        for i, cause in enumerate(self.causes, start=1):
            lines.append(
                f"  {i:>4d} {cause.component:>14s} {cause.server_id:>6d} "
                f"{cause.phase:>10s} {cause.count:>6d} "
                f"{cause.tail_mean * 1e3:>8.2f}ms "
                f"{cause.body_mean * 1e3:>8.2f}ms "
                f"{cause.excess * 1e3:>7.1f}ms {cause.share:>5.1%}"
            )
        if self.denials:
            parts = [
                f"{kind}[s{sid}]={n}"
                for (kind, sid), n in sorted(self.denials.items())
            ]
            lines.append("  denials: " + " ".join(parts))
        cache_line = self._cache_line()
        if cache_line is not None:
            lines.append(cache_line)
        return "\n".join(lines)


def _logical_key(attempt_key: Tuple[str, int, int]) -> Tuple[str, int]:
    kind, ident, _attempt = attempt_key
    return (kind, ident)


def critical_paths(events: Iterable[TraceEvent]) -> List[CriticalPath]:
    """Rebuild each logical request's winning path from raw events.

    The *winner* is the attempt whose ``received`` edge resolved the
    logical request: the earliest complete arrival not marked
    ``late``/``shed``/``error``/``discard``. Logical requests with no
    winner (every attempt failed, or the chain is truncated) yield no
    path — they surface in :class:`TailReport` denial tallies instead.
    """
    events = list(events)
    groups = group_attempts(events)

    # Attempts disqualified by outcome markers, and the batch each
    # attempt served in: batch_form carries the per-server batch
    # sequence in `value`, which links members together.
    losers = set()
    batch_of: Dict[Tuple[str, int, int], Tuple[int, float]] = {}
    batch_members: Dict[Tuple[int, float], List[Tuple[str, int, int]]] = {}
    for event in events:
        if event.kind in _LOSER_KINDS:
            key = _attempt_key_of(event)
            if key is not None:
                losers.add(key)
        elif event.kind == "batch_form" and event.value is not None:
            key = _attempt_key_of(event)
            if key is not None and event.server_id is not None:
                batch_key = (event.server_id, event.value)
                batch_of[key] = batch_key
                batch_members.setdefault(batch_key, []).append(key)

    # Stamp map per attempt, grouped per logical request.
    stamps: Dict[Tuple[str, int, int], Dict[str, float]] = {
        key: {e.kind: e.ts for e in group} for key, group in groups.items()
    }
    logical: Dict[Tuple[str, int], List[Tuple[str, int, int]]] = {}
    for key in groups:
        logical.setdefault(_logical_key(key), []).append(key)

    out: List[CriticalPath] = []
    for lkey, attempt_keys in sorted(logical.items()):
        candidates = []
        first_sent: Optional[float] = None
        g0: Optional[float] = None
        for key in attempt_keys:
            s = stamps[key]
            if "generated" in s:
                g0 = s["generated"] if g0 is None else min(g0, s["generated"])
            if "sent" in s:
                first_sent = (
                    s["sent"] if first_sent is None
                    else min(first_sent, s["sent"])
                )
            if key in losers:
                continue
            if all(
                k in s
                for k in ("sent", "enqueued", "service_start",
                          "service_end", "received")
            ):
                candidates.append((s["received"], key))
        if not candidates or g0 is None or first_sent is None:
            continue
        _recv, winner = min(candidates)
        s = stamps[winner]
        sent, enq = s["sent"], s["enqueued"]
        start, end, recv = s["service_start"], s["service_end"], s["received"]

        send_lag = max(first_sent - g0, 0.0)
        retry_overhead = max(sent - first_sent, 0.0)
        network = max(enq - sent, 0.0) + max(recv - end, 0.0)
        batch_key = batch_of.get(winner)
        batch_wait = 0.0
        queue_from = enq
        batched = False
        if batch_key is not None:
            member_enqueues = [
                stamps[m]["enqueued"]
                for m in batch_members.get(batch_key, ())
                if "enqueued" in stamps[m]
            ]
            if len(member_enqueues) > 1:
                batched = True
                last_arrival = max(member_enqueues)
                # The span enq -> service_start splits at the batch's
                # last arrival: before it the request is waiting for
                # the batch to fill (batch_wait); after it the formed
                # batch is waiting for a worker (queue).
                batch_wait = max(min(last_arrival, start) - enq, 0.0)
                queue_from = min(max(last_arrival, enq), start)
        queue = max(start - queue_from, 0.0)
        service = max(end - start, 0.0)
        components = {
            "send_lag": send_lag,
            "retry_overhead": retry_overhead,
            "network": network,
            "queue": queue,
            "batch_wait": batch_wait,
            "service": service,
        }
        sojourn = recv - g0
        # Guarantee the invariant the report relies on: components sum
        # exactly to the sojourn. Clamping above can shave float dust;
        # fold any residue into the largest component.
        residue = sojourn - sum(components.values())
        if components and abs(residue) > 0.0:
            top = max(components, key=lambda c: components[c])
            components[top] += residue
        ids = dict(zip(("kind", "ident"), lkey))
        out.append(
            CriticalPath(
                logical_id=ids["ident"] if ids["kind"] == "l" else None,
                request_id=ids["ident"] if ids["kind"] == "r" else None,
                attempt=winner[2],
                server_id=next(
                    (e.server_id for e in groups[winner]
                     if e.server_id is not None), 0
                ),
                generated_at=g0,
                sojourn=sojourn,
                components=components,
                n_attempts=len(attempt_keys),
                batched=batched,
            )
        )
    return out


def _attempt_key_of(event: TraceEvent) -> Optional[Tuple[str, int, int]]:
    if event.logical_id is not None:
        return ("l", event.logical_id, event.attempt or 0)
    if event.request_id is not None:
        return ("r", event.request_id, event.attempt or 0)
    return None


def _phase_of(
    ts: float, phases: Optional[Sequence[Tuple[str, float, float]]]
) -> str:
    if phases:
        for name, start, end in phases:
            if start <= ts < end:
                return name
    return "run"


def tail_report(
    events: Iterable[TraceEvent],
    pct: float = 99.0,
    phases: Optional[Sequence[Tuple[str, float, float]]] = None,
    top: int = 8,
) -> TailReport:
    """Rank (component, replica, phase) cells by tail excess time.

    ``phases`` optionally names time spans of the run as
    ``(name, start, end)`` triples (requests classify by generation
    instant; anything uncovered falls into ``"run"``), so a fault
    window can be attributed separately from steady state.
    """
    if not 0.0 < pct < 100.0:
        raise ValueError("pct must be in (0, 100)")
    events = list(events)
    paths = critical_paths(events)
    denials: Dict[Tuple[str, int], int] = {}
    cache_hits = cache_misses = 0
    hit_keys: set = set()
    miss_keys: set = set()
    for event in events:
        if event.kind in DENIAL_KINDS:
            sid = event.server_id if event.server_id is not None else -1
            denials[(event.kind, sid)] = denials.get((event.kind, sid), 0) + 1
        elif event.kind == "cache_hit":
            cache_hits += 1
            key = _attempt_key_of(event)
            if key is not None:
                hit_keys.add(_logical_key(key))
        elif event.kind == "cache_miss":
            cache_misses += 1
            key = _attempt_key_of(event)
            if key is not None:
                miss_keys.add(_logical_key(key))
    if not paths:
        return TailReport(
            pct, 0.0, 0, 0, (), denials,
            cache_hits=cache_hits, cache_misses=cache_misses,
        )

    ranked = sorted(paths, key=lambda p: p.sojourn)
    cut = min(int(len(ranked) * pct / 100.0), len(ranked) - 1)
    threshold = ranked[cut].sojourn
    tail = [p for p in ranked if p.sojourn >= threshold]
    body = [p for p in ranked if p.sojourn < threshold]

    # Cache split among tail requests: classify each tail path by the
    # cache outcome its logical request saw (a retried request that
    # both missed and later hit counts as a hit — the hit resolved it).
    tail_cache_hits = tail_cache_misses = 0
    if hit_keys or miss_keys:
        for p in tail:
            lkey = (
                ("l", p.logical_id) if p.logical_id is not None
                else ("r", p.request_id)
            )
            if lkey in hit_keys:
                tail_cache_hits += 1
            elif lkey in miss_keys:
                tail_cache_misses += 1

    # Baselines: per (component, server, phase) among body requests,
    # falling back to the component's overall body mean when the tail
    # cell has no body counterpart (e.g. a replica only ever hit in
    # the fault phase).
    body_cells: Dict[Tuple[str, int, str], List[float]] = {}
    body_overall: Dict[str, List[float]] = {}
    for p in body:
        phase = _phase_of(p.generated_at, phases)
        for comp in COMPONENTS:
            val = p.components[comp]
            body_cells.setdefault((comp, p.server_id, phase), []).append(val)
            body_overall.setdefault(comp, []).append(val)

    tail_cells: Dict[Tuple[str, int, str], List[float]] = {}
    for p in tail:
        phase = _phase_of(p.generated_at, phases)
        for comp in COMPONENTS:
            tail_cells.setdefault((comp, p.server_id, phase), []).append(
                p.components[comp]
            )

    causes: List[RankedCause] = []
    for (comp, sid, phase), values in tail_cells.items():
        count = len(values)
        tail_mean = sum(values) / count
        baseline = body_cells.get((comp, sid, phase))
        if not baseline:
            baseline = body_overall.get(comp)
        body_mean = sum(baseline) / len(baseline) if baseline else 0.0
        excess = max(tail_mean - body_mean, 0.0) * count
        causes.append(
            RankedCause(
                component=comp,
                server_id=sid,
                phase=phase,
                count=count,
                tail_mean=tail_mean,
                body_mean=body_mean,
                excess=excess,
                total=tail_mean * count,
                share=0.0,  # filled below
            )
        )
    causes.sort(key=lambda c: (-c.excess, -c.total, c.component,
                               c.server_id, c.phase))
    # Cells with no excess over the body baseline explain nothing;
    # keep them out of the ranking (they would pad `top` with noise).
    if any(c.excess > 0.0 for c in causes):
        causes = [c for c in causes if c.excess > 0.0]
    total_excess = sum(c.excess for c in causes)
    if total_excess > 0.0:
        causes = [
            RankedCause(
                component=c.component, server_id=c.server_id, phase=c.phase,
                count=c.count, tail_mean=c.tail_mean, body_mean=c.body_mean,
                excess=c.excess, total=c.total,
                share=c.excess / total_excess,
            )
            for c in causes
        ]
    return TailReport(
        pct=pct,
        threshold=threshold,
        n_paths=len(paths),
        n_tail=len(tail),
        causes=tuple(causes[:top]),
        denials=denials,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        tail_cache_hits=tail_cache_hits,
        tail_cache_misses=tail_cache_misses,
    )


@dataclass(frozen=True)
class FanoutReport:
    """Per-shard scatter-gather attribution over one trace.

    Built from the ``fanout_send``/``fanout_gather`` events a fan-out
    run emits (see :mod:`repro.core.fanout`): each gather's critical —
    slowest — shard is the one that set the logical request's latency,
    so a shard whose ``critical_share`` is persistently above ``1/K``
    is the fleet's tail bottleneck even if its own p99 looks healthy.
    """

    gathers: int
    shards: int
    critical_counts: Dict[int, int]     # server_id -> times critical

    def critical_share(self, server_id: int) -> float:
        if self.gathers == 0:
            return 0.0
        return self.critical_counts.get(server_id, 0) / self.gathers

    def render(self) -> str:
        lines = [
            f"fan-out attribution: {self.gathers} gathers x "
            f"{self.shards} shards",
        ]
        if self.gathers == 0:
            lines.append("  (no fanout_gather events in trace)")
            return "\n".join(lines)
        expected = 1.0 / self.shards if self.shards else 0.0
        for server_id in sorted(self.critical_counts):
            share = self.critical_share(server_id)
            flag = "  <-- tail bottleneck" if share > 1.5 * expected else ""
            lines.append(
                f"  shard {server_id}: critical in "
                f"{self.critical_counts[server_id]} "
                f"({share:.1%}, even share {expected:.1%}){flag}"
            )
        return "\n".join(lines)


def fanout_report(events: Iterable[TraceEvent]) -> FanoutReport:
    """Tally which shard was the gather's slowest, per logical request.

    ``fanout_send`` events establish the fan-out width (distinct
    shards per gather id, carried in ``value``); each
    ``fanout_gather`` names its gather's critical shard in
    ``server_id``.
    """
    shards_seen: Dict[float, set] = {}
    critical: Dict[int, int] = {}
    gathers = 0
    for event in events:
        if event.kind == "fanout_send":
            if event.value is not None and event.server_id is not None:
                shards_seen.setdefault(event.value, set()).add(
                    event.server_id
                )
        elif event.kind == "fanout_gather":
            gathers += 1
            if event.server_id is not None:
                critical[event.server_id] = (
                    critical.get(event.server_id, 0) + 1
                )
    width = max((len(s) for s in shards_seen.values()), default=0)
    return FanoutReport(
        gathers=gathers, shards=width, critical_counts=critical
    )

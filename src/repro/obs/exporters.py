"""Trace and metrics exporters: JSONL, Prometheus text format.

Three consumers, three formats:

- :func:`export_trace_jsonl` — one JSON object per line per
  :class:`~repro.obs.trace.TraceEvent`; the schema is fixed
  (:data:`TRACE_SCHEMA`) and machine-checkable with
  :func:`validate_trace_line`, so live and simulated traces are
  directly diffable and CI can keep the format honest.
- :func:`export_series_jsonl` — sampled metric time series, one JSON
  object per :class:`~repro.core.collector.TimelinePoint` (via its
  ``as_dict``).
- :func:`prometheus_text` — a text-format snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`, scrape-compatible with
  the Prometheus exposition format (``# TYPE`` lines, cumulative
  ``_bucket{le=...}`` histogram series).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, TextIO, Union

from ..core.collector import TimelinePoint
from .metrics import Counter, Gauge, HdrSketch, Histogram, MetricsRegistry
from .trace import EVENT_KINDS, TraceEvent

__all__ = [
    "TRACE_SCHEMA",
    "export_trace_jsonl",
    "export_series_jsonl",
    "load_trace_jsonl",
    "validate_trace_line",
    "validate_trace_file",
    "prometheus_text",
]

#: Field name -> (required, allowed types) for one trace JSONL line.
TRACE_SCHEMA: Dict[str, tuple] = {
    "ts": (True, (int, float)),
    "event": (True, (str,)),
    "logical_id": (False, (int,)),
    "request_id": (False, (int,)),
    "attempt": (False, (int,)),
    "server_id": (False, (int,)),
    "value": (False, (int, float)),
}


def _open_sink(sink: Union[str, TextIO]):
    if isinstance(sink, str):
        return open(sink, "w", encoding="utf-8"), True
    return sink, False


def export_trace_jsonl(
    events: Iterable[TraceEvent], sink: Union[str, TextIO]
) -> int:
    """Write events as JSON Lines; returns the number of lines written."""
    fh, owned = _open_sink(sink)
    try:
        n = 0
        for event in events:
            fh.write(json.dumps(event.as_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
        return n
    finally:
        if owned:
            fh.close()


def export_series_jsonl(
    series: Dict[str, List[TimelinePoint]], sink: Union[str, TextIO]
) -> int:
    """Write metric time series as JSON Lines (one point per line)."""
    fh, owned = _open_sink(sink)
    try:
        n = 0
        for name in sorted(series):
            for point in series[name]:
                fh.write(json.dumps(point.as_dict(), separators=(",", ":")))
                fh.write("\n")
                n += 1
        return n
    finally:
        if owned:
            fh.close()


def validate_trace_line(obj: object) -> Dict[str, object]:
    """Check one decoded JSONL object against :data:`TRACE_SCHEMA`.

    Returns the object on success; raises ``ValueError`` naming the
    offending field otherwise.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace line must be an object, got {type(obj).__name__}")
    for field, (required, types) in TRACE_SCHEMA.items():
        if field not in obj:
            if required:
                raise ValueError(f"missing required field {field!r}")
            continue
        value = obj[field]
        # bool is an int subclass; never a legal trace value.
        if isinstance(value, bool) or not isinstance(value, types):
            raise ValueError(
                f"field {field!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    unknown = set(obj) - set(TRACE_SCHEMA)
    if unknown:
        raise ValueError(f"unknown fields {sorted(unknown)}")
    if obj["event"] not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {obj['event']!r}")
    return obj


def validate_trace_file(path: str) -> int:
    """Validate every line of a trace JSONL file; returns line count."""
    n = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                validate_trace_line(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            n += 1
    return n


def load_trace_jsonl(path: str) -> List[TraceEvent]:
    """Read a trace JSONL file back into :class:`TraceEvent` records.

    The inverse of :func:`export_trace_jsonl` — every line is
    schema-validated (:func:`validate_trace_line`), so a process-mode
    run's exported trace round-trips into the same analysis pipeline
    (``tailbench trace --from-jsonl``, :mod:`repro.obs.attribution`)
    that in-memory tracers feed.
    """
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = validate_trace_line(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            events.append(
                TraceEvent(
                    ts=float(obj["ts"]),
                    kind=obj["event"],
                    logical_id=obj.get("logical_id"),
                    request_id=obj.get("request_id"),
                    attempt=obj.get("attempt"),
                    server_id=obj.get("server_id"),
                    value=obj.get("value"),
                )
            )
    return events


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry snapshot in the Prometheus exposition format."""
    lines: List[str] = []
    seen_types: set = set()
    for metric in sorted(registry.metrics(), key=lambda m: m.full_name):
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.full_name} {metric.value:g}")
        elif isinstance(metric, HdrSketch):
            # HDR sketches have log-spaced bucket edges; render the
            # populated ones cumulatively (upper edge as `le`) so
            # quantiles are recoverable by any Prometheus-style
            # consumer, not just summary scalars.
            base_labels = dict(metric.labels)
            cumulative = 0
            for _lo, hi, count in metric.hist.buckets():
                cumulative += count
                labels = {**base_labels, "le": f"{hi:g}"}
                inner = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                lines.append(f"{metric.name}_bucket{{{inner}}} {cumulative}")
            labels = {**base_labels, "le": "+Inf"}
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            lines.append(f"{metric.name}_bucket{{{inner}}} {metric.count}")
            suffix = ""
            if base_labels:
                suffix = "{" + ",".join(
                    f'{k}="{v}"' for k, v in sorted(base_labels.items())
                ) + "}"
            lines.append(f"{metric.name}_sum{suffix} {metric.sum:g}")
            lines.append(f"{metric.name}_count{suffix} {metric.count}")
        elif isinstance(metric, Histogram):
            base_labels = dict(metric.labels)
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                labels = {**base_labels, "le": f"{bound:g}"}
                inner = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                lines.append(f"{metric.name}_bucket{{{inner}}} {cumulative}")
            labels = {**base_labels, "le": "+Inf"}
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            lines.append(f"{metric.name}_bucket{{{inner}}} {metric.count}")
            suffix = ""
            if base_labels:
                suffix = "{" + ",".join(
                    f'{k}="{v}"' for k, v in sorted(base_labels.items())
                ) + "}"
            lines.append(f"{metric.name}_sum{suffix} {metric.sum:g}")
            lines.append(f"{metric.name}_count{suffix} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")

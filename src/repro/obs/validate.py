"""Schema-check a trace JSONL file: ``python -m repro.obs.validate f.jsonl``.

Exit status 0 when every line conforms to
:data:`~repro.obs.exporters.TRACE_SCHEMA`, 1 otherwise — the CI hook
that keeps the exporter format from rotting.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from .exporters import validate_trace_file

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.jsonl ...",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            n = validate_trace_file(path)
        except (OSError, ValueError) as exc:
            print(f"INVALID {exc}", file=sys.stderr)
            status = 1
            continue
        if n == 0:
            print(f"INVALID {path}: empty trace", file=sys.stderr)
            status = 1
            continue
        print(f"ok {path}: {n} events conform to the trace schema")
    return status


if __name__ == "__main__":
    sys.exit(main())

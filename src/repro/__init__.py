"""repro: a from-scratch Python reproduction of TailBench (IISWC 2016).

TailBench is a benchmark suite and evaluation methodology for
latency-critical applications. This package provides:

- :mod:`repro.core` — the load-testing harness (open-loop traffic
  shaping, instrumented request queue, statistics collection, the
  integrated/loopback/networked configurations, repeated-run
  methodology).
- :mod:`repro.apps` — the eight applications (xapian, masstree, moses,
  sphinx, img-dnn, specjbb, silo, shore), each built from scratch.
- :mod:`repro.stats` — HDR histograms, quantile confidence intervals,
  samplers.
- :mod:`repro.sim` — a discrete-event simulator that runs the harness
  methodology in virtual time (the paper's "easy to simulate" mode).
- :mod:`repro.queueing` — M/G/1 and M/G/k analytic models.
- :mod:`repro.archsim` — cache-hierarchy and branch-predictor models
  for the microarchitectural characterization.
- :mod:`repro.workloads` — TPC-C, YCSB, and Zipfian query generators.
- :mod:`repro.faults` — seeded fault injection (transport/queue/
  worker/application) usable live or in the simulator.
- :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro import HarnessConfig, create_app, run_harness

    app = create_app("masstree")
    app.setup()
    result = run_harness(app, HarnessConfig(qps=200, measure_requests=1000))
    print(result.sojourn.describe())
"""

from .apps import app_names, create_app
from .core import (
    PAPER_SYSTEM,
    HarnessConfig,
    HarnessResult,
    ResilienceConfig,
    SystemConfig,
    run_campaign,
    run_harness,
)
from .faults import FaultPlan
from .stats import HdrHistogram, LatencySummary

__version__ = "1.0.0"

__all__ = [
    "app_names",
    "create_app",
    "HarnessConfig",
    "HarnessResult",
    "FaultPlan",
    "ResilienceConfig",
    "PAPER_SYSTEM",
    "SystemConfig",
    "run_campaign",
    "run_harness",
    "HdrHistogram",
    "LatencySummary",
    "__version__",
]

"""The caching tier's front door: thread-safe, counted, traced.

:class:`RequestCache` is the one object the serving paths talk to. The
live harness shares a single instance across every replica's worker
threads (one lock, uncontended at benchmark thread counts); the
simulator drives the same instance from its single-threaded event loop
in virtual time. Policy mechanics live behind
:class:`~repro.cache.policies.CachePolicy`; this layer adds:

- hit/miss/expiry/eviction counters and the derived hit rate,
- ``cache_hit`` / ``cache_miss`` / ``cache_evict`` / ``cache_expire``
  trace events (plus ``cache_clear`` at a cold restart),
- the cold-restart model: ``clear_at`` seconds after the run origin,
  the first access wipes the cache — the "redeploy with an empty
  cache" failure mode whose p99 spike ``fig-cache`` reproduces,
- metrics-registry wiring (hit-rate gauge, occupancy histogram).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, Optional, Tuple

from .policies import CachePolicy, EXPIRED, HIT

__all__ = ["RequestCache"]


class RequestCache:
    """Thread-safe counting/tracing front over one :class:`CachePolicy`."""

    def __init__(
        self,
        policy: CachePolicy,
        hit_cost: float = 0.0,
        clear_at: Optional[float] = None,
        tracer=None,
    ) -> None:
        if hit_cost < 0:
            raise ValueError("hit_cost must be >= 0")
        self._policy = policy
        #: Service time a hit charges instead of the application call.
        self.hit_cost = hit_cost
        self._clear_at = clear_at
        self._cleared = False
        self._origin = 0.0
        self._tracer = tracer
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.rejections = 0
        self._occupancy_hist = None

    # -- wiring --------------------------------------------------------
    def set_origin(self, t: float) -> None:
        """Anchor ``clear_at`` to the run's start instant.

        The live harness passes its wall-clock start; the simulator's
        origin is virtual time zero, the default.
        """
        self._origin = t

    def set_tracer(self, tracer) -> None:
        self._tracer = tracer

    def register_metrics(self, registry) -> None:
        """Register the hit-rate gauge and occupancy series.

        Lazy-callback gauges cost nothing on the serving path — the
        metrics sampler reads them on its own cadence. The occupancy
        histogram is observed on every store, bucketed as fractions of
        capacity so the distribution is comparable across sweeps.
        """
        registry.gauge(
            "tb_cache_hit_rate",
            help="Fraction of keyed lookups served from cache",
            fn=lambda: self.hit_rate,
        )
        registry.gauge(
            "tb_cache_occupancy",
            help="Resident cache entries",
            fn=lambda: float(len(self)),
        )
        self._occupancy_hist = registry.histogram(
            "tb_cache_occupancy_ratio",
            help="Occupancy/capacity observed at each store",
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0),
        )

    # -- serving path --------------------------------------------------
    def lookup(
        self,
        key: Hashable,
        now: float,
        logical_id: Optional[int] = None,
        request_id: Optional[int] = None,
        attempt: Optional[int] = None,
        server_id: Optional[int] = None,
    ) -> Tuple[bool, Any]:
        """Return ``(hit, value)`` for ``key``; counts and traces."""
        with self._lock:
            self._maybe_clear(now)
            status, value = self._policy.lookup(key, now)
            if status == HIT:
                self.hits += 1
            elif status == EXPIRED:
                self.expirations += 1
                self.misses += 1
            else:
                self.misses += 1
        if self._tracer is not None:
            if status == EXPIRED:
                self._tracer.emit(
                    "cache_expire", now, logical_id=logical_id,
                    request_id=request_id, attempt=attempt,
                    server_id=server_id,
                )
            self._tracer.emit(
                "cache_hit" if status == HIT else "cache_miss", now,
                logical_id=logical_id, request_id=request_id,
                attempt=attempt, server_id=server_id,
            )
        return status == HIT, value

    def store(
        self,
        key: Hashable,
        value: Any,
        now: float,
        logical_id: Optional[int] = None,
        request_id: Optional[int] = None,
        attempt: Optional[int] = None,
        server_id: Optional[int] = None,
    ) -> bool:
        """Offer ``(key, value)`` for residence; True when admitted."""
        with self._lock:
            self._maybe_clear(now)
            admitted, evicted = self._policy.store(key, value, now)
            if admitted:
                self.evictions += len(evicted)
            else:
                self.rejections += 1
            occupancy = len(self._policy)
        if self._tracer is not None:
            for _ in evicted:
                self._tracer.emit(
                    "cache_evict", now, logical_id=logical_id,
                    request_id=request_id, attempt=attempt,
                    server_id=server_id, value=float(occupancy),
                )
        if self._occupancy_hist is not None:
            self._occupancy_hist.observe(occupancy / self._policy.capacity)
        return admitted

    def _maybe_clear(self, now: float) -> None:
        """Cold-restart model: wipe everything once past ``clear_at``.

        Checked lazily on each access under the lock, so the clear
        lands at the same (virtual or wall) instant in both execution
        modes without its own timer thread.
        """
        if (
            self._clear_at is None
            or self._cleared
            or now - self._origin < self._clear_at
        ):
            return
        self._cleared = True
        dropped = len(self._policy)
        self._policy.clear()
        if self._tracer is not None:
            self._tracer.emit("cache_clear", now, value=float(dropped))

    # -- inspection ----------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Hits over keyed lookups (0.0 before any traffic)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counts(self) -> Dict[str, int]:
        """Counter snapshot for result objects and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "rejections": self.rejections,
        }

    def __len__(self) -> int:
        return len(self._policy)

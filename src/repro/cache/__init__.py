"""``repro.cache`` — the pluggable request/result caching tier.

The canonical lever that shapes serving tails at scale: a cache in
front of the backend turns the Zipf-skewed head of the request
popularity distribution into near-zero-cost hits, and its failure
modes (cold-cache restart, expiry-driven load spikes) are themselves
tail generators worth reproducing (Dean & Barroso, "The Tail at
Scale"). See DESIGN.md §15.

Layering:

- :mod:`~repro.cache.policies` — LRU / LFU / TTL-wrapped / TinyLFU
  replacement and admission behind one :class:`CachePolicy` seam.
- :class:`~repro.cache.request_cache.RequestCache` — the thread-safe
  counting/tracing front both execution modes share.
- :mod:`~repro.cache.analysis` — the closed-form Zipf hit-rate
  prediction ``fig-cache`` validates against.

Apps opt in per request via ``Application.cache_key`` (None =
uncacheable); configuration is ``HarnessConfig.cache`` /
``SimConfig.cache`` (:class:`repro.core.CacheConfig`).
"""

from .analysis import capacity_for_hit_rate, predicted_hit_rate
from .policies import (
    CachePolicy,
    FrequencySketch,
    LFUCache,
    LRUCache,
    TinyLFUCache,
    TTLCache,
    make_policy,
)
from .request_cache import RequestCache

__all__ = [
    "CachePolicy",
    "FrequencySketch",
    "LFUCache",
    "LRUCache",
    "RequestCache",
    "TTLCache",
    "TinyLFUCache",
    "build_cache",
    "capacity_for_hit_rate",
    "make_policy",
    "predicted_hit_rate",
]


def build_cache(config, tracer=None) -> RequestCache:
    """Construct the tier for an enabled ``CacheConfig``."""
    if not config.enabled:
        raise ValueError("build_cache needs an enabled CacheConfig")
    policy = make_policy(config.policy, config.capacity, ttl=config.ttl)
    return RequestCache(
        policy,
        hit_cost=config.hit_cost,
        clear_at=config.clear_at,
        tracer=tracer,
    )

"""Replacement and admission policies behind one ``CachePolicy`` seam.

The caching tier (DESIGN.md §15) separates *what* is kept from *how*
the keeper decides: :class:`RequestCache` owns thread-safety, counters
and trace emission, while everything below this interface is a pure
single-threaded data structure the simulator can drive deterministically
in virtual time.

Contract (all times are caller-supplied seconds, monotone per run):

- ``lookup(key, now) -> (status, value)`` with status one of ``"hit"``,
  ``"miss"``, ``"expired"``. An expired entry is removed as a side
  effect; the caller treats it as a miss with its own counter.
- ``store(key, value, now) -> (admitted, evicted_keys)``. Admission may
  be refused (TinyLFU); eviction may remove any number of residents.
- ``discard`` / ``clear`` / ``__len__`` do what they say.

Determinism matters here: the TinyLFU sketch hashes with ``zlib.crc32``
over ``repr(key)`` rather than built-in ``hash()``, whose string values
change per process (``PYTHONHASHSEED``) and would break the repo's
bit-identity discipline.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Tuple

__all__ = [
    "CachePolicy",
    "LRUCache",
    "LFUCache",
    "TTLCache",
    "TinyLFUCache",
    "FrequencySketch",
    "make_policy",
]

#: ``lookup`` statuses.
HIT = "hit"
MISS = "miss"
EXPIRED = "expired"


class CachePolicy:
    """Interface every replacement/admission policy implements."""

    capacity: int

    def lookup(self, key: Hashable, now: float) -> Tuple[str, Any]:
        raise NotImplementedError

    def store(
        self, key: Hashable, value: Any, now: float
    ) -> Tuple[bool, List[Hashable]]:
        raise NotImplementedError

    def discard(self, key: Hashable) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUCache(CachePolicy):
    """Least-recently-used replacement over an ordered dict."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def lookup(self, key: Hashable, now: float) -> Tuple[str, Any]:
        try:
            value = self._data[key]
        except KeyError:
            return MISS, None
        self._data.move_to_end(key)
        return HIT, value

    def store(
        self, key: Hashable, value: Any, now: float
    ) -> Tuple[bool, List[Hashable]]:
        evicted: List[Hashable] = []
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return True, evicted
        while len(self._data) >= self.capacity:
            victim, _ = self._data.popitem(last=False)
            evicted.append(victim)
        self._data[key] = value
        return True, evicted

    def discard(self, key: Hashable) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class LFUCache(CachePolicy):
    """Perfect-LFU replacement: frequencies persist across eviction.

    Every ``lookup`` — hit or miss — counts toward the key's lifetime
    frequency, and eviction never erases that history, so a popular key
    that gets displaced does not restart from zero (the tenure-reset
    churn that makes naive in-cache LFU undershoot the static optimum).
    A store that would evict is admitted only when the candidate's
    count strictly exceeds the coldest resident's, so one-hit wonders
    are refused rather than cycled through.

    Under a static Zipfian popularity this converges to caching exactly
    the top-C most popular keys, which is what makes the closed-form
    hit-rate prediction (:func:`repro.cache.predicted_hit_rate`) tight.
    The price is O(distinct keys) counter metadata — fine for the
    bounded keyspaces this repo serves; :class:`TinyLFUCache` is the
    bounded-memory approximation of the same idea. Eviction scans all
    residents for the minimum ``(frequency, age)`` pair — O(capacity),
    trivially auditable at benchmark-scale capacities.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: Dict[Hashable, Any] = {}
        self._freq: Dict[Hashable, int] = {}
        self._stamp: Dict[Hashable, int] = {}
        self._tick = 0

    def lookup(self, key: Hashable, now: float) -> Tuple[str, Any]:
        self._freq[key] = self._freq.get(key, 0) + 1
        try:
            value = self._data[key]
        except KeyError:
            return MISS, None
        return HIT, value

    def store(
        self, key: Hashable, value: Any, now: float
    ) -> Tuple[bool, List[Hashable]]:
        evicted: List[Hashable] = []
        if key in self._data:
            self._data[key] = value
            return True, evicted
        if len(self._data) >= self.capacity:
            victim = min(
                self._data, key=lambda k: (self._freq[k], self._stamp[k])
            )
            if self._freq.get(key, 0) <= self._freq[victim]:
                return False, evicted
            del self._data[victim]
            self._stamp.pop(victim, None)
            evicted.append(victim)
        self._tick += 1
        self._data[key] = value
        self._stamp[key] = self._tick
        return True, evicted

    def discard(self, key: Hashable) -> None:
        # Drops the value, not the frequency history: discard models an
        # entry going away (expiry, invalidation), not amnesia.
        self._data.pop(key, None)
        self._stamp.pop(key, None)

    def clear(self) -> None:
        # A cold restart loses everything, history included.
        self._data.clear()
        self._freq.clear()
        self._stamp.clear()
        self._tick = 0

    def __len__(self) -> int:
        return len(self._data)


class TTLCache(CachePolicy):
    """Expiry wrapper: bounds staleness of any inner policy's entries.

    Entries carry an ``expires_at`` stamp; a lookup past it removes the
    entry and reports ``"expired"`` so the front can count expiry-driven
    misses separately from capacity misses — the distinction that makes
    expiry-driven load spikes (all popular entries aging out together)
    visible in traces.
    """

    def __init__(self, inner: CachePolicy, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.inner = inner
        self.ttl = ttl
        self.capacity = inner.capacity

    def lookup(self, key: Hashable, now: float) -> Tuple[str, Any]:
        status, wrapped = self.inner.lookup(key, now)
        if status != HIT:
            return status, None
        value, expires_at = wrapped
        if now >= expires_at:
            self.inner.discard(key)
            return EXPIRED, None
        return HIT, value

    def store(
        self, key: Hashable, value: Any, now: float
    ) -> Tuple[bool, List[Hashable]]:
        return self.inner.store(key, (value, now + self.ttl), now)

    def discard(self, key: Hashable) -> None:
        self.inner.discard(key)

    def clear(self) -> None:
        self.inner.clear()

    def __len__(self) -> int:
        return len(self.inner)


class FrequencySketch:
    """Count-min sketch with periodic halving (TinyLFU's aging).

    Four salted CRC32 rows; estimates are upper bounds whose error
    shrinks with ``width``. After ``sample_size`` increments every
    counter is halved, so the sketch tracks *recent* popularity instead
    of accumulating history forever.
    """

    ROWS = 4

    def __init__(self, width: int, sample_size: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.width = width
        self.sample_size = sample_size
        self._rows = [[0] * width for _ in range(self.ROWS)]
        self._additions = 0

    def _indexes(self, key: Hashable) -> List[int]:
        data = repr(key).encode("utf-8")
        return [
            zlib.crc32(data, 0x9E3779B9 * (row + 1) & 0xFFFFFFFF) % self.width
            for row in range(self.ROWS)
        ]

    def increment(self, key: Hashable) -> None:
        for row, idx in zip(self._rows, self._indexes(key)):
            row[idx] += 1
        self._additions += 1
        if self._additions >= self.sample_size:
            self._age()

    def estimate(self, key: Hashable) -> int:
        return min(
            row[idx] for row, idx in zip(self._rows, self._indexes(key))
        )

    def _age(self) -> None:
        for row in self._rows:
            for i, v in enumerate(row):
                row[i] = v >> 1
        self._additions //= 2

    def clear(self) -> None:
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self._additions = 0


class TinyLFUCache(CachePolicy):
    """LRU residence gated by frequency-sketch admission (TinyLFU).

    Every lookup feeds the sketch. On a store that would evict, the
    candidate is admitted only if its estimated frequency *exceeds* the
    LRU victim's — one-hit wonders never displace a warm working set,
    which is the scan-resistance property plain LRU lacks.
    """

    def __init__(self, capacity: int, sample_factor: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lru = LRUCache(capacity)
        self.sketch = FrequencySketch(
            width=max(64, 4 * capacity),
            sample_size=max(2, sample_factor) * capacity,
        )

    def lookup(self, key: Hashable, now: float) -> Tuple[str, Any]:
        self.sketch.increment(key)
        return self._lru.lookup(key, now)

    def store(
        self, key: Hashable, value: Any, now: float
    ) -> Tuple[bool, List[Hashable]]:
        if key in self._lru._data or len(self._lru) < self.capacity:
            return self._lru.store(key, value, now)
        victim = next(iter(self._lru._data))
        if self.sketch.estimate(key) <= self.sketch.estimate(victim):
            return False, []
        return self._lru.store(key, value, now)

    def discard(self, key: Hashable) -> None:
        self._lru.discard(key)

    def clear(self) -> None:
        self._lru.clear()
        self.sketch.clear()

    def __len__(self) -> int:
        return len(self._lru)


def make_policy(
    policy: str, capacity: int, ttl=None
) -> CachePolicy:
    """Build the policy chain for a :class:`~repro.core.CacheConfig`.

    ``policy`` picks the replacement structure (``"ttl"`` is LRU
    residence with a required expiry); a non-None ``ttl`` wraps any of
    them in :class:`TTLCache`.
    """
    if policy in ("lru", "ttl"):
        base: CachePolicy = LRUCache(capacity)
    elif policy == "lfu":
        base = LFUCache(capacity)
    elif policy == "tinylfu":
        base = TinyLFUCache(capacity)
    else:
        raise ValueError(f"unknown cache policy: {policy!r}")
    if policy == "ttl" and ttl is None:
        raise ValueError('policy "ttl" requires a ttl')
    if ttl is not None:
        return TTLCache(base, ttl)
    return base

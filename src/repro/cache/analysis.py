"""Closed-form hit-rate prediction for Zipf-popular request streams.

Under the independent reference model with Zipfian popularity — the
query mix the search workloads already draw
(:mod:`repro.workloads.zipf`, Baeza-Yates 2005) — a capacity-C cache
that manages to keep the C most popular keys resident answers exactly
the probability mass of those keys. LFU converges there by
construction; LRU sits close for skewed streams because the popular
keys are re-referenced fast enough to never age out. ``fig-cache``
validates the measured hit rate against this prediction within a 5%
absolute band.
"""

from __future__ import annotations

from ..stats import ZipfianGenerator

__all__ = ["predicted_hit_rate", "capacity_for_hit_rate"]


def predicted_hit_rate(keyspace: int, theta: float, capacity: int) -> float:
    """Top-``capacity`` popularity mass of Zipf(``keyspace``, ``theta``).

    The steady-state hit rate of an LFU (and approximately an LRU)
    cache holding ``capacity`` of ``keyspace`` keys under independent
    Zipfian references.
    """
    if keyspace < 1:
        raise ValueError("keyspace must be >= 1")
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    if capacity >= keyspace:
        return 1.0
    zipf = ZipfianGenerator(keyspace, theta=theta)
    return sum(zipf.probability(rank) for rank in range(capacity))


def capacity_for_hit_rate(
    keyspace: int, theta: float, target: float
) -> int:
    """Smallest capacity whose predicted hit rate reaches ``target``.

    The planning inverse of :func:`predicted_hit_rate` — e.g. "how much
    cache buys a 60% hit rate at theta=0.9?".
    """
    if not 0.0 <= target <= 1.0:
        raise ValueError("target must be in [0, 1]")
    zipf = ZipfianGenerator(keyspace, theta=theta)
    mass = 0.0
    for rank in range(keyspace):
        if mass >= target:
            return rank
        mass += zipf.probability(rank)
    return keyspace

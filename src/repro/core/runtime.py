"""The per-replica execution unit: queue + worker pool + application.

:class:`ReplicaRuntime` is the seam between *what a replica is* and
*where it runs*. One replica = one request queue, one worker-pool
:class:`~repro.core.server.Server`, and one application object. The
threaded transports build a runtime per replica inside the harness
process (:meth:`repro.core.transport.Transport._build_instance`);
:class:`~repro.core.transport.ProcessTransport` builds the identical
runtime inside a child OS process — same queue semantics, same worker
loops, same fault hooks, different interpreter.

Keeping the bundle in one class means execution modes cannot drift:
there is exactly one way to assemble a replica, and the only thing a
mode chooses is which process it happens in.
"""

from __future__ import annotations

from typing import Callable, Optional

from .clock import Clock
from .queueing import RequestQueue
from .request import Request
from .server import Server

__all__ = ["ReplicaRuntime"]


class ReplicaRuntime:
    """One replica's serving machinery, independent of where it runs.

    Parameters mirror the union of :class:`RequestQueue` and
    :class:`Server` construction: the runtime owns both and wires them
    together. ``respond`` receives every completed (or shed) request —
    in threaded mode that is the transport's completion path; in
    process mode it is the IPC record streamer.
    """

    def __init__(
        self,
        app,
        clock: Clock,
        n_threads: int,
        respond: Callable[[Request], None],
        injector=None,
        server_id: int = 0,
        batching=None,
        cache=None,
        queue_capacity: Optional[int] = None,
        gate=None,
        buffer=None,
    ) -> None:
        self.app = app
        self.server_id = server_id
        self.queue = RequestQueue(
            clock,
            capacity=queue_capacity,
            injector=injector,
            gate=gate,
            buffer=buffer,
        )
        self.server = Server(
            app,
            self.queue,
            clock,
            n_threads=n_threads,
            respond=respond,
            injector=injector,
            server_id=server_id,
            batching=batching,
            cache=cache,
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self.server.start()

    def shutdown(
        self, timeout: float = 30.0, discard_pending: bool = False
    ) -> None:
        self.server.shutdown(timeout=timeout, discard_pending=discard_pending)

    # -- serving -------------------------------------------------------
    def submit(self, request: Request) -> bool:
        """Offer one request to the replica's queue.

        Returns False when the request was shed (bounded queue or
        admission gate); the request is then already marked ``shed``
        and the caller owes the client a shed response.
        """
        return self.queue.put(request)

    # -- introspection (the signals transports and controllers read) ---
    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def busy_workers(self) -> int:
        return self.server.busy_workers

    @property
    def alive_workers(self) -> int:
        return self.server.alive_workers

    @property
    def n_threads(self) -> int:
        return self.server.n_threads

    @property
    def errors(self):
        return self.server.errors

    def set_tracer(self, tracer) -> None:
        self.server.set_tracer(tracer)

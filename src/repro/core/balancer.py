"""Pluggable load-balancing policies for the multi-server topology.

TailBench's harness (Fig. 1) models one client driving one server.
Once the harness hosts *N* independent server instances, every request
must be routed to one of them, and the routing policy itself becomes a
first-class experimental variable: load imbalance is a tail-latency
mechanism in its own right ["The Tail at Scale", Dean & Barroso 2013].

Four classic policies are provided behind one interface:

- **round_robin** — cycle through servers in order. Deterministic and
  perfectly fair in counts, but blind to queue state: a slow replica
  keeps receiving its share and grows a deep queue.
- **random** — uniform random choice. Stateless; its binomial arrival
  spread produces transient imbalance that shows up in the tails.
- **power_of_two** — sample two distinct servers, send to the one with
  the shorter queue [Mitzenmacher 2001]. Exponentially better maximum
  load than random at the cost of two depth probes.
- **jsq** — join-the-shortest-queue: send to the global minimum-depth
  server. The strongest of the four on tails, but needs full state.

Depth-aware policies consume a *depth vector*: one integer per server
counting the requests currently at (or in flight to) that server. The
live transport maintains per-instance outstanding counts; the
simulator exposes ``queued + in service``. Policies never inspect
servers directly, so live and simulated runs share this module
verbatim — one of the invariants that keeps the two modes comparable.

Every policy accepts an optional ``avoid`` server: the resilient
client passes the first attempt's server when hedging, so a hedge
lands on a *different* replica whenever more than one exists (hedging
to the same stuck queue is pointless).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Optional, Sequence, Type

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "RandomBalancer",
    "PowerOfTwoBalancer",
    "JoinShortestQueueBalancer",
    "BALANCERS",
    "balancer_names",
    "make_balancer",
    "pick_active",
]


class LoadBalancer:
    """Routing policy: map a per-server depth vector to a server index.

    Implementations must be thread-safe — the live harness calls
    :meth:`pick` from the traffic-shaper thread and from the resilience
    timer thread concurrently — and deterministic given their seed,
    so simulated runs replay identically.
    """

    #: Registry/display name; subclasses override.
    name: str = "base"

    def __init__(self, seed: int = 0) -> None:
        """Stateless policies ignore ``seed``; accepted for uniformity."""

    def pick(self, depths: Sequence[int], avoid: Optional[int] = None) -> int:
        """Choose a server index given current per-server depths.

        ``avoid`` excludes one server from consideration when at least
        one alternative exists (hedge-to-a-different-replica); with a
        single server it is ignored.
        """
        raise NotImplementedError

    @staticmethod
    def _candidates(n: int, avoid: Optional[int]) -> Sequence[int]:
        if n < 1:
            raise ValueError("depth vector must not be empty")
        if avoid is None or n == 1 or not 0 <= avoid < n:
            return range(n)
        return [i for i in range(n) if i != avoid]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoundRobinBalancer(LoadBalancer):
    """Cycle through servers in index order, ignoring queue state."""

    name = "round_robin"

    def __init__(self, seed: int = 0) -> None:  # seed accepted for parity
        self._next = 0
        self._lock = threading.Lock()

    def pick(self, depths: Sequence[int], avoid: Optional[int] = None) -> int:
        n = len(depths)
        if n < 1:
            raise ValueError("depth vector must not be empty")
        with self._lock:
            choice = self._next % n
            self._next += 1
            if avoid is not None and n > 1 and choice == avoid:
                choice = self._next % n
                self._next += 1
            return choice


class RandomBalancer(LoadBalancer):
    """Uniform random choice, seeded for reproducibility."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def pick(self, depths: Sequence[int], avoid: Optional[int] = None) -> int:
        candidates = self._candidates(len(depths), avoid)
        with self._lock:
            if isinstance(candidates, range):
                return self._rng.randrange(len(depths))
            return self._rng.choice(candidates)


class PowerOfTwoBalancer(LoadBalancer):
    """Sample two distinct servers; join the shorter of the two queues.

    Ties go to the first-sampled server, so the policy never picks the
    strictly longer of its two sampled queues.
    """

    name = "power_of_two"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def pick(self, depths: Sequence[int], avoid: Optional[int] = None) -> int:
        candidates = list(self._candidates(len(depths), avoid))
        if len(candidates) == 1:
            return candidates[0]
        with self._lock:
            first, second = self._rng.sample(candidates, 2)
        return first if depths[first] <= depths[second] else second


class JoinShortestQueueBalancer(LoadBalancer):
    """Global minimum-depth choice; ties break to the lowest index."""

    name = "jsq"

    def pick(self, depths: Sequence[int], avoid: Optional[int] = None) -> int:
        candidates = self._candidates(len(depths), avoid)
        return min(candidates, key=lambda i: (depths[i], i))


BALANCERS: Dict[str, Type[LoadBalancer]] = {
    policy.name: policy
    for policy in (
        RoundRobinBalancer,
        RandomBalancer,
        PowerOfTwoBalancer,
        JoinShortestQueueBalancer,
    )
}


def balancer_names() -> Sequence[str]:
    """All registered policy names, sorted."""
    return sorted(BALANCERS)


def make_balancer(name: str, seed: int = 0) -> LoadBalancer:
    """Build a policy by name (``round_robin`` / ``random`` /
    ``power_of_two`` / ``jsq``), seeding any internal RNG."""
    try:
        policy = BALANCERS[name]
    except KeyError:
        raise ValueError(
            f"unknown balancer {name!r}; known: {balancer_names()}"
        ) from None
    return policy(seed=seed)


def pick_active(
    balancer: LoadBalancer,
    depths: Sequence[int],
    active_ids: Sequence[int],
    avoid: Optional[int] = None,
) -> int:
    """Route over the *active* replica subset; return a real server id.

    With runtime membership (autoscaling), the instance list is
    append-only and draining replicas stay in place — so the balancer
    must never see them as candidates. This helper presents the policy
    with a dense depth vector of only the active replicas and maps its
    positional pick back to the true server id. When every replica is
    active (``active_ids == range(len(depths))``) the mapping is the
    identity and the policy behaves exactly as before — static
    topologies pay nothing for this indirection.

    ``avoid`` is a server id (not a position); it is translated into
    the dense space, and dropped when the avoided replica is not active
    (routing away from a drained replica is automatic).

    Degrades gracefully: when upstream filtering (avoid + draining +
    health ejection) leaves zero candidates, the full replica set is
    used instead — under a storm, routing *somewhere* beats raising on
    the send path.
    """
    if not active_ids:
        active_ids = list(range(len(depths)))
        if not active_ids:
            raise ValueError("no servers exist to route to")
    if len(active_ids) == 1:
        return active_ids[0]
    dense_depths = [depths[server_id] for server_id in active_ids]
    dense_avoid: Optional[int] = None
    if avoid is not None:
        try:
            dense_avoid = list(active_ids).index(avoid)
        except ValueError:
            dense_avoid = None
    position = balancer.pick(dense_depths, avoid=dense_avoid)
    if not 0 <= position < len(active_ids):
        raise ValueError(
            f"balancer picked position {position} of {len(active_ids)}"
        )
    return active_ids[position]

"""Instrumented, thread-safe request queue.

The request queue sits between the transport and the application
worker threads. It is the instrumentation point for the two halves of
server-side latency: *queueing time* (enqueue -> dequeue-by-worker) and
*service time* (worker start -> worker end), per Sec. IV of the paper.

Two optional robustness features extend the paper's unbounded FIFO:

- **bounded admission** — with a ``capacity``, :meth:`RequestQueue.put`
  sheds arrivals that would exceed it instead of letting queueing delay
  grow without bound (load shedding; the caller owes the client a shed
  response so the request resolves instead of timing out).
- **stall windows** — with a fault ``injector``, dequeue freezes during
  the plan's queue-stall windows, modelling a wedged dispatch path.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Optional

from .clock import Clock
from .request import Request

__all__ = ["RequestQueue", "QueueClosed"]


class QueueClosed(Exception):
    """Raised when getting from a closed, drained queue."""


class RequestQueue:
    """FIFO of :class:`Request` with enqueue timestamping.

    Unbounded by default: latency-critical servers do not drop requests
    under study loads, so saturation shows up as unbounded queueing
    delay, exactly as in the paper's latency-vs-load curves. Pass
    ``capacity`` to enable admission control instead.
    """

    def __init__(
        self,
        clock: Clock,
        capacity: Optional[int] = None,
        injector=None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._clock = clock
        self._capacity = capacity
        self._injector = injector
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._peak_depth = 0
        self._total_enqueued = 0
        self._total_shed = 0

    def put(self, request: Request) -> bool:
        """Enqueue, stamping ``enqueued_at``.

        Returns True when accepted. With a bounded queue at capacity,
        marks the request shed and returns False instead; the caller is
        responsible for sending the shed response back to the client.
        """
        request.enqueued_at = self._clock.now()
        with self._not_empty:
            if self._closed:
                raise QueueClosed("queue is closed")
            if (
                self._capacity is not None
                and len(self._items) >= self._capacity
            ):
                self._total_shed += 1
                request.shed = True
                return False
            self._items.append(request)
            self._total_enqueued += 1
            if len(self._items) > self._peak_depth:
                self._peak_depth = len(self._items)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Request:
        """Dequeue the oldest request; blocks until one is available.

        Raises :class:`QueueClosed` once the queue is closed and empty.
        The caller (worker thread) stamps ``service_start_at`` itself,
        immediately before invoking the application, so queue time is
        charged all the way to the actual start of processing.

        The timeout is a single budget for the whole call: the deadline
        is computed once, and every wakeup (notify-then-steal races,
        spurious wakeups, stall windows) waits only the remaining time.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                stall = 0.0
                if self._injector is not None and not self._closed:
                    stall = self._injector.queue_stall_remaining(
                        self._clock.now()
                    )
                if self._items and stall <= 0.0:
                    return self._items.popleft()
                if self._closed and not self._items:
                    raise QueueClosed("queue is closed and drained")
                wait = stall if stall > 0.0 else None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise TimeoutError("no request arrived in time")
                    wait = remaining if wait is None else min(wait, remaining)
                self._not_empty.wait(wait)

    def close(self) -> None:
        """Stop accepting requests; wake all blocked getters."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    @property
    def total_enqueued(self) -> int:
        with self._lock:
            return self._total_enqueued

    @property
    def total_shed(self) -> int:
        with self._lock:
            return self._total_shed

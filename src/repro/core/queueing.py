"""Instrumented, thread-safe request queue.

The request queue sits between the transport and the application
worker threads. It is the instrumentation point for the two halves of
server-side latency: *queueing time* (enqueue -> dequeue-by-worker) and
*service time* (worker start -> worker end), per Sec. IV of the paper.

Optional robustness/control features extend the paper's unbounded FIFO:

- **bounded admission** — with a ``capacity``, :meth:`RequestQueue.put`
  sheds arrivals that would exceed it instead of letting queueing delay
  grow without bound (load shedding; the caller owes the client a shed
  response so the request resolves instead of timing out).
- **stall windows** — with a fault ``injector``, dequeue freezes during
  the plan's queue-stall windows, modelling a wedged dispatch path.
- **admission gate** — with a ``gate`` (see
  :class:`repro.control.AdmissionGate`), each arrival is first offered
  to the control plane, which may shed it under a CoDel drop state or
  an adaptive concurrency limit. The gate replaces the *static*
  ``capacity`` bound as the shedding mechanism of managed servers.
- **queue discipline** — the pending set is a pluggable *buffer*:
  :class:`FifoBuffer` (the default, the paper's FIFO) or
  :class:`PriorityBuffer` (strict or weighted per-class scheduling),
  shared verbatim with the simulator so both modes dequeue in the
  identical order.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .clock import Clock
from .request import Request

__all__ = [
    "RequestQueue",
    "PriorityRequestQueue",
    "QueueClosed",
    "QueueSnapshot",
    "FifoBuffer",
    "PriorityBuffer",
]


class QueueClosed(Exception):
    """Raised when getting from a closed, drained queue."""


@dataclass(frozen=True)
class QueueSnapshot:
    """Uniform point-in-time view of one queue's state.

    Controllers and dashboards consume this one API instead of three
    ad-hoc fields scattered over live and simulated queues:
    ``head_sojourn`` is the CoDel signal (how long the oldest waiting
    request has queued; 0 when empty), ``depth``/``peak_depth`` the
    autoscaling signals, and the ``total_*`` counters the shed/admit
    accounting. Both :meth:`RequestQueue.snapshot` and the simulator's
    :meth:`~repro.sim.server_model.SimulatedServer.queue_snapshot`
    produce it.
    """

    depth: int
    peak_depth: int
    total_enqueued: int
    total_shed: int
    head_sojourn: float


class FifoBuffer:
    """FIFO pending-request buffer — the paper's queue discipline."""

    def __init__(self) -> None:
        self._items: collections.deque = collections.deque()

    def push(self, request: Request) -> None:
        self._items.append(request)

    def pop(self) -> Request:
        return self._items.popleft()

    def pop_batch(self, limit: int) -> List[Request]:
        """Pop up to ``limit`` requests in FIFO order (at least one)."""
        if not self._items:
            raise IndexError("pop_batch from empty FifoBuffer")
        n = min(limit, len(self._items))
        return [self._items.popleft() for _ in range(n)]

    def __len__(self) -> int:
        return len(self._items)

    def head_enqueued_at(self) -> Optional[float]:
        """Enqueue instant of the oldest waiting request (None if empty)."""
        if not self._items:
            return None
        return self._items[0].enqueued_at


class PriorityBuffer:
    """Per-class priority discipline: strict or weighted, FIFO within.

    Requests carry an integer ``priority`` (higher = more urgent, see
    :class:`repro.core.request.Request`). Two modes:

    - ``strict`` — always serve the highest non-empty priority class;
      a latency-critical class never waits behind batch work, which
      may starve under sustained overload (that is the point: the
      batch class absorbs the queueing, the paper's colocation story
      inside one server).
    - ``weighted`` — smooth weighted round-robin across non-empty
      classes (ties break to the higher priority), so every class
      makes progress in proportion to its configured weight.

    Both modes are deterministic — no RNG — so the simulator replays
    identically, and the identical buffer object drives the live
    :class:`PriorityRequestQueue` and the simulated server.
    """

    def __init__(
        self,
        mode: str = "strict",
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        if mode not in ("strict", "weighted"):
            raise ValueError("mode must be 'strict' or 'weighted'")
        if mode == "weighted" and not weights:
            raise ValueError("weighted mode needs a {priority: weight} map")
        if weights and any(w <= 0 for w in weights.values()):
            raise ValueError("weights must be positive")
        self._mode = mode
        self._weights = dict(weights or {})
        self._classes: Dict[int, collections.deque] = {}
        self._credit: Dict[int, float] = {}
        self._size = 0

    def push(self, request: Request) -> None:
        self._classes.setdefault(
            request.priority, collections.deque()
        ).append(request)
        self._size += 1

    def _pick_class(self) -> int:
        ready = [p for p, items in self._classes.items() if items]
        if self._mode == "strict":
            return max(ready)
        # Smooth weighted round-robin [nginx upstream balancing]: each
        # ready class earns its weight, the richest class serves and
        # pays back the total — deterministic and starvation-free.
        total = 0.0
        for p in ready:
            weight = self._weights.get(p, 1.0)
            self._credit[p] = self._credit.get(p, 0.0) + weight
            total += weight
        winner = max(ready, key=lambda p: (self._credit[p], p))
        self._credit[winner] -= total
        return winner

    def pop(self) -> Request:
        if self._size == 0:
            raise IndexError("pop from empty PriorityBuffer")
        winner = self._pick_class()
        self._size -= 1
        return self._classes[winner].popleft()

    def pop_batch(self, limit: int) -> List[Request]:
        """Pop up to ``limit`` requests from a *single* class.

        One scheduling decision (:meth:`_pick_class`) selects the class
        for the whole batch, then up to ``limit`` of its requests are
        drawn in FIFO order — batches never span priority classes, so a
        latency-critical request is never co-scheduled behind batch
        work inside one service window. In weighted mode the batch
        costs its class one credit cycle regardless of size, i.e. the
        discipline arbitrates *batches*, not requests.
        """
        if self._size == 0:
            raise IndexError("pop_batch from empty PriorityBuffer")
        winner = self._pick_class()
        items = self._classes[winner]
        n = min(limit, len(items))
        self._size -= n
        return [items.popleft() for _ in range(n)]

    def __len__(self) -> int:
        return self._size

    def head_enqueued_at(self) -> Optional[float]:
        """Oldest enqueue instant across every class (None if empty)."""
        heads = [
            items[0].enqueued_at
            for items in self._classes.values()
            if items and items[0].enqueued_at is not None
        ]
        return min(heads) if heads else None


class RequestQueue:
    """Queue of :class:`Request` with enqueue timestamping.

    Unbounded FIFO by default: latency-critical servers do not drop
    requests under study loads, so saturation shows up as unbounded
    queueing delay, exactly as in the paper's latency-vs-load curves.
    Pass ``capacity`` for a static bound, ``gate`` for control-plane
    admission, or ``buffer`` for a non-FIFO discipline.
    """

    def __init__(
        self,
        clock: Clock,
        capacity: Optional[int] = None,
        injector=None,
        gate=None,
        buffer=None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._clock = clock
        self._capacity = capacity
        self._injector = injector
        self._gate = gate
        self._buffer = buffer if buffer is not None else FifoBuffer()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._peak_depth = 0
        self._total_enqueued = 0
        self._total_shed = 0

    def put(self, request: Request) -> bool:
        """Enqueue, stamping ``enqueued_at``.

        Returns True when accepted. A request rejected by the admission
        gate or a bounded queue at capacity is marked shed and False is
        returned instead; the caller is responsible for sending the
        shed response back to the client.
        """
        request.enqueued_at = self._clock.now()
        with self._not_empty:
            if self._closed:
                raise QueueClosed("queue is closed")
            if self._gate is not None and not self._gate.admit(
                request.enqueued_at, len(self._buffer), request
            ):
                self._total_shed += 1
                request.shed = True
                return False
            if (
                self._capacity is not None
                and len(self._buffer) >= self._capacity
            ):
                self._total_shed += 1
                request.shed = True
                return False
            self._buffer.push(request)
            self._total_enqueued += 1
            if len(self._buffer) > self._peak_depth:
                self._peak_depth = len(self._buffer)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Request:
        """Dequeue the next request per the buffer's discipline.

        Raises :class:`QueueClosed` once the queue is closed and empty.
        The caller (worker thread) stamps ``service_start_at`` itself,
        immediately before invoking the application, so queue time is
        charged all the way to the actual start of processing.

        The timeout is a single budget for the whole call: the deadline
        is computed once, and every wakeup (notify-then-steal races,
        spurious wakeups, stall windows) waits only the remaining time.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                stall = 0.0
                if self._injector is not None and not self._closed:
                    stall = self._injector.queue_stall_remaining(
                        self._clock.now()
                    )
                if len(self._buffer) and stall <= 0.0:
                    return self._buffer.pop()
                if self._closed and not len(self._buffer):
                    raise QueueClosed("queue is closed and drained")
                wait = stall if stall > 0.0 else None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise TimeoutError("no request arrived in time")
                    wait = remaining if wait is None else min(wait, remaining)
                self._not_empty.wait(wait)

    def get_batch(
        self, policy, timeout: Optional[float] = None
    ) -> List[Request]:
        """Dequeue the next *batch* per the batching ``policy``.

        Blocks until the policy reports the buffer releasable — a full
        batch is waiting, or the head request has waited out the batch
        delay — then pops the batch via ``policy.form``. On close, any
        residue is flushed immediately (no point waiting out the delay
        for traffic that will never arrive); :class:`QueueClosed` is
        raised once closed *and* empty, exactly like :meth:`get`.

        The release decision is evaluated under the queue lock against
        the same buffer state the simulator sees, so live and simulated
        batch membership match per seed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                stall = 0.0
                if self._injector is not None and not self._closed:
                    stall = self._injector.queue_stall_remaining(
                        self._clock.now()
                    )
                hold = None  # seconds until the head's delay expires
                if len(self._buffer) and stall <= 0.0:
                    if self._closed:
                        return policy.form(self._buffer)
                    now = self._clock.now()
                    ready = policy.ready_at(self._buffer, now)
                    if ready is not None and ready <= now:
                        return policy.form(self._buffer)
                    if ready is not None:
                        hold = ready - now
                if self._closed and not len(self._buffer):
                    raise QueueClosed("queue is closed and drained")
                wait = stall if stall > 0.0 else None
                if hold is not None:
                    wait = hold if wait is None else min(wait, hold)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise TimeoutError("no batch formed in time")
                    wait = remaining if wait is None else min(wait, remaining)
                self._not_empty.wait(wait)

    def close(self, discard_pending: bool = False) -> int:
        """Stop accepting requests; wake all blocked getters.

        ``discard_pending`` also drops whatever is still buffered, so
        workers exit without serving it. A retry storm can leave a
        backlog of already-abandoned attempts many times deeper than a
        second of capacity; serving it at shutdown would stall the
        join for no one's benefit. Returns the number discarded.
        """
        with self._not_empty:
            self._closed = True
            dropped = 0
            if discard_pending:
                while len(self._buffer):
                    self._buffer.pop()
                    dropped += 1
            self._not_empty.notify_all()
            return dropped

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def gate(self):
        return self._gate

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    @property
    def total_enqueued(self) -> int:
        with self._lock:
            return self._total_enqueued

    @property
    def total_shed(self) -> int:
        with self._lock:
            return self._total_shed

    def sojourn_seconds(self, now: Optional[float] = None) -> float:
        """How long the oldest waiting request has queued (0 if empty).

        This is the control plane's CoDel signal: persistent head-of-
        line sojourn above target means the queue holds standing load
        no amount of buffering will clear.
        """
        if now is None:
            now = self._clock.now()
        with self._lock:
            head = self._buffer.head_enqueued_at()
        if head is None:
            return 0.0
        return max(0.0, now - head)

    def snapshot(self, now: Optional[float] = None) -> QueueSnapshot:
        """One consistent :class:`QueueSnapshot` of the queue's state."""
        if now is None:
            now = self._clock.now()
        with self._lock:
            head = self._buffer.head_enqueued_at()
            return QueueSnapshot(
                depth=len(self._buffer),
                peak_depth=self._peak_depth,
                total_enqueued=self._total_enqueued,
                total_shed=self._total_shed,
                head_sojourn=max(0.0, now - head) if head is not None else 0.0,
            )


class PriorityRequestQueue(RequestQueue):
    """Request queue with per-class priority scheduling.

    A thin :class:`RequestQueue` wired to a :class:`PriorityBuffer`:
    the thread-safety, gating, and instrumentation machinery is
    inherited unchanged, only the dequeue order differs. ``mode`` is
    ``strict`` (latency-critical class always first) or ``weighted``
    (smooth weighted round-robin by the ``weights`` map).
    """

    def __init__(
        self,
        clock: Clock,
        capacity: Optional[int] = None,
        injector=None,
        gate=None,
        mode: str = "strict",
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        super().__init__(
            clock,
            capacity=capacity,
            injector=injector,
            gate=gate,
            buffer=PriorityBuffer(mode=mode, weights=weights),
        )

"""Instrumented, thread-safe request queue.

The request queue sits between the transport and the application
worker threads. It is the instrumentation point for the two halves of
server-side latency: *queueing time* (enqueue -> dequeue-by-worker) and
*service time* (worker start -> worker end), per Sec. IV of the paper.
"""

from __future__ import annotations

import collections
import threading
from typing import Optional

from .clock import Clock
from .request import Request

__all__ = ["RequestQueue", "QueueClosed"]


class QueueClosed(Exception):
    """Raised when getting from a closed, drained queue."""


class RequestQueue:
    """Unbounded FIFO of :class:`Request` with enqueue timestamping.

    Latency-critical servers do not drop requests under study loads, so
    the queue is unbounded; saturation shows up as unbounded queueing
    delay, exactly as in the paper's latency-vs-load curves.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._peak_depth = 0
        self._total_enqueued = 0

    def put(self, request: Request) -> None:
        """Enqueue, stamping ``enqueued_at``."""
        request.enqueued_at = self._clock.now()
        with self._not_empty:
            if self._closed:
                raise QueueClosed("queue is closed")
            self._items.append(request)
            self._total_enqueued += 1
            if len(self._items) > self._peak_depth:
                self._peak_depth = len(self._items)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Request:
        """Dequeue the oldest request; blocks until one is available.

        Raises :class:`QueueClosed` once the queue is closed and empty.
        The caller (worker thread) stamps ``service_start_at`` itself,
        immediately before invoking the application, so queue time is
        charged all the way to the actual start of processing.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosed("queue is closed and drained")
                if not self._not_empty.wait(timeout):
                    raise TimeoutError("no request arrived in time")
            return self._items.popleft()

    def close(self) -> None:
        """Stop accepting requests; wake all blocked getters."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    @property
    def total_enqueued(self) -> int:
        with self._lock:
            return self._total_enqueued

"""Harness and experiment configuration objects."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from ..batching.config import NO_BATCHING, BatchingConfig
from ..control.config import NO_CONTROL, ControlPlaneConfig
from ..faults import FaultPlan, Scenario
from ..health.config import NO_HEALTH, HealthConfig
from .balancer import BALANCERS
from .resilience import ResilienceConfig

__all__ = [
    "CacheConfig",
    "ExecutionConfig",
    "FanoutConfig",
    "HarnessConfig",
    "ObservabilityConfig",
    "SloConfig",
    "SystemConfig",
    "PAPER_SYSTEM",
    "NO_BATCHING",
    "NO_CACHE",
    "NO_CONTROL",
    "NO_FANOUT",
    "NO_HEALTH",
    "NO_OBSERVABILITY",
    "NO_RESILIENCE",
    "NO_SLO",
    "THREADED",
]

_CONFIG_NAMES = ("integrated", "loopback", "networked")

#: Default client policy: no deadlines, retries, or hedging — the
#: paper's original wait-forever harness behavior.
NO_RESILIENCE = ResilienceConfig()


@dataclass(frozen=True)
class SloConfig:
    """Declared SLO for the live burn-rate monitor (:mod:`repro.obs.live`).

    The SLO is a latency/goodput objective: a request is *good* when it
    completes without error/shed and its sojourn (measured from the
    ideal open-loop arrival instant, the coordinated-omission-safe
    definition) is at most ``target``. Per fixed-width window the
    monitor counts good completions against attempts *sent*, so stuck
    work burns budget while it queues — a replica that stops answering
    cannot hide by never producing a bad completion.

    Burn rate over a trailing horizon = (bad fraction) / (1 -
    ``objective``). The monitor fires when the burn rate exceeds its
    threshold over *both* a fast horizon (``fast_windows`` windows,
    threshold ``fast_burn``) and a slow one (``slow_windows``,
    ``slow_burn``) — the multi-window multi-burn-rate SRE idiom: slow
    confirms magnitude, fast confirms it is still happening. Hysteresis:
    a firing alert clears only when both burn rates fall below
    ``clear_factor`` times their thresholds, so a signal sitting at the
    threshold cannot flap.

    Attributes
    ----------
    enabled:
        Master switch. Off (the default) constructs nothing; the
        completion hot paths keep their single ``is None`` test.
    target:
        Latency target in seconds (sojourn at or under it is good).
    objective:
        Required good fraction in (0, 1); ``1 - objective`` is the
        error budget the burn rate is stated against.
    window:
        Sketch/burn bucket width in seconds (wall-clock live,
        virtual-time in the simulator).
    fast_windows / slow_windows:
        Trailing horizons in windows for the two burn rates.
    fast_burn / slow_burn:
        Burn-rate thresholds for the fast and slow horizons.
    clear_factor:
        Hysteresis factor in (0, 1]: clear when both burn rates drop
        below ``factor * threshold``.
    exemplars_per_window:
        Slowest completions retained per window with their full
        timestamp chains (0 disables exemplar capture).
    """

    enabled: bool = False
    target: float = 0.1
    objective: float = 0.99
    window: float = 1.0
    fast_windows: int = 3
    slow_windows: int = 12
    fast_burn: float = 6.0
    slow_burn: float = 3.0
    clear_factor: float = 0.5
    exemplars_per_window: int = 5

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError("target must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must lie in (0, 1)")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.fast_windows < 1:
            raise ValueError("fast_windows must be >= 1")
        if self.slow_windows < self.fast_windows:
            raise ValueError("slow_windows must be >= fast_windows")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn-rate thresholds must be positive")
        if not 0.0 < self.clear_factor <= 1.0:
            raise ValueError("clear_factor must lie in (0, 1]")
        if self.exemplars_per_window < 0:
            raise ValueError("exemplars_per_window must be >= 0")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    @property
    def fast_horizon(self) -> float:
        """Fast alerting horizon in seconds."""
        return self.fast_windows * self.window

    @property
    def slow_horizon(self) -> float:
        """Slow alerting horizon in seconds."""
        return self.slow_windows * self.window


#: Default: no SLO declared, no live monitor constructed.
NO_SLO = SloConfig()


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing/metrics policy for one run (see :mod:`repro.obs`).

    Attributes
    ----------
    tracing:
        Master switch. Off (the default) constructs nothing: no
        tracer, no registry, no sampler thread — the instrumented hot
        paths see ``None`` hooks, keeping measurement overhead within
        noise of the uninstrumented harness.
    trace_capacity:
        Ring-buffer bound in events. Overflow evicts the oldest events
        and is reported (``obs.dropped``), never silent.
    metrics_interval:
        Sampling cadence (seconds — wall-clock live, virtual-time in
        the simulator) for the metrics time series.
    slo:
        Declared SLO for the streaming live-observability engine
        (windowed sketches, burn-rate alerting, exemplar capture —
        see :class:`SloConfig` and :mod:`repro.obs.live`). Requires
        ``tracing`` (alert trace events and exemplar chains live in
        the trace stream). Off by default.
    """

    tracing: bool = False
    trace_capacity: int = 262_144
    metrics_interval: float = 0.05
    slo: SloConfig = NO_SLO

    def __post_init__(self) -> None:
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be positive")
        if self.slo.enabled and not self.tracing:
            raise ValueError(
                "SLO monitoring needs the trace stream: set tracing=True "
                "alongside slo=SloConfig(enabled=True, ...)"
            )


#: Default: observability entirely off (the hot paths stay bare).
NO_OBSERVABILITY = ObservabilityConfig()

_EXECUTION_MODES = ("threaded", "process")
_START_METHODS = ("fork", "spawn")


@dataclass(frozen=True)
class ExecutionConfig:
    """Where replica worker pools execute (see DESIGN.md §12).

    Attributes
    ----------
    mode:
        ``"threaded"`` (default) runs every replica's worker pool as
        threads in the harness process — deterministic, bit-identical
        with all prior builds, but aggregate throughput is GIL-capped.
        ``"process"`` runs each replica in its own OS process behind
        :class:`repro.core.transport.ProcessTransport`: requests and
        batched completion records travel over pipes, and aggregate
        throughput scales with cores.
    start_method:
        ``multiprocessing`` start method for replica processes.
        ``"fork"`` (default) inherits the already-set-up application
        object for free; ``"spawn"`` requires the application and
        fault plan to be picklable.
    ipc_flush_interval:
        Child-side cadence (seconds) for flushing a status heartbeat
        (queue depth, busy/alive workers, fault counts) to the parent
        when no completions are flowing — the autoscaler's signal
        freshness bound. Completion records themselves are flushed
        immediately, coalesced into one framed message per batch.
    drain_timeout:
        Seconds a replica process is given to drain and exit after a
        shutdown message (scale-down join, end-of-run stop) before it
        is forcibly terminated.
    """

    mode: str = "threaded"
    start_method: str = "fork"
    ipc_flush_interval: float = 0.05
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.mode not in _EXECUTION_MODES:
            raise ValueError(
                f"execution mode must be one of {_EXECUTION_MODES}, "
                f"got {self.mode!r}"
            )
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )
        if self.ipc_flush_interval <= 0:
            raise ValueError("ipc_flush_interval must be positive")
        if self.drain_timeout <= 0:
            raise ValueError("drain_timeout must be positive")


#: Default execution substrate: the paper's single-process harness.
THREADED = ExecutionConfig()


@dataclass(frozen=True)
class FanoutConfig:
    """Scatter-gather request shape for sharded applications.

    With fan-out enabled, one *logical* request scatters into
    ``shards`` sub-requests — one pinned to every server instance,
    bypassing the balancer — and completes when the last shard
    responds (the gather point merges the per-shard partial
    responses). Measured latency is the logical request's sojourn:
    the max over its shards, which is what makes the tail grow with
    ``shards`` (tail at scale, Dean & Barroso 2013; see
    :mod:`repro.analysis.fanout` for the order-statistic prediction).

    Attributes
    ----------
    enabled:
        Off by default: requests route through the balancer unchanged.
        Note an *enabled* fan-out of 1 still runs the scatter/gather
        machinery (one sub-request per logical request) — it is the
        degenerate case the bit-identity tests pin against unsharded
        runs.
    shards:
        Fan-out width K. Must equal ``n_servers``: every shard holds a
        disjoint data partition, so a logical request must visit all
        of them.
    """

    enabled: bool = False
    shards: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")


#: Default request shape: no fan-out, requests route via the balancer.
NO_FANOUT = FanoutConfig()


@dataclass(frozen=True)
class CacheConfig:
    """The request/result caching tier (:mod:`repro.cache`).

    With caching enabled, server workers consult a shared cache before
    invoking the application: a hit serves the stored response for
    ``hit_cost`` seconds instead of the full service time. Apps opt in
    per request via ``Application.cache_key`` (None = uncacheable).
    The simulator draws synthetic Zipfian keys
    (``sim_keyspace``/``sim_theta``) for its requests and substitutes
    ``hit_cost`` for the sampled service draw on a hit — consuming the
    draw either way, so a disabled run's RNG streams are untouched and
    stay bit-identical per seed.

    Attributes
    ----------
    enabled:
        Off by default: the serving path is byte-for-byte the
        uncached one.
    policy:
        Replacement/admission policy: ``"lru"``, ``"lfu"``,
        ``"ttl"`` (LRU residence + required expiry) or ``"tinylfu"``
        (LRU gated by frequency-sketch admission).
    capacity:
        Maximum resident entries.
    ttl:
        Optional staleness bound in seconds. Required for the
        ``"ttl"`` policy; wraps any other policy when set.
    hit_cost:
        Service time a hit charges (lookup + serialization, no
        backend work).
    clear_at:
        Optional cold-restart instant, seconds from run start: the
        first access at or past it wipes the cache, modeling a
        redeploy that comes back with an empty cache.
    sim_keyspace / sim_theta:
        Popularity model for the simulator's synthetic key stream
        (Zipf over ``sim_keyspace`` keys, skew ``sim_theta``). Live
        runs ignore both: real apps key on their actual payloads.
    """

    enabled: bool = False
    policy: str = "lru"
    capacity: int = 128
    ttl: Optional[float] = None
    hit_cost: float = 50e-6
    clear_at: Optional[float] = None
    sim_keyspace: int = 512
    sim_theta: float = 0.9

    def __post_init__(self) -> None:
        if self.policy not in ("lru", "lfu", "ttl", "tinylfu"):
            raise ValueError(
                'cache policy must be one of "lru", "lfu", "ttl", '
                f'"tinylfu", got {self.policy!r}'
            )
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("cache ttl must be positive (or None)")
        if self.policy == "ttl" and self.ttl is None:
            raise ValueError('cache policy "ttl" requires a ttl')
        if self.hit_cost < 0:
            raise ValueError("cache hit_cost must be >= 0")
        if self.clear_at is not None and self.clear_at <= 0:
            raise ValueError("cache clear_at must be positive (or None)")
        if self.sim_keyspace < 1:
            raise ValueError("sim_keyspace must be >= 1")
        if self.sim_theta < 0:
            raise ValueError("sim_theta must be >= 0")


#: Default serving path: no caching tier, every request pays full service.
NO_CACHE = CacheConfig()


@dataclass(frozen=True)
class HarnessConfig:
    """One load-testing run's parameters.

    Attributes
    ----------
    configuration:
        Harness configuration name: integrated / loopback / networked.
    qps:
        Offered load (mean arrival rate) in queries per second.
    n_threads:
        Application worker threads.
    warmup_requests:
        Leading completions discarded to reach steady state.
    measure_requests:
        Completions actually measured.
    seed:
        RNG seed for the arrival schedule and payload stream; repeated
        runs use different seeds (hysteresis countermeasure, Sec. IV-C).
    one_way_delay:
        Modelled wire delay for the networked configuration.
    deterministic_arrivals:
        Use fixed interarrival gaps instead of exponential (testing /
        calibration only; real measurements keep the Poisson default).
    resilience:
        Client-side recovery policy (deadlines, retries, hedging);
        disabled by default.
    faults:
        Optional :class:`repro.faults.FaultPlan` injected into the
        transport / queue / worker / application layers.
    queue_capacity:
        Bound on the server request queue; arrivals beyond it are shed
        (admission control). ``None`` keeps the paper's unbounded
        queue. With ``n_servers > 1`` the bound applies per instance.
    n_servers:
        Number of independent server instances behind the balancer,
        each with its own request queue and worker pool. 1 reproduces
        the paper's original single-server harness shape.
    n_clients:
        Number of concurrent client (traffic-shaper) threads. The
        arrival schedule is split round-robin across clients, so the
        union of arrivals is identical at any client count — only the
        submission concurrency changes.
    balancer:
        Routing policy name (see :mod:`repro.core.balancer`):
        ``round_robin`` / ``random`` / ``power_of_two`` / ``jsq``.
    observability:
        Tracing/metrics policy (see :class:`ObservabilityConfig`);
        fully disabled by default.
    control:
        SLO-driven control plane (see
        :class:`repro.control.ControlPlaneConfig`): admission control,
        priority scheduling, replica autoscaling. Fully disabled by
        default; ``n_servers`` is then the fixed replica count, while
        an enabled autoscaler treats it as the *initial* count.
    batching:
        Dynamic request batching (see
        :class:`repro.batching.BatchingConfig`): workers dequeue
        size-or-deadline batches and service them with one application
        call. Fully disabled by default — the worker loop is then the
        original single-request loop, bit-identical per seed.
    load_profile:
        Optional piecewise load schedule as ``((duration_seconds,
        qps), ...)`` segments replacing the constant-``qps`` arrival
        schedule — e.g. a load step for control-plane experiments.
        ``measure_requests``/``warmup_requests`` are ignored when set;
        the profile's duration determines the offered request count,
        and every completion is measured.
    health:
        Failure-aware serving policy (see
        :class:`repro.health.HealthConfig`): per-replica health
        tracking, outlier ejection, circuit breakers, and the global
        retry budget. Fully disabled by default — the transport and
        client then hold no health hooks at all, keeping runs
        bit-identical with pre-health builds.
    scenario:
        Optional chaos :class:`repro.faults.Scenario` — a timed
        sequence of fault-plan phases played back by a scheduler
        thread (live) or engine events (simulator). Composes over
        ``faults`` as the steady-state base plan.
    execution:
        Execution substrate (see :class:`ExecutionConfig`):
        ``threaded`` (default, bit-identical with prior builds) or
        ``process`` (one OS process per replica — multi-core scaling).
        Process mode requires the ``integrated`` configuration and
        supports autoscaling, batching, health, resilience, static
        fault plans, and observability; admission control, priority
        scheduling, and chaos scenarios need shared-memory access to
        the replicas' queues and stay threaded-only.
    fanout:
        Scatter-gather request shape (see :class:`FanoutConfig`) for
        sharded applications: each logical request visits every server
        instance and completes at the gather point. Disabled by
        default — requests then route through the balancer unchanged.
        Requires ``n_servers == fanout.shards`` and an application
        exposing ``merge_responses`` (see
        :class:`repro.apps.ShardedApp`); composes with batching and
        observability, but not with resilience/control/health/faults
        (a retried, dropped, or rerouted sub-request would break the
        all-shards-answer gather contract) nor process execution
        (replica processes do not ship response payloads back).
    """

    configuration: str = "integrated"
    qps: float = 100.0
    n_threads: int = 1
    warmup_requests: int = 100
    measure_requests: int = 2000
    seed: int = 0
    one_way_delay: float = 25e-6
    deterministic_arrivals: bool = False
    resilience: ResilienceConfig = NO_RESILIENCE
    faults: Optional[FaultPlan] = None
    queue_capacity: Optional[int] = None
    n_servers: int = 1
    n_clients: int = 1
    balancer: str = "round_robin"
    observability: ObservabilityConfig = NO_OBSERVABILITY
    control: ControlPlaneConfig = NO_CONTROL
    batching: BatchingConfig = NO_BATCHING
    load_profile: Optional[Tuple[Tuple[float, float], ...]] = None
    health: HealthConfig = NO_HEALTH
    scenario: Optional[Scenario] = None
    execution: ExecutionConfig = THREADED
    fanout: FanoutConfig = NO_FANOUT
    cache: CacheConfig = NO_CACHE

    def __post_init__(self) -> None:
        if self.configuration not in _CONFIG_NAMES:
            raise ValueError(
                f"configuration must be one of {_CONFIG_NAMES}, "
                f"got {self.configuration!r}"
            )
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.warmup_requests < 0 or self.measure_requests < 1:
            raise ValueError("invalid request counts")
        if self.one_way_delay < 0:
            raise ValueError("one_way_delay must be non-negative")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.balancer not in BALANCERS:
            raise ValueError(
                f"balancer must be one of {sorted(BALANCERS)}, "
                f"got {self.balancer!r}"
            )
        if self.load_profile is not None:
            if not self.load_profile:
                raise ValueError("load_profile must have >= 1 segment")
            for segment in self.load_profile:
                if len(segment) != 2:
                    raise ValueError(
                        "load_profile segments are (duration, qps) pairs"
                    )
                duration, qps = segment
                if duration <= 0 or qps <= 0:
                    raise ValueError(
                        "load_profile durations and qps must be positive"
                    )
        if self.control.enabled and self.control.autoscaler is not None:
            scaler = self.control.autoscaler
            if not (
                scaler.min_servers <= self.n_servers <= scaler.max_servers
            ):
                raise ValueError(
                    "n_servers must lie within the autoscaler's "
                    "[min_servers, max_servers] band"
                )
        if self.execution.mode == "process":
            if self.configuration != "integrated":
                raise ValueError(
                    "process execution requires the 'integrated' "
                    "configuration: the replica pipe is the transport "
                    f"(got {self.configuration!r})"
                )
            if self.control.enabled and (
                self.control.admission is not None
                or self.control.priority is not None
            ):
                raise ValueError(
                    "admission control and priority scheduling need "
                    "shared-memory access to replica queues; process "
                    "execution supports the autoscaler only"
                )
            if self.scenario is not None:
                raise ValueError(
                    "chaos scenarios mutate fault plans at run time and "
                    "cannot reach replica processes; process execution "
                    "supports static fault plans only"
                )
        if self.fanout.enabled:
            if self.n_servers != self.fanout.shards:
                raise ValueError(
                    "fan-out requires n_servers == fanout.shards: each "
                    "shard holds a disjoint partition, so a logical "
                    "request must visit every server "
                    f"(n_servers={self.n_servers}, "
                    f"shards={self.fanout.shards})"
                )
            if self.resilience.enabled:
                raise ValueError(
                    "fan-out sub-requests are pinned to their shard; "
                    "retries/hedges would reroute them, so resilience "
                    "cannot be combined with fan-out"
                )
            if self.control.enabled or self.health.enabled:
                raise ValueError(
                    "control-plane and health policies drop or reroute "
                    "individual requests, which would break the "
                    "all-shards-answer gather contract; disable them "
                    "under fan-out"
                )
            if self.faults is not None or self.scenario is not None:
                raise ValueError(
                    "fault injection can drop sub-requests, leaving "
                    "gathers forever incomplete; fan-out does not "
                    "compose with faults/scenarios"
                )
            if self.execution.mode == "process":
                raise ValueError(
                    "replica processes do not ship response payloads "
                    "back to the parent, so the gather point cannot "
                    "merge; fan-out is threaded-only"
                )
        if self.cache.enabled:
            if self.batching.enabled:
                raise ValueError(
                    "the batched worker loop services whole batches "
                    "with one application call and has no per-request "
                    "hit path; caching does not compose with batching"
                )
            if self.fanout.enabled:
                raise ValueError(
                    "fan-out sub-requests carry partial per-shard "
                    "responses that are only meaningful to their "
                    "gather; caching does not compose with fan-out"
                )
            if self.execution.mode == "process":
                raise ValueError(
                    "the cache is shared in-process state; replica "
                    "processes cannot reach it, so caching is "
                    "threaded-only"
                )

    @property
    def total_requests(self) -> int:
        return self.warmup_requests + self.measure_requests

    # dataclasses.replace keeps these honest as fields are added: a
    # hand-copied field list would silently drop new ones.
    def with_seed(self, seed: int) -> "HarnessConfig":
        return dataclasses.replace(self, seed=seed)

    def with_qps(self, qps: float) -> "HarnessConfig":
        return dataclasses.replace(self, qps=qps)

    def replace(self, **changes) -> "HarnessConfig":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SystemConfig:
    """Machine description (the paper's Table II).

    Used by :mod:`repro.archsim` to size the cache hierarchy and by the
    simulator to document what system a calibration profile models.
    """

    name: str = "Xeon E5-2670 (SandyBridge)"
    cores: int = 8
    frequency_ghz: float = 2.4
    l1i_kb: int = 32
    l1i_ways: int = 8
    l1d_kb: int = 32
    l1d_ways: int = 8
    l2_kb: int = 256
    l2_ways: int = 8
    l3_mb: int = 20
    l3_ways: int = 20
    line_bytes: int = 64
    memory_gb: int = 32

    def __post_init__(self) -> None:
        for field_name in (
            "cores", "l1i_kb", "l1i_ways", "l1d_kb", "l1d_ways",
            "l2_kb", "l2_ways", "l3_mb", "l3_ways", "line_bytes",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")


#: The experimental system of Table II.
PAPER_SYSTEM = SystemConfig()

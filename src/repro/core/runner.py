"""Repeated-run measurement campaigns.

Single runs — even long ones — can be biased by performance hysteresis
(memory layout, JIT state, cache history). Following Sec. IV-C, the
runner repeats runs with re-randomized request streams and interarrival
times until the 95% confidence interval of every reported metric is
within the precision target (default 1%), then reports the averaged
metrics with their CIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..stats import MetricEstimate, RunController
from .config import HarnessConfig
from .harness import HarnessResult, run_harness

__all__ = ["CampaignResult", "run_campaign"]

_DEFAULT_METRICS = ("mean", "p95", "p99")


def _metrics_of(result: HarnessResult, names) -> Dict[str, float]:
    summary = result.sojourn
    values = {
        "mean": summary.mean,
        "p50": summary.p50,
        "p95": summary.p95,
        "p99": summary.p99,
    }
    return {name: values[name] for name in names}


@dataclass(frozen=True)
class CampaignResult:
    """Converged estimates across repeated randomized runs."""

    config: HarnessConfig
    estimates: Dict[str, MetricEstimate]
    runs: tuple
    converged: bool

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def value(self, metric: str) -> float:
        return self.estimates[metric].mean

    def describe(self) -> str:
        parts = [
            f"{name}: {est.mean * 1e3:.3f} ms "
            f"(+/- {est.relative_half_width * 100:.2f}%)"
            for name, est in sorted(self.estimates.items())
        ]
        status = "converged" if self.converged else "NOT converged"
        return f"{self.n_runs} runs, {status}; " + ", ".join(parts)


def run_campaign(
    app,
    config: HarnessConfig,
    metrics=_DEFAULT_METRICS,
    relative_precision: float = 0.01,
    min_runs: int = 3,
    max_runs: int = 20,
    run_fn: Optional[Callable[[object, HarnessConfig], HarnessResult]] = None,
) -> CampaignResult:
    """Repeat measurement runs until every metric's CI converges.

    ``run_fn`` defaults to the live harness (:func:`run_harness`); the
    simulator passes its own virtual-time runner, so the same campaign
    logic governs both modes.
    """
    controller = RunController(
        relative_precision=relative_precision,
        min_runs=min_runs,
        max_runs=max_runs,
    )
    run_fn = run_fn or run_harness
    results: List[HarnessResult] = []
    seed = config.seed
    while controller.should_continue():
        result = run_fn(app, config.with_seed(seed))
        results.append(result)
        controller.add_run(_metrics_of(result, metrics))
        seed += 1
    return CampaignResult(
        config=config,
        estimates=controller.estimates(),
        runs=tuple(results),
        converged=controller.converged(),
    )

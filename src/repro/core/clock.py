"""Clock abstraction shared by live runs and virtual-time simulation.

Every timing decision in the harness goes through a :class:`Clock` so
the same harness logic can run against the wall clock (live mode) or a
simulated clock (virtual-time mode). This is the mechanism that lets
the integrated configuration be "easy to run in simulation" (Sec. IV-B
of the paper): swap the clock, keep the methodology.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "WallClock", "VirtualClock"]


class Clock:
    """Minimal monotonic-clock interface (times in float seconds)."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep_until(self, deadline: float) -> None:
        raise NotImplementedError

    def sleep(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleep_until(self.now() + duration)


class WallClock(Clock):
    """Real time via ``time.perf_counter`` (monotonic, ns resolution)."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep_until(self, deadline: float) -> None:
        # Coarse sleep, then spin for the final stretch: time.sleep() on
        # Linux routinely overshoots by 50+ us, which would corrupt
        # open-loop interarrival times at high request rates.
        while True:
            remaining = deadline - self.now()
            if remaining <= 0:
                return
            if remaining > 0.001:
                time.sleep(remaining - 0.0005)
            elif remaining > 0.0002:
                time.sleep(0)
            # else: busy-wait


class VirtualClock(Clock):
    """Manually advanced clock for deterministic simulation.

    ``sleep_until`` simply advances the clock; there is no real waiting.
    Thread-safe so live-mode components can also be pointed at it in
    tests, though the discrete-event engine drives it single-threaded.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance_to(self, t: float) -> None:
        with self._lock:
            if t < self._now:
                raise ValueError(
                    f"virtual time cannot go backwards ({t} < {self._now})"
                )
            self._now = t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance by a negative duration")
        with self._lock:
            self._now += dt

    def sleep_until(self, deadline: float) -> None:
        with self._lock:
            if deadline > self._now:
                self._now = deadline

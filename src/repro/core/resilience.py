"""Client-side resilience: deadlines, retries, hedging.

Production clients of latency-critical services do not wait forever:
they bound each request with a deadline, retry transient failures with
exponential backoff and full jitter [AWS Architecture Blog 2015], and
optionally *hedge* — send a duplicate once the request has outlived a
high percentile of normal latency [Dean & Barroso, "The Tail at
Scale", CACM 2013]. :class:`ResilientClient` adds all three to the
live harness while preserving the open-loop guarantee: retries and
hedges are scheduled on a background timer wheel as *new arrivals* and
never block the traffic shaper, so injected faults cannot re-introduce
coordinated omission through the recovery path.

Latency accounting under failures follows the failure-aware rules the
statistics collector implements (see ``collector.py``): success
percentiles are measured over logical requests that met their
deadline, from the ideal generation instant; per-attempt percentiles
are measured over every attempt that produced a response.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .clock import Clock

__all__ = [
    "ResilienceConfig",
    "ResilientClient",
    "backoff_delay",
    "effective_attempt_timeout",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Client-side recovery policy for one run.

    Attributes
    ----------
    deadline:
        Per-request deadline in seconds, measured from the ideal
        (open-loop) generation instant. A logical request unresolved at
        its deadline is counted as ``timed_out``; a response arriving
        later is counted as ``late`` and excluded from success
        statistics. ``None`` disables deadlines (and with them, any
        recovery from dropped messages).
    attempt_timeout:
        How long to wait for one attempt before retrying. Defaults to
        ``deadline / (max_retries + 1)`` when retries and a deadline
        are both configured.
    max_retries:
        Retry budget per logical request (0 = never retry). Retries
        also trigger on failure responses (application errors, shed
        replies).
    backoff_base / backoff_cap:
        Exponential backoff with full jitter: the k-th retry waits
        ``uniform(0, min(cap, base * 2**k))`` seconds.
    hedge_after:
        If set, send one duplicate (hedge) attempt when no response has
        arrived this many seconds after the first send — typically an
        estimate of healthy p95 sojourn. First response wins.
    max_hedges:
        Hedge budget per logical request.
    """

    deadline: Optional[float] = None
    attempt_timeout: Optional[float] = None
    max_retries: int = 0
    backoff_base: float = 0.002
    backoff_cap: float = 0.1
    hedge_after: Optional[float] = None
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff parameters must be positive")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError("hedge_after must be positive")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any resilience mechanism is active."""
        return (
            self.deadline is not None
            or self.max_retries > 0
            or self.hedge_after is not None
        )


def backoff_delay(
    config: ResilienceConfig, rng: random.Random, retry_index: int
) -> float:
    """Full-jitter exponential backoff for the ``retry_index``-th retry."""
    cap = min(config.backoff_cap, config.backoff_base * (2.0 ** retry_index))
    return rng.uniform(0.0, cap)


def effective_attempt_timeout(
    config: ResilienceConfig,
    now: Optional[float] = None,
    deadline: Optional[float] = None,
) -> Optional[float]:
    """The per-attempt timeout, defaulted from the deadline if unset.

    When ``now`` and the request's absolute ``deadline`` are both
    given, the timeout is additionally clamped to the remaining
    deadline budget. Backoff sleeps between attempts consume wall time
    that the fixed per-attempt window knows nothing about, so without
    the clamp a late attempt keeps its full window even when the
    deadline lands inside it — its timer then fires after the request
    has already resolved as timed out, pure dead time (and in the
    simulator, virtual time extending past the last deadline).
    """
    if config.attempt_timeout is not None:
        base = config.attempt_timeout
    elif config.deadline is not None and config.max_retries > 0:
        base = config.deadline / (config.max_retries + 1)
    else:
        return None
    if now is not None and deadline is not None:
        base = min(base, max(deadline - now, 0.0))
    return base


class _TimerHandle:
    """One scheduled callback; ``cancel`` makes firing a no-op."""

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable, args: tuple) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False


class _Scheduler:
    """Minimal timer wheel: run callables at absolute clock instants.

    One daemon thread sleeps until the earliest event; callbacks run
    outside the internal lock so they may schedule further events.
    :meth:`at`/:meth:`after` return a :class:`_TimerHandle` that
    :meth:`cancel` turns into a no-op — a resolved call's outstanding
    deadline/hedge/timeout entries are cancelled instead of burning
    timer-wheel wakeups on dead calls at high QPS. Pending events are
    discarded on stop.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._heap: list = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._stopped = False
        self._thread = threading.Thread(
            target=self._loop, name="tb-resilience-timer", daemon=True
        )
        self._thread.start()

    def at(self, when: float, fn: Callable, *args) -> _TimerHandle:
        handle = _TimerHandle(fn, args)
        with self._wakeup:
            if self._stopped:
                handle.cancelled = True
                return handle
            heapq.heappush(self._heap, (when, next(self._seq), handle))
            self._wakeup.notify()
        return handle

    def after(self, delay: float, fn: Callable, *args) -> _TimerHandle:
        return self.at(self._clock.now() + max(delay, 0.0), fn, *args)

    @staticmethod
    def cancel(handle: _TimerHandle) -> None:
        handle.cancelled = True

    def pending(self) -> int:
        """Live (uncancelled) entries still on the heap (test hook)."""
        with self._lock:
            return sum(1 for _, _, h in self._heap if not h.cancelled)

    def _loop(self) -> None:
        while True:
            with self._wakeup:
                # Prune cancelled leaders so they neither schedule a
                # wakeup nor count as work.
                while self._heap and self._heap[0][2].cancelled:
                    heapq.heappop(self._heap)
                if self._stopped:
                    return
                if not self._heap:
                    self._wakeup.wait()
                    continue
                when, _, handle = self._heap[0]
                now = self._clock.now()
                if when > now:
                    self._wakeup.wait(when - now)
                    continue
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
            handle.fn(*handle.args)

    def stop(self) -> None:
        with self._wakeup:
            self._stopped = True
            self._wakeup.notify_all()
        self._thread.join(5.0)


class _Call:
    """State of one logical request across its attempts."""

    __slots__ = (
        "logical_id",
        "payload",
        "generated_at",
        "deadline",
        "attempt_seq",
        "cur_attempt",
        "retries",
        "retry_pending",
        "hedges",
        "resolved",
        "last_server",
        "timers",
    )

    def __init__(
        self, logical_id: int, payload, generated_at: float,
        deadline: Optional[float],
    ) -> None:
        self.logical_id = logical_id
        self.payload = payload
        self.generated_at = generated_at
        self.deadline = deadline
        self.attempt_seq = 0
        self.cur_attempt = 0
        self.retries = 0
        self.retry_pending = False
        self.hedges = 0
        self.resolved = False
        #: Server the most recent primary attempt was routed to; a
        #: hedge asks the balancer to pick a *different* replica.
        self.last_server: Optional[int] = None
        #: Outstanding timer handles (live client only); cancelled on
        #: resolution so dead calls stop costing timer-wheel work.
        self.timers: list = []


class ResilientClient:
    """Deadline/retry/hedge wrapper over a live transport.

    Installs itself as the transport's completion hook and takes over
    outcome accounting: successful attempts that beat the deadline feed
    the latency statistics; timeouts, shed replies, errors, and late
    responses are tallied separately, so percentiles stay sound under
    injected faults. Use :meth:`send` in place of ``transport.send``
    and :meth:`drain` in place of ``transport.drain``.

    Live mode only — requires a real (wall) clock, since recovery
    timers sleep on it.
    """

    def __init__(
        self,
        transport,
        clock: Clock,
        config: ResilienceConfig,
        collector,
        seed: int = 0,
        tracer=None,
        health=None,
    ) -> None:
        self._transport = transport
        self._clock = clock
        self._config = config
        self._collector = collector
        self._tracer = tracer
        #: Optional repro.health.HealthManager: feeds the retry budget
        #: and reports attempt timeouts (the one failure signal the
        #: transport completion path never sees).
        self._health = health
        self._rng = random.Random(seed ^ 0x8E511)
        self._attempt_timeout = effective_attempt_timeout(config)
        self._lock = threading.Lock()
        self._resolved_cv = threading.Condition(self._lock)
        self._calls: Dict[int, _Call] = {}
        self._ids = itertools.count()
        self._unresolved = 0
        self._scheduler = _Scheduler(clock)
        transport.set_completion_hook(self._on_attempt_complete)

    # -- client-facing API ---------------------------------------------
    def send(self, generated_at: float, payload) -> None:
        """Submit one logical request (traffic-shaper entry point)."""
        config = self._config
        logical_id = next(self._ids)
        deadline = (
            generated_at + config.deadline
            if config.deadline is not None
            else None
        )
        call = _Call(logical_id, payload, generated_at, deadline)
        with self._lock:
            self._calls[logical_id] = call
            self._unresolved += 1
        self._collector.note("offered")
        if self._health is not None:
            self._health.on_first_attempt()
        self._send_attempt(call, kind="first")
        if deadline is not None:
            call.timers.append(
                self._scheduler.at(deadline, self._on_deadline, call)
            )
        if config.hedge_after is not None and config.max_hedges > 0:
            call.timers.append(
                self._scheduler.after(
                    config.hedge_after, self._maybe_hedge, call
                )
            )

    def drain(self, timeout: float = 300.0) -> None:
        """Block until every logical request has resolved."""
        with self._resolved_cv:
            if not self._resolved_cv.wait_for(
                lambda: self._unresolved == 0, timeout
            ):
                raise TimeoutError(
                    f"{self._unresolved} logical requests still unresolved"
                )

    def close(self) -> None:
        self._scheduler.stop()

    # -- attempt lifecycle ---------------------------------------------
    def _send_attempt(self, call: _Call, kind: str) -> None:
        with self._lock:
            if call.resolved:
                return
            call.attempt_seq += 1
            attempt_no = call.attempt_seq
            if kind != "hedge":
                call.cur_attempt = attempt_no
        self._collector.note("attempts")
        if kind == "retry":
            self._collector.note("retries")
        elif kind == "hedge":
            self._collector.note("hedges")
        if self._tracer is not None and kind != "first":
            self._tracer.emit(
                kind, self._clock.now(), logical_id=call.logical_id,
                attempt=attempt_no,
            )
        server_id = self._transport.send(
            call.generated_at,
            call.payload,
            logical_id=call.logical_id,
            attempt=attempt_no,
            deadline=call.deadline,
            # A hedge duplicates work still in flight; sending it to the
            # replica already holding the slow attempt would be
            # pointless, so steer the balancer away from it.
            avoid_server=call.last_server if kind == "hedge" else None,
        )
        if kind != "hedge":
            call.last_server = server_id
        if kind != "hedge" and self._attempt_timeout is not None:
            timeout = effective_attempt_timeout(
                self._config, now=self._clock.now(), deadline=call.deadline
            )
            if timeout is not None and timeout > 0.0:
                call.timers.append(
                    self._scheduler.after(
                        timeout, self._on_attempt_timeout, call, attempt_no
                    )
                )

    def _on_attempt_complete(self, request) -> bool:
        """Transport completion hook; returns True (always handled)."""
        if request.discard:
            return True  # injected duplicate: response intentionally ignored
        now = request.response_received_at
        if request.sent_at is not None:
            self._collector.record_attempt(max(now - request.sent_at, 0.0))
        with self._lock:
            call = self._calls.get(request.logical_id)
        if call is None or call.resolved:
            self._collector.note("late")
            if self._tracer is not None:
                self._tracer.emit(
                    "late", now, logical_id=request.logical_id,
                    request_id=request.request_id, attempt=request.attempt,
                    server_id=request.server_id,
                )
            return True
        if request.shed:
            self._collector.note("shed")
            self._retry_or_fail(call, request.attempt, "failed")
            return True
        if request.error is not None:
            self._collector.note("errors")
            self._retry_or_fail(call, request.attempt, "failed")
            return True
        if call.deadline is not None and now > call.deadline:
            # Response and deadline raced; the deadline wins so goodput
            # counts only deadline-met completions.
            self._resolve(call, "timed_out")
            return True
        if self._resolve(call, "succeeded"):
            self._collector.add(request.finish())
        return True

    def _on_attempt_timeout(self, call: _Call, attempt_no: int) -> None:
        with self._lock:
            if call.resolved or attempt_no != call.cur_attempt:
                return
            server_id = call.last_server
        if self._health is not None and server_id is not None:
            # The transport completion hook never sees a timed-out
            # attempt; report the failure against the routed replica.
            self._health.record_attempt(
                server_id, None, False, self._clock.now()
            )
        self._retry_or_fail(call, attempt_no, "timed_out")

    def _retry_or_fail(
        self, call: _Call, attempt_no: int, exhausted_outcome: str
    ) -> None:
        config = self._config
        with self._lock:
            if call.resolved or attempt_no < call.cur_attempt:
                return
            if call.retry_pending:
                return
            if call.retries < config.max_retries:
                call.retries += 1
                call.retry_pending = True
                delay = backoff_delay(config, self._rng, call.retries - 1)
                schedule_retry = True
                if (
                    call.deadline is not None
                    and self._clock.now() + delay >= call.deadline
                ):
                    # The retry could not respond before the deadline;
                    # let the deadline event resolve the call instead.
                    schedule_retry = False
                    call.retry_pending = False
                elif self._health is not None and not (
                    self._health.try_spend_retry(self._clock.now())
                ):
                    # Retry budget exhausted: give the slot back so a
                    # later failure may retry once tokens refill, and
                    # fail now when no deadline will resolve the call.
                    schedule_retry = False
                    call.retry_pending = False
                    call.retries -= 1
                    if call.deadline is None:
                        self._resolve_locked(call, exhausted_outcome)
                        return
            else:
                schedule_retry = False
                if call.deadline is None:
                    self._resolve_locked(call, exhausted_outcome)
                return
        if schedule_retry:
            call.timers.append(
                self._scheduler.after(delay, self._send_retry, call)
            )

    def _send_retry(self, call: _Call) -> None:
        with self._lock:
            if call.resolved:
                return
            call.retry_pending = False
        self._send_attempt(call, kind="retry")

    def _maybe_hedge(self, call: _Call) -> None:
        with self._lock:
            if call.resolved or call.hedges >= self._config.max_hedges:
                return
            call.hedges += 1
        self._send_attempt(call, kind="hedge")

    def _on_deadline(self, call: _Call) -> None:
        self._resolve(call, "timed_out")

    # -- resolution ----------------------------------------------------
    def _resolve(self, call: _Call, outcome: str) -> bool:
        with self._lock:
            return self._resolve_locked(call, outcome)

    def _resolve_locked(self, call: _Call, outcome: str) -> bool:
        if call.resolved:
            return False
        call.resolved = True
        # Disarm the call's outstanding deadline/hedge/timeout/retry
        # entries so the timer wheel stops paying for a dead call.
        for handle in call.timers:
            self._scheduler.cancel(handle)
        del call.timers[:]
        self._calls.pop(call.logical_id, None)
        self._unresolved -= 1
        if self._unresolved == 0:
            self._resolved_cv.notify_all()
        self._collector.note(outcome)
        return True

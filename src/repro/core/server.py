"""Application server: a worker-thread pool over the request queue.

Each worker pulls requests from the shared :class:`RequestQueue`,
stamps service start/end around the application's ``process`` call,
and hands the completed request to a response callback (the transport's
reply path). This mirrors the paper's harness structure (Fig. 1): the
request queue is shared among application threads, and the number of
workers is the "threads" axis of Figs. 4 and 7.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from typing import Callable, List

from ..faults import InjectedFault
from .clock import Clock
from .queueing import QueueClosed, RequestQueue
from .request import Request

__all__ = ["Server"]


class Server:
    """Worker pool that services requests from a queue.

    Parameters
    ----------
    app:
        Object with a ``process(payload) -> response`` method (the
        :class:`repro.apps.base.Application` interface).
    queue:
        Shared request queue (already instrumented).
    clock:
        Time source for service start/end stamps.
    n_threads:
        Number of worker threads.
    respond:
        Callback invoked with each completed :class:`Request`.
    injector:
        Optional :class:`repro.faults.FaultInjector` driving worker
        pauses, worker crashes, and injected application errors.
    server_id:
        Index of this instance in a multi-server topology (0 in the
        classic single-server shape); worker threads are named after it.
    batching:
        Optional :class:`repro.batching.BatchPolicy`. When set, workers
        run the batched loop: they dequeue size-or-deadline batches via
        :meth:`RequestQueue.get_batch` and service each batch with one
        application call (``handle_batch`` when the app provides it,
        else a per-request ``process`` loop). When ``None`` (default)
        the original single-request loop runs, untouched.
    cache:
        Optional :class:`repro.cache.RequestCache` shared across all
        server instances. Workers consult it before ``process``: a hit
        short-circuits the application call, serving the cached
        response for the configured near-zero hit cost. Requests whose
        app declines a key (``cache_key`` returns None) bypass the
        cache entirely. When ``None`` (default) the service path is
        untouched.
    """

    def __init__(
        self,
        app,
        queue: RequestQueue,
        clock: Clock,
        n_threads: int = 1,
        respond: Callable[[Request], None] = None,
        injector=None,
        server_id: int = 0,
        batching=None,
        cache=None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one worker thread")
        self._app = app
        self._queue = queue
        self._clock = clock
        self._respond = respond or (lambda req: None)
        self._injector = injector
        self.server_id = server_id
        self._batching = batching
        self._cache = cache
        self._batch_seq = itertools.count()
        loop = self._worker_loop if batching is None else self._batch_worker_loop
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=loop,
                name=f"tb-s{server_id}-worker-{i}",
                daemon=True,
            )
            for i in range(n_threads)
        ]
        self._started = False
        self._errors: List[str] = []
        self._errors_lock = threading.Lock()
        self._alive = n_threads
        self._alive_lock = threading.Lock()
        # Monitoring only: plain int updates (GIL-atomic enough for a
        # sampled gauge), and a tracer installed only when observability
        # is on — see Transport.set_observability.
        self._busy = 0
        self._tracer = None

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    @property
    def busy_workers(self) -> int:
        """Workers currently inside the application service window."""
        return self._busy

    def set_tracer(self, tracer) -> None:
        """Install a tracer for worker-layer fault events."""
        self._tracer = tracer

    @property
    def alive_workers(self) -> int:
        """Workers still serving: ``n_threads`` minus injected crashes.

        Capacity lost to crash faults is observable here instead of
        silently degrading throughput.
        """
        with self._alive_lock:
            return self._alive

    def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for t in self._threads:
            t.start()

    def _worker_loop(self) -> None:
        injector = self._injector
        while True:
            try:
                request = self._queue.get()
            except QueueClosed:
                return
            request.service_start_at = self._clock.now()
            self._busy += 1
            if injector is not None:
                pause = injector.worker_pause()
                if pause > 0.0:
                    if self._tracer is not None:
                        self._tracer.emit(
                            "fault_pause", request.service_start_at,
                            logical_id=request.logical_id,
                            request_id=request.request_id,
                            attempt=request.attempt,
                            server_id=self.server_id, value=pause,
                        )
                    # GC/compaction-style stall inside the service window.
                    self._clock.sleep(pause)
            # Caching tier: consult before touching the application. A
            # hit serves the stored response for the configured hit
            # cost; the backend never runs (injected app errors model
            # backend failures, so a hit skips those too).
            cache_key = None
            if self._cache is not None:
                cache_key = self._app.cache_key(request.payload)
                if cache_key is not None:
                    hit, value = self._cache.lookup(
                        cache_key, self._clock.now(),
                        logical_id=request.logical_id,
                        request_id=request.request_id,
                        attempt=request.attempt,
                        server_id=self.server_id,
                    )
                    if hit:
                        request.response = value
                        request.cache_hit = True
                        if self._cache.hit_cost > 0.0:
                            self._clock.sleep(self._cache.hit_cost)
            if not request.cache_hit:
                try:
                    if injector is not None and injector.app_error():
                        if self._tracer is not None:
                            self._tracer.emit(
                                "fault_app_error", self._clock.now(),
                                logical_id=request.logical_id,
                                request_id=request.request_id,
                                attempt=request.attempt,
                                server_id=self.server_id,
                            )
                        raise InjectedFault("injected application error")
                    request.response = self._app.process(request.payload)
                except Exception:  # noqa: BLE001 - report, don't kill the worker
                    request.error = traceback.format_exc()
                    with self._errors_lock:
                        self._errors.append(request.error)
                if cache_key is not None and request.error is None:
                    # Only successful responses are cacheable.
                    self._cache.store(
                        cache_key, request.response, self._clock.now(),
                        logical_id=request.logical_id,
                        request_id=request.request_id,
                        attempt=request.attempt,
                        server_id=self.server_id,
                    )
            request.service_end_at = self._clock.now()
            self._busy -= 1
            self._respond(request)
            if injector is not None and injector.worker_crash():
                # Injected crash: the pool permanently loses a worker.
                with self._alive_lock:
                    self._alive -= 1
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_crash", self._clock.now(),
                        server_id=self.server_id,
                    )
                return

    def _batch_worker_loop(self) -> None:
        """Batched variant of :meth:`_worker_loop`.

        Dequeues size-or-deadline batches (one priority class each, see
        :meth:`~repro.core.queueing.RequestQueue.get_batch`) and
        services every member with a single application call —
        ``handle_batch`` when the app implements it, else a plain
        ``process`` loop. All members share one ``service_start_at`` /
        ``service_end_at`` window; per-request cost attribution divides
        the window by the recorded ``batch_size``.
        """
        injector = self._injector
        handle_batch = getattr(self._app, "handle_batch", None)
        while True:
            try:
                batch = self._queue.get_batch(self._batching)
            except QueueClosed:
                return
            seq = next(self._batch_seq)
            size = len(batch)
            start = self._clock.now()
            for request in batch:
                request.service_start_at = start
                request.batch_size = size
            if self._tracer is not None:
                for request in batch:
                    self._tracer.emit(
                        "batch_form", start,
                        logical_id=request.logical_id,
                        request_id=request.request_id,
                        attempt=request.attempt,
                        server_id=self.server_id, value=float(seq),
                    )
                self._tracer.emit(
                    "batch_start", start,
                    server_id=self.server_id, value=float(seq),
                )
            self._busy += 1
            if injector is not None:
                pause = injector.worker_pause()
                if pause > 0.0:
                    if self._tracer is not None:
                        self._tracer.emit(
                            "fault_pause", start,
                            server_id=self.server_id, value=pause,
                        )
                    # One stall covers the whole batch: the pause models
                    # a worker-level freeze, not per-request slowness.
                    self._clock.sleep(pause)
            # Injected application errors keep per-request semantics:
            # a failed member consumes no service and gets an error
            # response; the rest of the batch is processed normally.
            failed = (
                [injector.app_error() for _ in batch]
                if injector is not None
                else [False] * size
            )
            served = [r for r, bad in zip(batch, failed) if not bad]
            try:
                if handle_batch is not None:
                    responses = handle_batch([r.payload for r in served])
                else:
                    responses = [self._app.process(r.payload) for r in served]
                if len(responses) != len(served):
                    raise RuntimeError(
                        f"handle_batch returned {len(responses)} responses "
                        f"for {len(served)} payloads"
                    )
                for request, response in zip(served, responses):
                    request.response = response
            except Exception:  # noqa: BLE001 - report, don't kill the worker
                err = traceback.format_exc()
                for request in served:
                    request.error = err
                with self._errors_lock:
                    self._errors.append(err)
            for request, bad in zip(batch, failed):
                if not bad:
                    continue
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_app_error", self._clock.now(),
                        logical_id=request.logical_id,
                        request_id=request.request_id,
                        attempt=request.attempt,
                        server_id=self.server_id,
                    )
                request.error = "InjectedFault: injected application error"
                with self._errors_lock:
                    self._errors.append(request.error)
            end = self._clock.now()
            for request in batch:
                request.service_end_at = end
            self._busy -= 1
            if self._tracer is not None:
                self._tracer.emit(
                    "batch_end", end,
                    server_id=self.server_id, value=float(seq),
                )
            for request in batch:
                self._respond(request)
            if injector is not None and any(
                injector.worker_crash() for _ in batch
            ):
                # Injected crash: the pool permanently loses a worker.
                with self._alive_lock:
                    self._alive -= 1
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_crash", self._clock.now(),
                        server_id=self.server_id,
                    )
                return

    def shutdown(
        self, timeout: float = 30.0, discard_pending: bool = False
    ) -> None:
        """Close the queue and join all workers.

        ``timeout`` bounds the whole shutdown, not each join: a shared
        deadline is computed once and each join waits only the
        remaining budget. ``discard_pending`` drops requests still
        queued instead of serving them — the end-of-run path, where
        every waiter has already been resolved or timed out.
        """
        self._queue.close(discard_pending=discard_pending)
        if not self._started:
            return
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                raise RuntimeError(f"worker {t.name} failed to stop")

    @property
    def errors(self) -> List[str]:
        with self._errors_lock:
            return list(self._errors)

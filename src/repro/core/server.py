"""Application server: a worker-thread pool over the request queue.

Each worker pulls requests from the shared :class:`RequestQueue`,
stamps service start/end around the application's ``process`` call,
and hands the completed request to a response callback (the transport's
reply path). This mirrors the paper's harness structure (Fig. 1): the
request queue is shared among application threads, and the number of
workers is the "threads" axis of Figs. 4 and 7.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable, List

from ..faults import InjectedFault
from .clock import Clock
from .queueing import QueueClosed, RequestQueue
from .request import Request

__all__ = ["Server"]


class Server:
    """Worker pool that services requests from a queue.

    Parameters
    ----------
    app:
        Object with a ``process(payload) -> response`` method (the
        :class:`repro.apps.base.Application` interface).
    queue:
        Shared request queue (already instrumented).
    clock:
        Time source for service start/end stamps.
    n_threads:
        Number of worker threads.
    respond:
        Callback invoked with each completed :class:`Request`.
    injector:
        Optional :class:`repro.faults.FaultInjector` driving worker
        pauses, worker crashes, and injected application errors.
    server_id:
        Index of this instance in a multi-server topology (0 in the
        classic single-server shape); worker threads are named after it.
    """

    def __init__(
        self,
        app,
        queue: RequestQueue,
        clock: Clock,
        n_threads: int = 1,
        respond: Callable[[Request], None] = None,
        injector=None,
        server_id: int = 0,
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one worker thread")
        self._app = app
        self._queue = queue
        self._clock = clock
        self._respond = respond or (lambda req: None)
        self._injector = injector
        self.server_id = server_id
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop,
                name=f"tb-s{server_id}-worker-{i}",
                daemon=True,
            )
            for i in range(n_threads)
        ]
        self._started = False
        self._errors: List[str] = []
        self._errors_lock = threading.Lock()
        self._alive = n_threads
        self._alive_lock = threading.Lock()
        # Monitoring only: plain int updates (GIL-atomic enough for a
        # sampled gauge), and a tracer installed only when observability
        # is on — see Transport.set_observability.
        self._busy = 0
        self._tracer = None

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    @property
    def busy_workers(self) -> int:
        """Workers currently inside the application service window."""
        return self._busy

    def set_tracer(self, tracer) -> None:
        """Install a tracer for worker-layer fault events."""
        self._tracer = tracer

    @property
    def alive_workers(self) -> int:
        """Workers still serving: ``n_threads`` minus injected crashes.

        Capacity lost to crash faults is observable here instead of
        silently degrading throughput.
        """
        with self._alive_lock:
            return self._alive

    def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for t in self._threads:
            t.start()

    def _worker_loop(self) -> None:
        injector = self._injector
        while True:
            try:
                request = self._queue.get()
            except QueueClosed:
                return
            request.service_start_at = self._clock.now()
            self._busy += 1
            if injector is not None:
                pause = injector.worker_pause()
                if pause > 0.0:
                    if self._tracer is not None:
                        self._tracer.emit(
                            "fault_pause", request.service_start_at,
                            logical_id=request.logical_id,
                            request_id=request.request_id,
                            attempt=request.attempt,
                            server_id=self.server_id, value=pause,
                        )
                    # GC/compaction-style stall inside the service window.
                    self._clock.sleep(pause)
            try:
                if injector is not None and injector.app_error():
                    if self._tracer is not None:
                        self._tracer.emit(
                            "fault_app_error", self._clock.now(),
                            logical_id=request.logical_id,
                            request_id=request.request_id,
                            attempt=request.attempt,
                            server_id=self.server_id,
                        )
                    raise InjectedFault("injected application error")
                request.response = self._app.process(request.payload)
            except Exception:  # noqa: BLE001 - report, don't kill the worker
                request.error = traceback.format_exc()
                with self._errors_lock:
                    self._errors.append(request.error)
            request.service_end_at = self._clock.now()
            self._busy -= 1
            self._respond(request)
            if injector is not None and injector.worker_crash():
                # Injected crash: the pool permanently loses a worker.
                with self._alive_lock:
                    self._alive -= 1
                if self._tracer is not None:
                    self._tracer.emit(
                        "fault_crash", self._clock.now(),
                        server_id=self.server_id,
                    )
                return

    def shutdown(self, timeout: float = 30.0) -> None:
        """Close the queue and join all workers.

        ``timeout`` bounds the whole shutdown, not each join: a shared
        deadline is computed once and each join waits only the
        remaining budget.
        """
        self._queue.close()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                raise RuntimeError(f"worker {t.name} failed to stop")

    @property
    def errors(self) -> List[str]:
        with self._errors_lock:
            return list(self._errors)

"""Scatter-gather fan-out: one logical request, K pinned sub-requests.

The request shape of sharded services (Dean & Barroso, "The Tail at
Scale", CACM 2013): a logical query cannot be answered by any single
replica because each one holds a disjoint partition of the data, so
the client *scatters* a sub-request to every shard and *gathers* the
partial responses — the logical request completes when the slowest
shard does. End-to-end latency is therefore a max over K leaf
latencies, which is why the end-to-end tail climbs with K even while
every individual shard's tail stays flat
(:func:`repro.analysis.fanout.fanout_quantile` is the order-statistic
prediction this module's measurements are validated against).

Layering: :class:`FanoutGatherer` is the completion-side gather point
shared verbatim by the live harness and the discrete-event simulator
— same bookkeeping, same critical-shard attribution, same trace
events. :class:`FanoutClient` is the live send side (scatters via
``Transport.send(server_id=...)`` pinning); the simulator builds its
own pre-scheduled sub-requests (see :mod:`repro.sim.latency_sim`) and
feeds completions into the same gatherer, which is what keeps a K=1
fan-out run bit-identical to an unsharded run per seed.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..stats import LatencySummary, quantile
from .request import Request

__all__ = ["FanoutClient", "FanoutGatherer", "FanoutStats"]


class FanoutStats:
    """Per-shard leaf latencies and critical-shard attribution.

    Leaf samples are *post-warmup* sub-request sojourns (one per shard
    per measured gather), the raw material for the tail-at-scale
    prediction: pooled across shards they estimate the leaf latency
    distribution whose ``q**(1/K)`` quantile should match the measured
    end-to-end ``q`` quantile when leaves are roughly iid.
    """

    def __init__(self, shards: int) -> None:
        self.shards = shards
        #: Post-warmup leaf sojourns, per shard.
        self.shard_samples: List[List[float]] = [[] for _ in range(shards)]
        #: How often each shard was the gather's slowest (measured only).
        self.critical_counts: List[int] = [0] * shards
        #: Successful gathers (all shards responded, merge ran).
        self.completed = 0
        #: Gathers spoiled by a shed/errored sub-request.
        self.failed = 0

    def leaf_samples(self) -> List[float]:
        """All post-warmup leaf sojourns, pooled across shards."""
        return [s for samples in self.shard_samples for s in samples]

    def shard_summary(self, shard: int) -> Optional[LatencySummary]:
        """Latency summary for one shard, or None with no measured leaves.

        A short run can leave a shard with only warmup (or only
        shed/failed) gathers; that is a reporting gap, not a crash —
        callers render it as "-".
        """
        samples = self.shard_samples[shard]
        if not samples:
            return None
        return LatencySummary.from_samples(samples)

    def shard_p99(self, shard: int) -> float:
        """Shard leaf p99, or ``nan`` when the shard has no samples."""
        samples = self.shard_samples[shard]
        if not samples:
            return float("nan")
        return quantile(samples, 0.99)

    def predicted_quantile(self, q: float = 0.99) -> float:
        """Order-statistic prediction of the end-to-end ``q`` quantile.

        Returns ``nan`` when no leaf samples were measured (all gathers
        landed in warmup or failed).
        """
        from ..analysis.fanout import fanout_quantile

        leaves = sorted(self.leaf_samples())
        if not leaves:
            return float("nan")
        return fanout_quantile(leaves, self.shards, q, sorted_values=True)


class _Gather:
    """In-flight state of one logical request's K sub-requests."""

    __slots__ = ("gather_id", "remaining", "slots", "failed")

    def __init__(self, gather_id: int, shards: int) -> None:
        self.gather_id = gather_id
        self.remaining = shards
        self.slots: List[Optional[Request]] = [None] * shards
        self.failed = False


class FanoutGatherer:
    """The gather point: collects K shard responses per logical request.

    ``on_complete`` is installed as the transport's completion hook
    (live) or wired into the topology's response callback (sim). When
    a gather's last sub-request lands, the *critical* (slowest) shard's
    request supplies the logical latency record — its lifecycle chain
    IS the logical request's critical path — and the per-shard partial
    responses are merged. One ``fanout_gather`` trace event per
    logical request carries the critical shard in ``server_id``.

    Thread-safe: the live transport completes requests from many
    worker threads concurrently.
    """

    def __init__(
        self,
        shards: int,
        collector,
        merge: Optional[Callable[[Sequence[Any]], Any]] = None,
        warmup: int = 0,
        tracer=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.stats = FanoutStats(shards)
        self._collector = collector
        self._merge = merge
        self._warmup = warmup
        self._tracer = tracer
        self._lock = threading.Lock()
        self._pending: Dict[int, Tuple[_Gather, int]] = {}
        self._next_gather = 0
        self._next_logical = 0

    def open_gather(self) -> Tuple[int, List[Tuple[int, int]]]:
        """Allocate one gather; returns (gather_id, [(logical_id, shard)]).

        The caller must then dispatch exactly one sub-request per
        returned ``(logical_id, shard)`` pair.
        """
        with self._lock:
            gather = _Gather(self._next_gather, self.shards)
            self._next_gather += 1
            pairs = []
            for shard in range(self.shards):
                logical_id = self._next_logical
                self._next_logical += 1
                self._pending[logical_id] = (gather, shard)
                pairs.append((logical_id, shard))
            return gather.gather_id, pairs

    @property
    def outstanding(self) -> int:
        """Sub-requests dispatched but not yet completed."""
        with self._lock:
            return len(self._pending)

    def on_complete(self, request: Request) -> bool:
        """Completion hook: returns True when the request was ours."""
        with self._lock:
            entry = self._pending.pop(request.logical_id, None)
            if entry is None:
                return False
            gather, shard = entry
            gather.slots[shard] = request
            if request.shed or request.discard or request.error is not None:
                gather.failed = True
            gather.remaining -= 1
            if gather.remaining == 0:
                self._finalize(gather)
        return True

    def _finalize(self, gather: _Gather) -> None:
        # Called under the lock: gather completion order here defines
        # the warmup cutoff, and must match the collector's own
        # completion-ordered discard exactly.
        if gather.failed:
            self.stats.failed += 1
            return
        critical = gather.slots[0]
        for request in gather.slots[1:]:
            if request.response_received_at > critical.response_received_at:
                critical = request
        if self._merge is not None:
            critical.response = self._merge(
                [request.response for request in gather.slots]
            )
        measured = self.stats.completed >= self._warmup
        self.stats.completed += 1
        self._collector.add(critical.finish())
        if measured:
            self.stats.critical_counts[critical.server_id] += 1
            for shard, request in enumerate(gather.slots):
                self.stats.shard_samples[shard].append(
                    request.response_received_at - request.generated_at
                )
        if self._tracer is not None:
            self._tracer.emit(
                "fanout_gather",
                critical.response_received_at,
                logical_id=critical.logical_id,
                request_id=critical.request_id,
                server_id=critical.server_id,
                value=float(gather.gather_id),
            )


class FanoutClient:
    """Live send side: scatters each logical request to every shard.

    Stands where the resilient client would (the harness's
    ``send_fn``): one call dispatches K pinned sub-requests through
    the transport, each with its own ``logical_id`` so per-attempt
    accounting and attribution treat shards independently. The
    transport's ordinary outstanding accounting covers the
    sub-requests, so ``transport.drain()`` already waits for every
    gather to finish.
    """

    def __init__(
        self,
        transport,
        clock,
        gatherer: FanoutGatherer,
        tracer=None,
    ) -> None:
        self._transport = transport
        self._clock = clock
        self._gatherer = gatherer
        self._tracer = tracer
        transport.set_completion_hook(gatherer.on_complete)

    @property
    def stats(self) -> FanoutStats:
        return self._gatherer.stats

    def send(self, generated_at: float, payload: Any) -> int:
        gather_id, pairs = self._gatherer.open_gather()
        for logical_id, shard in pairs:
            if self._tracer is not None:
                self._tracer.emit(
                    "fanout_send",
                    self._clock.now(),
                    logical_id=logical_id,
                    server_id=shard,
                    value=float(gather_id),
                )
            self._transport.send(
                generated_at,
                payload,
                logical_id=logical_id,
                server_id=shard,
            )
        return 0

"""The TailBench harness: the paper's primary contribution.

Open-loop traffic shaping, an instrumented request queue, worker-pool
servers, statistics collection with HDR histograms, three pluggable
harness configurations (integrated / loopback / networked), and a
repeated-run measurement methodology with confidence-interval
convergence.
"""

from .balancer import (
    BALANCERS,
    JoinShortestQueueBalancer,
    LoadBalancer,
    PowerOfTwoBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    balancer_names,
    make_balancer,
)
from .clock import Clock, VirtualClock, WallClock
from .collector import OUTCOME_KEYS, CollectedStats, StatsCollector
from .config import (
    NO_BATCHING,
    NO_CACHE,
    NO_FANOUT,
    NO_OBSERVABILITY,
    NO_RESILIENCE,
    PAPER_SYSTEM,
    THREADED,
    CacheConfig,
    ExecutionConfig,
    FanoutConfig,
    HarnessConfig,
    ObservabilityConfig,
    SystemConfig,
)
from .fanout import FanoutClient, FanoutGatherer, FanoutStats
from .harness import HarnessResult, run_harness
from .queueing import QueueClosed, RequestQueue
from .request import Request, RequestRecord
from .resilience import ResilienceConfig, ResilientClient
from .runner import CampaignResult, run_campaign
from .runtime import ReplicaRuntime
from .server import Server
from .traffic import (
    ArrivalProcess,
    ArrivalSchedule,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TrafficShaper,
)
from .transport import (
    IntegratedTransport,
    LoopbackTransport,
    NetworkedTransport,
    ProcessTransport,
    Transport,
    make_transport,
)

__all__ = [
    "BALANCERS",
    "LoadBalancer",
    "RoundRobinBalancer",
    "RandomBalancer",
    "PowerOfTwoBalancer",
    "JoinShortestQueueBalancer",
    "balancer_names",
    "make_balancer",
    "Clock",
    "VirtualClock",
    "WallClock",
    "CollectedStats",
    "StatsCollector",
    "OUTCOME_KEYS",
    "NO_BATCHING",
    "NO_CACHE",
    "NO_FANOUT",
    "NO_OBSERVABILITY",
    "NO_RESILIENCE",
    "PAPER_SYSTEM",
    "THREADED",
    "CacheConfig",
    "ExecutionConfig",
    "FanoutConfig",
    "HarnessConfig",
    "ObservabilityConfig",
    "SystemConfig",
    "FanoutClient",
    "FanoutGatherer",
    "FanoutStats",
    "ResilienceConfig",
    "ResilientClient",
    "HarnessResult",
    "run_harness",
    "QueueClosed",
    "RequestQueue",
    "Request",
    "RequestRecord",
    "CampaignResult",
    "run_campaign",
    "ReplicaRuntime",
    "Server",
    "ArrivalProcess",
    "ArrivalSchedule",
    "BurstyArrivals",
    "DeterministicArrivals",
    "PoissonArrivals",
    "TrafficShaper",
    "IntegratedTransport",
    "LoopbackTransport",
    "NetworkedTransport",
    "ProcessTransport",
    "Transport",
    "make_transport",
]

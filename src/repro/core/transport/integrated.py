"""Integrated configuration: client + harness + application, one process.

Requests pass from the traffic shaper straight into the request queue
(a shared-memory hand-off), so no network-stack overhead is incurred.
This is the configuration the paper recommends for simulation
(Sec. IV-B): userspace-only communication that a user-level simulator
can execute.
"""

from __future__ import annotations

from ..request import Request
from .base import Transport

__all__ = ["IntegratedTransport"]


class IntegratedTransport(Transport):
    """Direct in-process hand-off between client and server(s)."""

    def _submit(self, request: Request) -> None:
        instance = self._instances[request.server_id or 0]
        if not instance.queue.put(request):
            self._shed(request)

"""Loopback configuration: real TCP over 127.0.0.1.

Client and application live in the same process but exchange requests
over genuine kernel TCP sockets on the loopback interface, so the
network-stack overhead (syscalls, copies, TCP processing) is really
paid — about 20 us per end on the paper's system (Sec. VI-B). Per the
paper's tuning notes, TCP_NODELAY is set to disable Nagle coalescing.

In a multi-server topology each :class:`ServerInstance` gets its own
persistent connection pair — its own endpoint, as separate replicas
would have — and the balancer's routing decision selects which
connection a request travels over.

Timestamps (``generated_at``, ``sent_at``) ride inside the message:
both endpoints share one process and therefore one clock domain, so no
cross-machine clock synchronization is needed.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List

from ..clock import Clock
from ..request import Request
from .base import Transport
from .protocol import ConnectionClosed, recv_message, send_message

__all__ = ["LoopbackTransport"]


class _Endpoint:
    """Sockets and locks for one server instance's connection pair."""

    __slots__ = ("client_sock", "server_sock", "send_lock", "reply_lock")

    def __init__(
        self, client_sock: socket.socket, server_sock: socket.socket
    ) -> None:
        self.client_sock = client_sock
        self.server_sock = server_sock
        self.send_lock = threading.Lock()
        self.reply_lock = threading.Lock()


class LoopbackTransport(Transport):
    """TCP/loopback transport, one persistent connection pair per server."""

    def __init__(self, clock: Clock, host: str = "127.0.0.1") -> None:
        super().__init__(clock)
        self._host = host
        self._listener: socket.socket = None
        self._endpoints: List[_Endpoint] = []
        self._pending: Dict[int, Request] = {}
        self._pending_lock = threading.Lock()
        self._io_threads = []

    # -- lifecycle -----------------------------------------------------
    def _start_impl(self) -> None:
        n_servers = len(self._instances)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, 0))
        self._listener.listen(n_servers)
        port = self._listener.getsockname()[1]

        self._endpoints = []
        self._io_threads = []
        for server_id in range(n_servers):
            client_sock = socket.create_connection((self._host, port))
            server_sock, _ = self._listener.accept()
            for sock in (client_sock, server_sock):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._endpoints.append(_Endpoint(client_sock, server_sock))
            self._io_threads.append(
                threading.Thread(
                    target=self._server_recv_loop,
                    args=(server_id,),
                    name=f"tb-srv{server_id}-recv",
                    daemon=True,
                )
            )
            self._io_threads.append(
                threading.Thread(
                    target=self._client_recv_loop,
                    args=(server_id,),
                    name=f"tb-cli{server_id}-recv",
                    daemon=True,
                )
            )
        for t in self._io_threads:
            t.start()

    def _stop_impl(self) -> None:
        sockets = [self._listener]
        for endpoint in self._endpoints:
            sockets.extend((endpoint.client_sock, endpoint.server_sock))
        for sock in sockets:
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()
        for t in self._io_threads:
            t.join(5.0)

    # -- client -> server ----------------------------------------------
    def _submit(self, request: Request) -> None:
        endpoint = self._endpoints[request.server_id or 0]
        with self._pending_lock:
            self._pending[request.request_id] = request
        message = {
            "id": request.request_id,
            "payload": request.payload,
        }
        with endpoint.send_lock:
            send_message(endpoint.client_sock, message)

    def _server_recv_loop(self, server_id: int) -> None:
        endpoint = self._endpoints[server_id]
        instance = self._instances[server_id]
        while True:
            try:
                message = recv_message(endpoint.server_sock)
            except (ConnectionClosed, OSError):
                return
            # Rebuild a server-side Request shell; the client keeps the
            # authoritative one for final timestamping.
            shadow = Request(
                payload=message["payload"],
                generated_at=0.0,
                request_id=message["id"],
            )
            shadow.server_id = server_id
            if not instance.queue.put(shadow):
                # Admission control rejected it: answer with a shed
                # response instead of silently eating the request.
                self._on_response(shadow)

    # -- server -> client ----------------------------------------------
    def _on_response(self, request: Request) -> None:
        endpoint = self._endpoints[request.server_id or 0]
        message = {
            "id": request.request_id,
            "enqueued_at": request.enqueued_at,
            "service_start_at": request.service_start_at,
            "service_end_at": request.service_end_at,
            "response": request.response,
            "error": request.error,
            "shed": request.shed,
            "server_id": request.server_id,
        }
        with endpoint.reply_lock:
            try:
                send_message(endpoint.server_sock, message)
            except OSError:
                pass  # shutdown race: client side already gone

    def _client_recv_loop(self, server_id: int) -> None:
        endpoint = self._endpoints[server_id]
        while True:
            try:
                message = recv_message(endpoint.client_sock)
            except (ConnectionClosed, OSError):
                return
            with self._pending_lock:
                request = self._pending.pop(message["id"], None)
            if request is None:
                continue  # duplicate or post-shutdown stray
            request.enqueued_at = message["enqueued_at"]
            request.service_start_at = message["service_start_at"]
            request.service_end_at = message["service_end_at"]
            request.response = message["response"]
            request.error = message["error"]
            request.shed = message.get("shed", False)
            self._complete(request)

"""Loopback configuration: real TCP over 127.0.0.1.

Client and application live in the same process but exchange requests
over genuine kernel TCP sockets on the loopback interface, so the
network-stack overhead (syscalls, copies, TCP processing) is really
paid — about 20 us per end on the paper's system (Sec. VI-B). Per the
paper's tuning notes, TCP_NODELAY is set to disable Nagle coalescing.

Timestamps (``generated_at``, ``sent_at``) ride inside the message:
both endpoints share one process and therefore one clock domain, so no
cross-machine clock synchronization is needed.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict

from ..clock import Clock
from ..request import Request
from .base import Transport
from .protocol import ConnectionClosed, recv_message, send_message

__all__ = ["LoopbackTransport"]


class LoopbackTransport(Transport):
    """TCP/loopback transport with a single persistent connection pair."""

    def __init__(self, clock: Clock, host: str = "127.0.0.1") -> None:
        super().__init__(clock)
        self._host = host
        self._listener: socket.socket = None
        self._client_sock: socket.socket = None
        self._server_sock: socket.socket = None
        self._pending: Dict[int, Request] = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._reply_lock = threading.Lock()
        self._io_threads = []

    # -- lifecycle -----------------------------------------------------
    def _start_impl(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, 0))
        self._listener.listen(1)
        port = self._listener.getsockname()[1]

        self._client_sock = socket.create_connection((self._host, port))
        self._server_sock, _ = self._listener.accept()
        for sock in (self._client_sock, self._server_sock):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

        self._io_threads = [
            threading.Thread(
                target=self._server_recv_loop, name="tb-srv-recv", daemon=True
            ),
            threading.Thread(
                target=self._client_recv_loop, name="tb-cli-recv", daemon=True
            ),
        ]
        for t in self._io_threads:
            t.start()

    def _stop_impl(self) -> None:
        for sock in (self._client_sock, self._server_sock, self._listener):
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()
        for t in self._io_threads:
            t.join(5.0)

    # -- client -> server ----------------------------------------------
    def _submit(self, request: Request) -> None:
        with self._pending_lock:
            self._pending[request.request_id] = request
        message = {
            "id": request.request_id,
            "payload": request.payload,
        }
        with self._send_lock:
            send_message(self._client_sock, message)

    def _server_recv_loop(self) -> None:
        while True:
            try:
                message = recv_message(self._server_sock)
            except (ConnectionClosed, OSError):
                return
            # Rebuild a server-side Request shell; the client keeps the
            # authoritative one for final timestamping.
            shadow = Request(
                payload=message["payload"],
                generated_at=0.0,
                request_id=message["id"],
            )
            if not self._queue.put(shadow):
                # Admission control rejected it: answer with a shed
                # response instead of silently eating the request.
                self._on_response(shadow)

    # -- server -> client ----------------------------------------------
    def _on_response(self, request: Request) -> None:
        message = {
            "id": request.request_id,
            "enqueued_at": request.enqueued_at,
            "service_start_at": request.service_start_at,
            "service_end_at": request.service_end_at,
            "response": request.response,
            "error": request.error,
            "shed": request.shed,
        }
        with self._reply_lock:
            try:
                send_message(self._server_sock, message)
            except OSError:
                pass  # shutdown race: client side already gone

    def _client_recv_loop(self) -> None:
        while True:
            try:
                message = recv_message(self._client_sock)
            except (ConnectionClosed, OSError):
                return
            with self._pending_lock:
                request = self._pending.pop(message["id"], None)
            if request is None:
                continue  # duplicate or post-shutdown stray
            request.enqueued_at = message["enqueued_at"]
            request.service_start_at = message["service_start_at"]
            request.service_end_at = message["service_end_at"]
            request.response = message["response"]
            request.error = message["error"]
            request.shed = message.get("shed", False)
            self._complete(request)

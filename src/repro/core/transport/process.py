"""Process-sharded execution: one OS process per server replica.

Threaded transports run every replica's worker pool inside the harness
interpreter, so aggregate throughput is GIL-capped no matter how many
replicas the topology (or the autoscaler) adds. ``ProcessTransport``
keeps the whole client side — traffic shaper, balancer, health
manager, resilience, completion accounting — in the parent, but builds
each replica's :class:`~repro.core.runtime.ReplicaRuntime` inside a
``multiprocessing`` child, so replicas execute on real cores.

Wire protocol (pickle frames over two simplex pipes per replica):

- parent -> child: ``("req", [(request_id, logical_id, attempt,
  payload), ...])`` — a sender thread coalesces every request buffered
  while the previous frame was in flight into one frame; ``("obs",)``
  installs the child-side trace relay; ``("stop", discard_pending)``
  begins shutdown.
- child -> parent: ``("ready", child_now, pid)`` once at startup (the
  clock-offset handshake); ``("recs", records, status, events)`` — all
  completions since the last flush, a status snapshot (queue depth,
  busy/alive workers, fault counts — the autoscaler's signals), and
  drained trace-relay events, one frame per batch; ``("bye", errors,
  fault_counts)`` on clean exit.

Timestamps never cross the pipe as absolutes. The child reports
*durations* (queue wait, service time); the parent anchors the chain
at response receipt exactly like the remote transport
(:mod:`repro.core.transport.remote`): ``service_end = receipt``,
``service_start = end - service_time``, ``enqueued = start -
queue_time``, clamped to ``sent_at``. Sojourn time is therefore
measured entirely on the parent clock and coordinated-omission
semantics are identical to threaded mode.

Failure semantics: a child that dies (crash, kill, pickling bug)
closes its response pipe; the parent's reader sees EOF without a
``bye``, fails every pending request on that replica with a transport
error (the resilient client's retry/hedge machinery then recovers
them), emits a ``fault_crash`` trace event, and marks the replica
dead so later routed sends error out immediately instead of hanging.
A drained (scaled-down) replica is shut down and joined the moment
its last outstanding request resolves. SIGTERM of the harness
terminates every live replica process before re-raising.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import weakref
from typing import Any, Dict, List, Optional, Tuple

from ...faults.injector import FaultInjector
from ...obs.forward import TraceRelay, replay_events
from ..clock import WallClock
from ..config import ExecutionConfig
from ..queueing import QueueSnapshot
from ..request import Request
from ..runtime import ReplicaRuntime
from .base import ServerInstance, Transport, _replicate_app

__all__ = ["ProcessTransport", "ProcessReplicaHandle"]

_READY_TIMEOUT = 60.0

# -- SIGTERM reaping ----------------------------------------------------
# Replica processes are daemonic, so a *clean* interpreter exit reaps
# them; a SIGTERM default-kills the parent before multiprocessing's
# atexit hook runs, which would orphan the children. The first
# ProcessTransport to start installs a chaining handler that terminates
# every live replica, then re-delivers the signal to whatever handler
# was there before.
_live_processes: "weakref.WeakSet" = weakref.WeakSet()
_reaper_lock = threading.Lock()
_reaper_installed = False
_prev_sigterm = None


def _reap_children(signum, frame):
    for proc in list(_live_processes):
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:
            pass
    prev = _prev_sigterm
    if callable(prev):
        prev(signum, frame)
    else:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)


def _install_sigterm_reaper() -> None:
    global _reaper_installed, _prev_sigterm
    with _reaper_lock:
        if _reaper_installed:
            return
        if threading.current_thread() is not threading.main_thread():
            return  # signal.signal is main-thread-only; skip quietly
        try:
            _prev_sigterm = signal.signal(signal.SIGTERM, _reap_children)
        except ValueError:
            return
        _reaper_installed = True


def _child_seed(seed: int, server_id: int) -> int:
    """Per-replica fault-stream seed.

    The threaded injector serves all replicas from one set of RNG
    streams; a forked child must not replay the parent's stream (every
    replica would draw identical faults), so each child derives its own
    root. Decisions differ from threaded mode draw-for-draw but are
    statistically the faithful same plan.
    """
    return (seed * 1000003 + 7919 * (server_id + 1)) & 0x7FFFFFFF


# -- child side ---------------------------------------------------------


class _RecordStreamer:
    """Child-side flusher: completions out, one pickle frame per batch.

    ``respond`` callbacks from the worker pool land in a buffer; the
    flusher thread ships everything accumulated since the previous
    ``send`` in a single frame, so a blocked pipe coalesces bookkeeping
    instead of queueing one message per request. With no completions
    flowing it still sends a status heartbeat every ``interval``
    seconds — the parent-side autoscaler's signal freshness bound.
    """

    def __init__(self, conn, interval: float) -> None:
        self._conn = conn
        self._interval = interval
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._records: List[tuple] = []
        self._stopping = False
        self._runtime: Optional[ReplicaRuntime] = None
        self._injector: Optional[FaultInjector] = None
        self._relay: Optional[TraceRelay] = None
        self._thread = threading.Thread(
            target=self._run, name="tb-ipc-flush", daemon=True
        )

    def bind(self, runtime: ReplicaRuntime, injector) -> None:
        self._runtime = runtime
        self._injector = injector

    def set_relay(self, relay: TraceRelay) -> None:
        self._relay = relay

    def start(self) -> None:
        self._thread.start()

    def respond(self, request: Request) -> None:
        """The replica's ``respond`` callback: encode and buffer."""
        queue_time = service_time = None
        if (
            request.service_start_at is not None
            and request.enqueued_at is not None
        ):
            queue_time = request.service_start_at - request.enqueued_at
        if (
            request.service_end_at is not None
            and request.service_start_at is not None
        ):
            service_time = request.service_end_at - request.service_start_at
        record = (
            request.request_id,
            request.shed,
            request.error,
            request.response,
            queue_time,
            service_time,
            request.batch_size,
        )
        with self._cond:
            self._records.append(record)
            self._cond.notify()

    def stop(self) -> None:
        """Flush remaining records, then stop the flusher thread."""
        with self._cond:
            self._stopping = True
            self._cond.notify()
        self._thread.join(timeout=5.0)

    # -- internals ----------------------------------------------------
    def _status(self) -> tuple:
        runtime = self._runtime
        queue = runtime.queue
        snap = queue.snapshot()
        counts = (
            self._injector.counts() if self._injector is not None else None
        )
        return (
            snap.depth,
            runtime.busy_workers,
            runtime.alive_workers,
            snap.peak_depth,
            snap.total_enqueued,
            snap.total_shed,
            snap.head_sojourn,
            counts,
        )

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._records and not self._stopping:
                    self._cond.wait(self._interval)
                records, self._records = self._records, []
                stopping = self._stopping
            events = self._relay.drain() if self._relay is not None else []
            if not self._send(("recs", records, self._status(), events)):
                return
            if stopping:
                return

    def _send(self, frame) -> bool:
        try:
            self._conn.send(frame)
            return True
        except (OSError, ValueError, EOFError, BrokenPipeError):
            return False  # parent gone; nothing left to report to
        except Exception:
            # Unpicklable response payload: retry with responses
            # stripped rather than losing the whole batch's accounting.
            tag, records, status, events = frame
            stripped = [
                rec[:3] + (None,) + rec[4:] for rec in records
            ]
            try:
                self._conn.send((tag, stripped, status, events))
                return True
            except Exception:
                return False


def _replica_main(
    req_conn,
    resp_conn,
    app,
    n_threads: int,
    plan,
    seed: int,
    server_id: int,
    batching,
    queue_capacity: Optional[int],
    flush_interval: float,
    drain_timeout: float,
) -> None:
    """Entry point of one replica process."""
    clock = WallClock()
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, seed=_child_seed(seed, server_id))
        injector.start_run(clock.now())
    scoped = injector.for_server(server_id) if injector is not None else None
    streamer = _RecordStreamer(resp_conn, flush_interval)
    runtime = ReplicaRuntime(
        app,
        clock,
        n_threads=n_threads,
        respond=streamer.respond,
        injector=scoped,
        server_id=server_id,
        batching=batching,
        queue_capacity=queue_capacity,
    )
    streamer.bind(runtime, injector)
    runtime.start()
    resp_conn.send(("ready", clock.now(), os.getpid()))
    streamer.start()
    discard = True
    try:
        while True:
            try:
                msg = req_conn.recv()
            except (EOFError, OSError):
                break  # parent died: exit rather than run orphaned
            tag = msg[0]
            if tag == "req":
                for rid, logical_id, attempt, payload in msg[1]:
                    request = Request(payload=payload, generated_at=clock.now())
                    request.request_id = rid
                    request.logical_id = logical_id
                    request.attempt = attempt
                    request.server_id = server_id
                    request.sent_at = request.generated_at
                    if not runtime.submit(request):
                        streamer.respond(request)  # shed: owe a response
            elif tag == "obs":
                relay = TraceRelay()
                streamer.set_relay(relay)
                runtime.set_tracer(relay)
            elif tag == "stop":
                discard = bool(msg[1])
                break
    finally:
        try:
            runtime.shutdown(timeout=drain_timeout, discard_pending=discard)
        except Exception:
            pass
        streamer.stop()
        errors = list(runtime.errors)
        counts = injector.counts() if injector is not None else {}
        try:
            resp_conn.send(("bye", errors, counts))
        except Exception:
            pass
        resp_conn.close()


# -- parent side --------------------------------------------------------


class _QueueView:
    """Parent-side stand-in for a process replica's request queue.

    Satisfies the two queue reads the parent performs — ``len`` (the
    balancer/autoscaler depth signal, observability gauge) and
    ``snapshot`` — from the replica's last status heartbeat.
    """

    __slots__ = ("_handle",)

    def __init__(self, handle: "ProcessReplicaHandle") -> None:
        self._handle = handle

    def __len__(self) -> int:
        return self._handle.queue_depth

    def snapshot(self, now: Optional[float] = None) -> QueueSnapshot:
        return self._handle.queue_snapshot()


class ProcessReplicaHandle:
    """Parent-side proxy for one replica process.

    Presents the same surface the base transport expects of a
    threaded :class:`~repro.core.server.Server` — ``start`` /
    ``shutdown`` / ``busy_workers`` / ``alive_workers`` / ``errors`` /
    ``set_tracer`` — plus ``enqueue`` for the transport's submit path.
    Owns the replica's pipes, its sender thread (request batching) and
    reader thread (record ingestion), and the pending-request map used
    to resolve or fail in-flight work.
    """

    def __init__(
        self,
        transport: "ProcessTransport",
        server_id: int,
        app,
        execution: ExecutionConfig,
        n_threads: int,
        plan,
        seed: int,
        batching,
        queue_capacity: Optional[int],
    ) -> None:
        self._transport = transport
        self.server_id = server_id
        self._app = app
        self._execution = execution
        self._n_threads = n_threads
        self._plan = plan
        self._seed = seed
        self._batching = batching
        self._queue_capacity = queue_capacity
        self._ctx = multiprocessing.get_context(execution.start_method)
        self.process = None
        self.queue_view = _QueueView(self)
        self.clock_offset = 0.0
        # Send side: buffered request tuples + control frames, drained
        # by one sender thread into one pickle frame per wakeup.
        self._lock = threading.Lock()
        self._send_cond = threading.Condition(self._lock)
        self._buf_reqs: List[tuple] = []
        self._buf_ctrl: List[tuple] = []
        self._closing = False
        self._discard = False
        self._pending: Dict[int, Request] = {}
        # Status mirror (updated by each ingested heartbeat).
        self._depth = 0
        self._busy = 0
        self._alive = n_threads
        self._peak_depth = 0
        self._total_enqueued = 0
        self._total_shed = 0
        self._head_sojourn = 0.0
        self.fault_counts: Dict[str, int] = {}
        self.errors: List[str] = []
        self.dead = False
        self.crashed = False
        self._got_bye = False
        self._stopping = False
        self._shutdown_done = False
        self._shutdown_guard = threading.Lock()
        self._req_send = None
        self._resp_recv = None
        self._sender_thread: Optional[threading.Thread] = None
        self._reader_thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------
    def start(self) -> None:
        req_recv, req_send = self._ctx.Pipe(duplex=False)
        resp_recv, resp_send = self._ctx.Pipe(duplex=False)
        self._req_send = req_send
        self._resp_recv = resp_recv
        self.process = self._ctx.Process(
            target=_replica_main,
            args=(
                req_recv,
                resp_send,
                self._app,
                self._n_threads,
                self._plan,
                self._seed,
                self.server_id,
                self._batching,
                self._queue_capacity,
                self._execution.ipc_flush_interval,
                self._execution.drain_timeout,
            ),
            name=f"tb-replica-{self.server_id}",
            daemon=True,
        )
        self.process.start()
        _live_processes.add(self.process)
        # Close the parent's copies of the child's pipe ends, so the
        # pipes deliver EOF when exactly one side goes away.
        req_recv.close()
        resp_send.close()
        if not resp_recv.poll(_READY_TIMEOUT):
            self.process.terminate()
            raise RuntimeError(
                f"replica process {self.server_id} failed to start "
                f"within {_READY_TIMEOUT}s"
            )
        msg = resp_recv.recv()
        if msg[0] != "ready":
            self.process.terminate()
            raise RuntimeError(
                f"replica process {self.server_id} sent {msg[0]!r} "
                "before ready handshake"
            )
        self.clock_offset = self._transport._clock.now() - msg[1]
        self._sender_thread = threading.Thread(
            target=self._sender_loop,
            name=f"tb-proc-send-{self.server_id}",
            daemon=True,
        )
        self._reader_thread = threading.Thread(
            target=self._reader_loop,
            name=f"tb-proc-recv-{self.server_id}",
            daemon=True,
        )
        self._sender_thread.start()
        self._reader_thread.start()

    def shutdown(
        self, timeout: float = 30.0, discard_pending: bool = False
    ) -> None:
        """Stop the replica process and join it (idempotent)."""
        with self._shutdown_guard:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        self._stopping = True
        with self._send_cond:
            self._closing = True
            self._discard = discard_pending
            self._send_cond.notify()
        if self._sender_thread is not None:
            self._sender_thread.join(timeout=5.0)
        proc = self.process
        if proc is not None:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        try:
            self._req_send.close()
        except Exception:
            pass
        reader = self._reader_thread
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=5.0)
        self.dead = True

    # -- server-facade surface used by the base transport --------------
    @property
    def busy_workers(self) -> int:
        return self._busy

    @property
    def alive_workers(self) -> int:
        return 0 if self.dead else self._alive

    @property
    def n_threads(self) -> int:
        return self._n_threads

    def set_tracer(self, tracer) -> None:
        """Ask the child to start relaying trace events."""
        with self._send_cond:
            if not self.dead and not self._closing:
                self._buf_ctrl.append(("obs",))
                self._send_cond.notify()

    # -- submit path ---------------------------------------------------
    def enqueue(self, request: Request) -> bool:
        """Buffer one request for the sender thread; False when dead."""
        with self._send_cond:
            if self.dead or self._closing:
                return False
            self._pending[request.request_id] = request
            self._buf_reqs.append(
                (
                    request.request_id,
                    request.logical_id,
                    request.attempt,
                    request.payload,
                )
            )
            self._send_cond.notify()
        return True

    def pop_pending(self, request_id: int) -> Optional[Request]:
        with self._lock:
            return self._pending.pop(request_id, None)

    def take_pending(self) -> List[Request]:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        return pending

    # -- status mirror -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._depth

    def queue_snapshot(self) -> QueueSnapshot:
        return QueueSnapshot(
            depth=self._depth,
            peak_depth=self._peak_depth,
            total_enqueued=self._total_enqueued,
            total_shed=self._total_shed,
            head_sojourn=self._head_sojourn,
        )

    def update_status(self, status: tuple) -> None:
        (
            self._depth,
            self._busy,
            self._alive,
            self._peak_depth,
            self._total_enqueued,
            self._total_shed,
            self._head_sojourn,
            counts,
        ) = status
        if counts:
            self.fault_counts = counts

    # -- threads -------------------------------------------------------
    def _sender_loop(self) -> None:
        while True:
            with self._send_cond:
                while (
                    not self._buf_reqs
                    and not self._buf_ctrl
                    and not self._closing
                ):
                    self._send_cond.wait()
                batch, self._buf_reqs = self._buf_reqs, []
                ctrl, self._buf_ctrl = self._buf_ctrl, []
                closing = self._closing
            try:
                for frame in ctrl:
                    self._req_send.send(frame)
                if batch:
                    self._req_send.send(("req", batch))
                if closing:
                    self._req_send.send(("stop", self._discard))
                    return
            except Exception:
                # Request pipe broken mid-run: the child is gone (or
                # wedged); surface every in-flight request as a
                # transport error rather than hanging the drain.
                self._transport._on_child_failure(
                    self, "replica request pipe closed"
                )
                return

    def _reader_loop(self) -> None:
        conn = self._resp_recv
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            tag = msg[0]
            if tag == "recs":
                self._transport._ingest(self, msg[1], msg[2], msg[3])
            elif tag == "bye":
                self._got_bye = True
                self.errors.extend(
                    e for e in msg[1] if e not in self.errors
                )
                if msg[2]:
                    self.fault_counts = msg[2]
        try:
            conn.close()
        except Exception:
            pass
        if not self._got_bye and not self._stopping:
            self._transport._on_child_failure(
                self, "replica process crashed", crash=True
            )
        else:
            self.dead = True


class ProcessTransport(Transport):
    """Integrated-shape transport with process-sharded replicas.

    Client side (shaper, balancer, health, resilience, stats) is
    unchanged from :class:`IntegratedTransport`; each replica's queue
    and worker pool run in a child OS process, so aggregate throughput
    scales with cores instead of being GIL-capped.
    """

    def __init__(
        self, clock, execution: Optional[ExecutionConfig] = None
    ) -> None:
        super().__init__(clock)
        self._execution = (
            execution
            if execution is not None
            else ExecutionConfig(mode="process")
        )
        self._reapers: List[threading.Thread] = []

    # -- replica construction ------------------------------------------
    def _build_instance(self, server_id: int) -> ServerInstance:
        injector = self._injector
        plan = getattr(injector, "plan", None) if injector is not None else None
        if plan is not None and not plan.applies_to(server_id):
            # Server-side faults scoped elsewhere: the child needs no
            # injector at all (transport faults stay parent-side).
            plan = None
        handle = ProcessReplicaHandle(
            self,
            server_id,
            _replicate_app(self._app, server_id),
            self._execution,
            n_threads=self._n_threads,
            plan=plan,
            seed=getattr(injector, "seed", 0) if injector is not None else 0,
            batching=self._batching,
            queue_capacity=self._queue_capacity,
        )
        instance = ServerInstance(
            server_id, handle.queue_view, handle, runtime=None
        )
        instance.started_at = self._clock.now()
        return instance

    def _start_impl(self) -> None:
        _install_sigterm_reaper()

    def _stop_impl(self) -> None:
        for reaper in self._reapers:
            reaper.join(timeout=self._execution.drain_timeout)
        self._reapers = []
        # Anything still pending at stop (post-drain stragglers) is
        # dropped with its replica, matching threaded discard semantics.
        for instance in self._instances:
            instance.server.take_pending()

    # -- submit path ---------------------------------------------------
    def _submit(self, request: Request) -> None:
        server_id = request.server_id if request.server_id is not None else 0
        handle = self._instances[server_id].server
        if not handle.enqueue(request):
            request.error = "replica process is not running"
            self._on_response(request)

    # -- ingestion (reader threads) -------------------------------------
    def _ingest(
        self,
        handle: ProcessReplicaHandle,
        records: List[tuple],
        status: tuple,
        events: List[tuple],
    ) -> None:
        handle.update_status(status)
        if events:
            replay_events(
                self._tracer, events, handle.clock_offset, handle.server_id
            )
        if not records:
            return
        now = self._clock.now()
        for rec in records:
            request = handle.pop_pending(rec[0])
            if request is None:
                continue  # already failed by a crash sweep
            self._apply_record(request, rec, now)
            if request.error is not None and request.error not in handle.errors:
                handle.errors.append(request.error)
            self._on_response(request)

    @staticmethod
    def _apply_record(request: Request, rec: tuple, now: float) -> None:
        """Rebuild the timestamp chain from child-reported durations.

        Anchored at receipt on the parent clock (the remote-transport
        idiom): no child-clock absolute ever enters the chain, so
        sojourn/latency percentiles are free of cross-process clock
        skew. Clamped at ``sent_at`` to keep the chain monotone.
        """
        _, shed, error, response, queue_time, service_time, batch_size = rec
        request.shed = bool(shed)
        request.error = error
        request.response = response
        request.batch_size = batch_size if batch_size else 1
        if shed:
            return  # truncated chain, same as a threaded shed
        if service_time is None and queue_time is None:
            return
        end = now
        start = end - max(service_time or 0.0, 0.0)
        enqueued = start - max(queue_time or 0.0, 0.0)
        floor = request.sent_at if request.sent_at is not None else enqueued
        enqueued = max(enqueued, floor)
        start = max(start, enqueued)
        end = max(end, start)
        request.enqueued_at = enqueued
        request.service_start_at = start
        request.service_end_at = end

    # -- failure handling ----------------------------------------------
    def _on_child_failure(
        self, handle: ProcessReplicaHandle, reason: str, crash: bool = False
    ) -> None:
        """A replica process died or its pipe broke: fail its work."""
        first = not handle.dead
        handle.dead = True
        if first:
            handle.crashed = handle.crashed or crash
            if self._tracer is not None:
                self._tracer.emit(
                    "fault_crash",
                    self._clock.now(),
                    server_id=handle.server_id,
                )
        for request in handle.take_pending():
            if request.error is None:
                request.error = reason
            self._on_response(request)

    # -- drain-aware reaping --------------------------------------------
    def drain_server(self):
        server_id = super().drain_server()
        if server_id is not None:
            with self._lock:
                instance = self._instances[server_id]
                idle = instance.outstanding <= 0
            if idle:
                # Already idle at drain time: no completion will ever
                # arrive to fire the drained hook, so reap now.
                self._instance_drained(instance)
        return server_id

    def _instance_drained(self, instance: ServerInstance) -> None:
        """Scale-down completion: join the child inside the deadline."""
        handle = instance.server
        reaper = threading.Thread(
            target=handle.shutdown,
            kwargs={
                "timeout": self._execution.drain_timeout,
                "discard_pending": False,
            },
            name=f"tb-proc-reap-{instance.server_id}",
            daemon=True,
        )
        reaper.start()
        with self._lock:
            self._reapers.append(reaper)

    # -- aggregation ----------------------------------------------------
    def child_fault_counts(self) -> Dict[str, int]:
        """Summed fault counts reported by the replica processes.

        The parent injector only exercises its transport streams in
        process mode; worker/app faults happen in the children, whose
        injectors report here (via status heartbeats and the final
        ``bye``). The harness merges this into the run's fault counts.
        """
        totals: Dict[str, int] = {}
        crashes = 0
        for instance in self._instances:
            handle = instance.server
            for key, value in handle.fault_counts.items():
                totals[key] = totals.get(key, 0) + value
            if handle.crashed:
                crashes += 1
        if crashes:
            totals["child_crashes"] = totals.get("child_crashes", 0) + crashes
        return totals

"""Length-prefixed wire protocol for the socket transports.

Frames are ``uint32 big-endian length`` followed by a pickled message
body. Pickle is appropriate here because both endpoints are parts of
this harness (never untrusted peers) and application payloads are
arbitrary Python objects (TPC-C transaction descriptors, query strings,
numpy arrays).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = ["send_message", "recv_message", "ConnectionClosed"]

_HEADER = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024  # refuse absurd frames: corruption guard


class ConnectionClosed(Exception):
    """Peer closed the connection cleanly."""


def send_message(sock: socket.socket, message: Any) -> None:
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame too large: {len(body)} bytes")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed("peer closed connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Any:
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame too large: {length} bytes")
    return pickle.loads(_recv_exact(sock, length))

"""Networked configuration: TCP plus a modelled NIC/switch delay line.

The paper's networked configuration runs clients on separate machines
through a real switch; after days of tuning, their round-trip network
latency was ~50 us (Sec. VI-A). We have a single machine, so the
multi-machine path is *simulated*: requests and responses pass through
the same real TCP loopback path as the loopback configuration, plus a
delay line that holds each message for the configured one-way wire
delay before delivering it. This preserves what the network
contributes to tail latency in the paper's own analysis — an additive
per-direction overhead — while remaining runnable anywhere.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable

from ..clock import Clock
from ..request import Request
from .loopback import LoopbackTransport

__all__ = ["DelayLine", "NetworkedTransport"]


class DelayLine:
    """Holds items for a fixed delay, then delivers them in order.

    A single background thread sleeps until the earliest release time.
    Delivery order is FIFO for equal delays (a sequence number breaks
    ties), matching an uncongested switch queue.
    """

    def __init__(self, clock: Clock, delay: float, deliver: Callable[[Any], None]) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._clock = clock
        self.delay = delay
        self._deliver = deliver
        self._heap = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._stopped = False
        self._thread = threading.Thread(
            target=self._loop, name="tb-delayline", daemon=True
        )
        self._thread.start()

    def push(self, item: Any) -> None:
        release = self._clock.now() + self.delay
        with self._wakeup:
            if self._stopped:
                return
            heapq.heappush(self._heap, (release, next(self._seq), item))
            self._wakeup.notify()

    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._heap and not self._stopped:
                    self._wakeup.wait()
                if self._stopped:
                    # Link is down: messages still in flight are lost,
                    # never delivered after stop() returns.
                    return
                release, _, item = self._heap[0]
                now = self._clock.now()
                if release > now:
                    self._wakeup.wait(release - now)
                    continue
                heapq.heappop(self._heap)
            self._deliver(item)

    def stop(self) -> None:
        with self._wakeup:
            self._stopped = True
            self._heap.clear()
            self._wakeup.notify_all()
        self._thread.join(5.0)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class NetworkedTransport(LoopbackTransport):
    """Loopback TCP with an added one-way wire delay in each direction.

    The delay lines model the shared wire: in a multi-server topology
    every request passes through the same request/response lines and is
    then routed to its instance's connection pair by the loopback layer
    (the routing decision itself was made client-side, before the
    wire).

    Parameters
    ----------
    one_way_delay:
        Simulated NIC + switch one-way latency added on top of the real
        loopback stack cost. The paper's tuned setup had ~50 us round
        trip; the default injects 25 us each way.
    """

    def __init__(
        self, clock: Clock, one_way_delay: float = 25e-6, host: str = "127.0.0.1"
    ) -> None:
        super().__init__(clock, host=host)
        self.one_way_delay = one_way_delay
        self._request_line: DelayLine = None
        self._response_line: DelayLine = None

    def _start_impl(self) -> None:
        super()._start_impl()
        self._request_line = DelayLine(
            self._clock, self.one_way_delay, super()._submit
        )
        self._response_line = DelayLine(
            self._clock, self.one_way_delay, super()._on_response
        )

    def _stop_impl(self) -> None:
        if self._request_line is not None:
            self._request_line.stop()
        if self._response_line is not None:
            self._response_line.stop()
        super()._stop_impl()

    def _submit(self, request: Request) -> None:
        self._request_line.push(request)

    def _on_response(self, request: Request) -> None:
        self._response_line.push(request)

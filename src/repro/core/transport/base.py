"""Transport interface shared by the three harness configurations.

A transport owns the path between the client (traffic shaper) and the
application's request queue, and the return path for responses. The
three configurations of Fig. 1 are three transports:

- :class:`repro.core.transport.integrated.IntegratedTransport` — client
  and application in one process, direct hand-off (shared memory).
- :class:`repro.core.transport.loopback.LoopbackTransport` — real TCP
  over 127.0.0.1, capturing genuine kernel network-stack overheads.
- :class:`repro.core.transport.networked.NetworkedTransport` — TCP plus
  a modelled NIC/switch delay line, standing in for the multi-machine
  setup (we have one machine; the paper shows the network contributes
  an additive per-end overhead, which is what the delay line injects).

Every transport can host a *topology*: ``start(..., n_servers=N)``
builds N independent :class:`ServerInstance` replicas — each its own
:class:`RequestQueue` and worker pool over its own application replica
— and :meth:`Transport.send` consults a pluggable
:class:`~repro.core.balancer.LoadBalancer` to route each request to
one of them. ``n_servers=1`` (the default) reproduces the paper's
original client-to-single-server shape exactly.

The base class is also the transport-layer fault-injection point: with
a :class:`repro.faults.FaultInjector` installed, each send may be
dropped (the server never sees it), held for an extra in-flight delay,
or duplicated (the copy loads the server; its response is discarded).
A dropped message is *not* counted as outstanding — only a client-side
deadline recovers it. Transport faults model the shared wire and apply
before routing; server-side faults can be scoped to a subset of
replicas via ``FaultPlan.server_ids``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Tuple

from ..balancer import LoadBalancer, RoundRobinBalancer, pick_active
from ..clock import Clock
from ..collector import StatsCollector
from ..queueing import QueueClosed, RequestQueue
from ..request import Request
from ..runtime import ReplicaRuntime

__all__ = ["ServerInstance", "Transport", "TransportStats"]


class TransportStats:
    """Counters a transport maintains for sanity checks."""

    def __init__(self) -> None:
        self.sent = 0
        self.completed = 0
        self.errored = 0
        self.dropped = 0
        self.shed = 0


class ServerInstance:
    """One server replica behind the transport.

    Bundles the replica's request queue, its worker-pool
    :class:`~repro.core.server.Server`, and the transport-side
    bookkeeping the balancer consumes: ``outstanding`` counts requests
    routed to this instance whose responses have not yet come back
    (in flight + queued + in service), the depth signal for
    JSQ/power-of-two routing; ``routed`` counts lifetime assignments.
    Both counters are guarded by the transport's completion lock.

    Runtime membership (autoscaling) makes the instance list
    append-only: a removed replica is *drained* in place — flagged so
    the balancer never routes to it again — rather than deleted, which
    keeps every historical server id addressable. ``started_at`` /
    ``drained_at`` bound the replica's active window (per-server rate
    accounting divides by this window, not the whole run), and
    ``completed`` counts responses this replica actually produced.
    """

    __slots__ = (
        "server_id",
        "queue",
        "server",
        "runtime",
        "outstanding",
        "routed",
        "completed",
        "draining",
        "started_at",
        "drained_at",
    )

    def __init__(
        self,
        server_id: int,
        queue: RequestQueue,
        server,
        runtime=None,
    ) -> None:
        self.server_id = server_id
        self.queue = queue
        self.server = server
        #: The :class:`~repro.core.runtime.ReplicaRuntime` backing the
        #: replica when it executes in this process; a process-mode
        #: replica's runtime lives in the child, so this is None there.
        self.runtime = runtime
        self.outstanding = 0
        self.routed = 0
        self.completed = 0
        self.draining = False
        self.started_at = 0.0
        self.drained_at: Optional[float] = None


def _replicate_app(app, index: int):
    """Obtain an application replica for server instance ``index``.

    Applications that provide ``replica(index)`` (sharded apps — see
    :class:`repro.apps.base.ShardedApp`) name the backing object per
    instance themselves. Otherwise instance 0 always uses the
    caller's object, and later instances use ``app.clone()`` when the
    application provides one; failing that the same object is shared
    across instances, which is sound because
    :meth:`repro.apps.base.Application.process` is required to be
    thread-safe already (the single-server harness calls it from
    ``n_threads`` workers concurrently).
    """
    replica = getattr(app, "replica", None)
    if callable(replica):
        return replica(index)
    if index == 0:
        return app
    clone = getattr(app, "clone", None)
    if callable(clone):
        return clone()
    return app


class Transport:
    """Abstract base: lifecycle, routing, and completion accounting.

    Subclasses implement :meth:`_submit` (client -> server path) and
    may override :meth:`_start_impl`/:meth:`_stop_impl` for their I/O
    machinery. The base class routes each send to a server instance
    via the balancer and tracks outstanding requests so :meth:`drain`
    can wait for the last response of an open-loop run.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._collector: Optional[StatsCollector] = None
        self._instances: List[ServerInstance] = []
        self._balancer: Optional[LoadBalancer] = None
        self._injector = None
        self._completion_hook: Optional[Callable[[Request], bool]] = None
        self._outstanding = 0
        self._lock = threading.Lock()
        self._all_done = threading.Condition(self._lock)
        self._running = False
        self._fault_timers: List[threading.Timer] = []
        self.stats = TransportStats()
        # Observability hooks: None unless the run enables tracing, so
        # the hot-path cost of the default configuration is one test.
        self._tracer = None
        self._registry = None
        self._send_delay_hist = None
        # Control-plane hook: None unless the run enables repro.control.
        self._control = None
        # Health hook: None unless the run enables repro.health. With a
        # manager installed, routing consults it (ejection/breakers)
        # and every completion feeds it.
        self._health = None
        # Streaming SLO hook: None unless the run enables
        # ObservabilityConfig.slo. Fed on every send (budget anchor)
        # and every completion (latency sketch).
        self._live = None
        # Batching hook: None unless the run enables repro.batching. A
        # single stateless BatchPolicy is shared by every replica.
        self._batching = None
        # Caching tier: None unless the run enables repro.cache. One
        # thread-safe RequestCache shared by every replica's workers.
        self._cache = None
        # Start parameters retained for runtime scale-up replicas.
        self._app = None
        self._n_threads = 0
        self._queue_capacity: Optional[int] = None

    # -- lifecycle -----------------------------------------------------
    def start(
        self,
        app,
        n_threads: int,
        collector: StatsCollector,
        injector=None,
        queue_capacity: Optional[int] = None,
        n_servers: int = 1,
        balancer: Optional[LoadBalancer] = None,
        control=None,
        batching=None,
        cache=None,
    ) -> None:
        if self._running:
            raise RuntimeError("transport already started")
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        self._collector = collector
        self._injector = injector
        self._balancer = balancer if balancer is not None else RoundRobinBalancer()
        self._control = control
        self._batching = batching
        self._cache = cache
        self._app = app
        self._n_threads = n_threads
        self._queue_capacity = queue_capacity
        self._instances = []
        for server_id in range(n_servers):
            self._instances.append(self._build_instance(server_id))
        self._start_impl()
        for instance in self._instances:
            instance.server.start()
        self._running = True

    def _build_instance(self, server_id: int) -> ServerInstance:
        """Construct one replica (queue + worker pool), not yet started.

        With a control plane installed, the replica's queue gets that
        plane's queue discipline (FIFO or priority) and its per-server
        admission gate; without one, both hooks are ``None`` and the
        queue is byte-for-byte the pre-control-plane configuration.
        """
        scoped = (
            self._injector.for_server(server_id)
            if self._injector is not None
            else None
        )
        control = self._control
        runtime = ReplicaRuntime(
            _replicate_app(self._app, server_id),
            self._clock,
            n_threads=self._n_threads,
            respond=self._make_responder(server_id),
            injector=scoped,
            server_id=server_id,
            batching=self._batching,
            cache=self._cache,
            queue_capacity=self._queue_capacity,
            gate=control.gate_for(server_id) if control is not None else None,
            buffer=control.make_buffer() if control is not None else None,
        )
        instance = ServerInstance(
            server_id, runtime.queue, runtime.server, runtime=runtime
        )
        instance.started_at = self._clock.now()
        return instance

    def stop(self) -> None:
        if not self._running:
            return
        with self._lock:
            timers, self._fault_timers = self._fault_timers, []
        for timer in timers:
            timer.cancel()
        for instance in self._instances:
            # Anything still queued belongs to requests nobody is
            # waiting on (drain() already returned or timed out);
            # serving it would only delay the worker join.
            instance.server.shutdown(discard_pending=True)
        self._stop_impl()
        self._running = False

    def _start_impl(self) -> None:
        """Hook for I/O machinery startup (sockets, threads)."""

    def _stop_impl(self) -> None:
        """Hook for I/O machinery teardown."""

    def _make_responder(self, server_id: int) -> Callable[[Request], None]:
        """Bind a server's respond callback to its instance identity."""

        def respond(request: Request) -> None:
            if request.server_id is None:
                request.server_id = server_id
            self._on_response(request)

        return respond

    def set_observability(self, tracer, registry) -> None:
        """Install the run's tracer and register transport metrics.

        Must be called after :meth:`start` (gauges observe the built
        instances). Counters the transport already keeps become
        callback gauges — zero added cost on the send path; the only
        hot-path instrument is the send-delay histogram, the
        load-generator-health signal of "Tell-Tale Tail Latencies".
        """
        self._tracer = tracer
        self._registry = registry
        if registry is None:
            return
        self._send_delay_hist = registry.histogram(
            "tb_send_delay_seconds",
            help="Client-side lag between ideal arrival and actual send",
        )
        stats = self.stats
        registry.gauge(
            "tb_inflight",
            help="Requests sent and not yet completed",
            fn=lambda: self._outstanding,
        )
        for name, attr in (
            ("tb_sent_total", "sent"),
            ("tb_completed_total", "completed"),
            ("tb_errored_total", "errored"),
            ("tb_dropped_total", "dropped"),
            ("tb_shed_total", "shed"),
        ):
            registry.gauge(
                name,
                help=f"Transport lifetime {attr} count",
                fn=(lambda a=attr: getattr(stats, a)),
            )
        for instance in self._instances:
            self._register_instance_observability(instance)

    def _register_instance_observability(self, instance: ServerInstance) -> None:
        """Wire one replica into the tracer/registry (start or scale-up)."""
        if self._tracer is not None:
            instance.server.set_tracer(self._tracer)
        registry = self._registry
        if registry is None:
            return
        registry.gauge(
            "tb_queue_depth",
            help="Waiting requests in the replica's request queue",
            fn=(lambda q=instance.queue: len(q)),
            server=str(instance.server_id),
        )
        registry.gauge(
            "tb_outstanding",
            help="Routed, not-yet-answered requests per replica",
            fn=(lambda i=instance: i.outstanding),
            server=str(instance.server_id),
        )
        registry.gauge(
            "tb_busy_workers",
            help="Workers inside the application service window",
            fn=(lambda s=instance.server: s.busy_workers),
            server=str(instance.server_id),
        )
        registry.gauge(
            "tb_alive_workers",
            help="Workers not lost to injected crashes",
            fn=(lambda s=instance.server: s.alive_workers),
            server=str(instance.server_id),
        )

    def set_health(self, health) -> None:
        """Install the run's :class:`repro.health.HealthManager`.

        Routing then filters candidates through
        :meth:`HealthManager.route` (ejected replicas skipped, probes
        and breaker trials forced) and :meth:`_complete` feeds every
        attempt outcome back. ``None`` (the default) leaves both paths
        at their single ``is None`` test.
        """
        self._health = health

    def set_live(self, live) -> None:
        """Install the run's :class:`repro.obs.live.LiveObs`.

        :meth:`send` then counts every dispatched attempt into the
        open SLO window and :meth:`_complete` streams every completion
        into the windowed sketches — the same two points the health
        layer taps, so threaded and process transports are covered
        identically (process replicas funnel into this
        :meth:`_complete`). ``None`` (the default) leaves both paths
        at a single ``is None`` test.
        """
        self._live = live

    def set_completion_hook(
        self, hook: Callable[[Request], bool]
    ) -> None:
        """Install a completion interceptor (the resilience layer).

        The hook runs on every completed attempt *before* default
        recording; returning True means the hook took responsibility
        for statistics and the default collector path is skipped.
        """
        self._completion_hook = hook

    # -- topology ------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self._instances)

    @property
    def instances(self) -> Tuple[ServerInstance, ...]:
        return tuple(self._instances)

    def queue_depths(self) -> List[int]:
        """Per-instance outstanding counts (the balancer's depth vector)."""
        with self._lock:
            return [instance.outstanding for instance in self._instances]

    def active_server_ids(self) -> List[int]:
        """Ids of replicas accepting new work (non-draining)."""
        with self._lock:
            return [
                instance.server_id
                for instance in self._instances
                if not instance.draining
            ]

    def add_server(self) -> Optional[int]:
        """Grow the replica set by one at runtime (autoscale up).

        The new replica joins with a fresh queue, worker pool, and (if
        a control plane is installed) its own admission gate, and
        becomes routable the moment it is appended. Returns the new
        server id, or None when the transport is not running.
        """
        if not self._running:
            return None
        with self._lock:
            server_id = len(self._instances)
        instance = self._build_instance(server_id)
        instance.server.start()
        self._register_instance_observability(instance)
        with self._lock:
            self._instances.append(instance)
        return server_id

    def drain_server(self) -> Optional[int]:
        """Shrink the replica set by one at runtime (autoscale down).

        The youngest active replica stops receiving new work
        immediately; requests already queued or in flight on it still
        complete (the instance object stays in place so responses and
        accounting resolve normally). Returns the drained server id, or
        None when only one active replica remains.
        """
        with self._lock:
            active = [
                instance
                for instance in self._instances
                if not instance.draining
            ]
            if len(active) <= 1:
                return None
            instance = active[-1]
            instance.draining = True
            instance.drained_at = self._clock.now()
            return instance.server_id

    @property
    def alive_workers(self) -> Tuple[int, ...]:
        """Workers still serving, per instance (crash faults decrement)."""
        return tuple(
            instance.server.alive_workers for instance in self._instances
        )

    # -- client side ---------------------------------------------------
    def send(
        self,
        generated_at: float,
        payload: Any,
        *,
        logical_id: Optional[int] = None,
        attempt: int = 0,
        deadline: Optional[float] = None,
        avoid_server: Optional[int] = None,
        server_id: Optional[int] = None,
    ) -> int:
        """Submit one request; ``generated_at`` is the ideal instant.

        Routes through the balancer and returns the chosen server
        index, so callers (the resilient client) can steer a later
        hedge to a different replica via ``avoid_server``. A caller
        that already knows the destination — fan-out sub-requests are
        pinned to their data shard — passes ``server_id`` and the
        balancer sits out entirely.
        """
        if not self._running:
            raise RuntimeError("transport not started")
        request = Request(payload=payload, generated_at=generated_at)
        request.sent_at = self._clock.now()
        request.logical_id = (
            logical_id if logical_id is not None else request.request_id
        )
        request.attempt = attempt
        request.deadline = deadline
        if self._control is not None:
            self._control.classify(request)
        if server_id is not None:
            # Pinned sub-request (fan-out): destination fixed by the
            # data partition, not the balancer.
            pass
        elif len(self._instances) == 1:
            server_id = 0
        else:
            with self._lock:
                depths = [
                    instance.outstanding for instance in self._instances
                ]
                active_ids = [
                    instance.server_id
                    for instance in self._instances
                    if not instance.draining
                ]
            if self._health is not None:
                candidates, forced = self._health.route(
                    active_ids, request.sent_at
                )
                if forced:
                    # Probation probe or breaker trial: the health
                    # layer names the replica; the balancer sits out.
                    server_id = candidates[0]
                else:
                    server_id = pick_active(
                        self._balancer, depths, candidates,
                        avoid=avoid_server,
                    )
            else:
                server_id = pick_active(
                    self._balancer, depths, active_ids, avoid=avoid_server
                )
        request.server_id = server_id
        if self._send_delay_hist is not None:
            self._send_delay_hist.observe(request.sent_at - generated_at)
        if self._live is not None:
            # Send-anchored SLO accounting: the attempt burns budget
            # in the window it was dispatched, whether or not it ever
            # completes (a stalled replica must not hide its backlog).
            self._live.observe_sent(request.sent_at)
        action = (
            self._injector.transport_action()
            if self._injector is not None
            else None
        )
        if action is not None and action.drop:
            with self._lock:
                self.stats.sent += 1
                self.stats.dropped += 1
            if self._tracer is not None:
                # The server never sees this attempt; its truncated
                # chain (generated/sent) is all the trace can show.
                self._tracer.record_request(request, outcome="fault_drop")
            return server_id
        with self._all_done:
            self._outstanding += 1
            self.stats.sent += 1
            instance = self._instances[server_id]
            instance.outstanding += 1
            instance.routed += 1
        extra_delay = action.extra_delay if action is not None else 0.0
        if self._tracer is not None and extra_delay > 0.0:
            self._tracer.emit(
                "fault_delay", request.sent_at,
                logical_id=request.logical_id,
                request_id=request.request_id, attempt=attempt,
                server_id=server_id, value=extra_delay,
            )
        if action is not None and action.duplicate:
            dup = Request(payload=payload, generated_at=generated_at)
            dup.sent_at = request.sent_at
            dup.logical_id = request.logical_id
            dup.attempt = attempt
            dup.discard = True
            dup.server_id = server_id
            if self._tracer is not None:
                self._tracer.emit(
                    "fault_duplicate", dup.sent_at,
                    logical_id=dup.logical_id,
                    request_id=dup.request_id, attempt=attempt,
                    server_id=server_id,
                )
            with self._all_done:
                self._outstanding += 1
                self._instances[server_id].outstanding += 1
            self._submit_after(dup, extra_delay)
        self._submit_after(request, extra_delay)
        return server_id

    def _submit_after(self, request: Request, delay: float) -> None:
        if delay <= 0.0:
            self._submit_safe(request)
            return
        timer = threading.Timer(delay, self._submit_safe, [request])
        timer.daemon = True
        with self._lock:
            self._fault_timers.append(timer)
            if len(self._fault_timers) > 256:
                self._fault_timers = [
                    t for t in self._fault_timers if t.is_alive()
                ]
        timer.start()

    def _submit_safe(self, request: Request) -> None:
        try:
            self._submit(request)
        except (QueueClosed, OSError):
            # Arrived after shutdown: the message is lost on the wire.
            self._abandon(request)

    def _submit(self, request: Request) -> None:
        raise NotImplementedError

    def _abandon(self, request: Request) -> None:
        """Account an attempt that will never complete."""
        with self._all_done:
            self._outstanding -= 1
            self._settle_instance_locked(request)
            self.stats.dropped += 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    def drain(self, timeout: float = 300.0) -> None:
        """Block until every sent request has completed."""
        with self._all_done:
            if not self._all_done.wait_for(
                lambda: self._outstanding == 0, timeout
            ):
                raise TimeoutError(
                    f"{self._outstanding} requests still outstanding"
                )

    # -- server -> client return path ----------------------------------
    def _on_response(self, request: Request) -> None:
        """Called by the server when processing finishes.

        Default implementation completes in-process (used by the
        integrated transport); socket transports override this to ship
        the response back through their reply path instead.
        """
        self._complete(request)

    def _shed(self, request: Request) -> None:
        """Shed-response path: admission control rejected the request."""
        self._complete(request)

    def _settle_instance_locked(self, request: Request) -> None:
        """Release the routed instance's outstanding slot (lock held)."""
        server_id = request.server_id
        if server_id is not None and 0 <= server_id < len(self._instances):
            self._instances[server_id].outstanding -= 1

    def _complete(self, request: Request) -> None:
        """Stamp receipt, record, and account the completion."""
        request.response_received_at = self._clock.now()
        if self._tracer is not None:
            if request.shed:
                outcome = "shed"
            elif request.error is not None:
                outcome = "error"
            elif request.discard:
                outcome = "discard"
            else:
                outcome = None
            self._tracer.record_request(request, outcome=outcome)
        if self._health is not None and not request.discard:
            health_server = request.server_id
            if health_server is not None:
                health_ok = request.error is None and not request.shed
                self._health.record_attempt(
                    health_server,
                    (
                        request.response_received_at - request.sent_at
                        if health_ok and request.sent_at is not None
                        else None
                    ),
                    health_ok,
                    request.response_received_at,
                )
        if self._live is not None and not request.discard:
            self._live.observe(request)
        handled = False
        if self._completion_hook is not None:
            handled = bool(self._completion_hook(request))
        good = (
            request.error is None and not request.shed and not request.discard
        )
        if not handled and good:
            self._collector.add(request.finish())
        if self._control is not None and good:
            # Feed the AIMD window with end-to-end sojourn — the same
            # latency definition the run's p99 SLO is stated against.
            self._control.observe_sojourn(
                request.response_received_at - request.generated_at
            )
        drained_instance = None
        with self._all_done:
            self._outstanding -= 1
            self._settle_instance_locked(request)
            self.stats.completed += 1
            server_id = request.server_id
            if server_id is not None and 0 <= server_id < len(
                self._instances
            ):
                instance = self._instances[server_id]
                if good:
                    instance.completed += 1
                if instance.draining and instance.outstanding <= 0:
                    drained_instance = instance
            if request.error is not None:
                self.stats.errored += 1
            if request.shed:
                self.stats.shed += 1
            if self._outstanding == 0:
                self._all_done.notify_all()
        if drained_instance is not None:
            self._instance_drained(drained_instance)

    def _instance_drained(self, instance: ServerInstance) -> None:
        """Hook: a draining replica's last outstanding request resolved.

        Threaded replicas stay in place (their workers cost nothing
        idle); :class:`~repro.core.transport.ProcessTransport` overrides
        this to shut the child process down and join it within the
        drain deadline.
        """

    @property
    def server_errors(self) -> List[str]:
        errors: List[str] = []
        for instance in self._instances:
            errors.extend(instance.server.errors)
        return errors

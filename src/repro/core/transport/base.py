"""Transport interface shared by the three harness configurations.

A transport owns the path between the client (traffic shaper) and the
application's request queue, and the return path for responses. The
three configurations of Fig. 1 are three transports:

- :class:`repro.core.transport.integrated.IntegratedTransport` — client
  and application in one process, direct hand-off (shared memory).
- :class:`repro.core.transport.loopback.LoopbackTransport` — real TCP
  over 127.0.0.1, capturing genuine kernel network-stack overheads.
- :class:`repro.core.transport.networked.NetworkedTransport` — TCP plus
  a modelled NIC/switch delay line, standing in for the multi-machine
  setup (we have one machine; the paper shows the network contributes
  an additive per-end overhead, which is what the delay line injects).

The base class is also the transport-layer fault-injection point: with
a :class:`repro.faults.FaultInjector` installed, each send may be
dropped (the server never sees it), held for an extra in-flight delay,
or duplicated (the copy loads the server; its response is discarded).
A dropped message is *not* counted as outstanding — only a client-side
deadline recovers it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from ..clock import Clock
from ..collector import StatsCollector
from ..queueing import QueueClosed, RequestQueue
from ..request import Request
from ..server import Server

__all__ = ["Transport", "TransportStats"]


class TransportStats:
    """Counters a transport maintains for sanity checks."""

    def __init__(self) -> None:
        self.sent = 0
        self.completed = 0
        self.errored = 0
        self.dropped = 0
        self.shed = 0


class Transport:
    """Abstract base: lifecycle + completion accounting.

    Subclasses implement :meth:`_submit` (client -> server path) and
    may override :meth:`_start_impl`/:meth:`_stop_impl` for their I/O
    machinery. The base class tracks outstanding requests so
    :meth:`drain` can wait for the last response of an open-loop run.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._collector: Optional[StatsCollector] = None
        self._queue: Optional[RequestQueue] = None
        self._server: Optional[Server] = None
        self._injector = None
        self._completion_hook: Optional[Callable[[Request], bool]] = None
        self._outstanding = 0
        self._lock = threading.Lock()
        self._all_done = threading.Condition(self._lock)
        self._running = False
        self._fault_timers: List[threading.Timer] = []
        self.stats = TransportStats()

    # -- lifecycle -----------------------------------------------------
    def start(
        self,
        app,
        n_threads: int,
        collector: StatsCollector,
        injector=None,
        queue_capacity: Optional[int] = None,
    ) -> None:
        if self._running:
            raise RuntimeError("transport already started")
        self._collector = collector
        self._injector = injector
        self._queue = RequestQueue(
            self._clock, capacity=queue_capacity, injector=injector
        )
        self._server = Server(
            app,
            self._queue,
            self._clock,
            n_threads=n_threads,
            respond=self._on_response,
            injector=injector,
        )
        self._start_impl()
        self._server.start()
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        with self._lock:
            timers, self._fault_timers = self._fault_timers, []
        for timer in timers:
            timer.cancel()
        self._server.shutdown()
        self._stop_impl()
        self._running = False

    def _start_impl(self) -> None:
        """Hook for I/O machinery startup (sockets, threads)."""

    def _stop_impl(self) -> None:
        """Hook for I/O machinery teardown."""

    def set_completion_hook(
        self, hook: Callable[[Request], bool]
    ) -> None:
        """Install a completion interceptor (the resilience layer).

        The hook runs on every completed attempt *before* default
        recording; returning True means the hook took responsibility
        for statistics and the default collector path is skipped.
        """
        self._completion_hook = hook

    # -- client side ---------------------------------------------------
    def send(
        self,
        generated_at: float,
        payload: Any,
        *,
        logical_id: Optional[int] = None,
        attempt: int = 0,
        deadline: Optional[float] = None,
    ) -> None:
        """Submit one request; ``generated_at`` is the ideal instant."""
        if not self._running:
            raise RuntimeError("transport not started")
        request = Request(payload=payload, generated_at=generated_at)
        request.sent_at = self._clock.now()
        request.logical_id = (
            logical_id if logical_id is not None else request.request_id
        )
        request.attempt = attempt
        request.deadline = deadline
        action = (
            self._injector.transport_action()
            if self._injector is not None
            else None
        )
        if action is not None and action.drop:
            with self._lock:
                self.stats.sent += 1
                self.stats.dropped += 1
            return
        with self._all_done:
            self._outstanding += 1
            self.stats.sent += 1
        extra_delay = action.extra_delay if action is not None else 0.0
        if action is not None and action.duplicate:
            dup = Request(payload=payload, generated_at=generated_at)
            dup.sent_at = request.sent_at
            dup.logical_id = request.logical_id
            dup.attempt = attempt
            dup.discard = True
            with self._all_done:
                self._outstanding += 1
            self._submit_after(dup, extra_delay)
        self._submit_after(request, extra_delay)

    def _submit_after(self, request: Request, delay: float) -> None:
        if delay <= 0.0:
            self._submit_safe(request)
            return
        timer = threading.Timer(delay, self._submit_safe, [request])
        timer.daemon = True
        with self._lock:
            self._fault_timers.append(timer)
            if len(self._fault_timers) > 256:
                self._fault_timers = [
                    t for t in self._fault_timers if t.is_alive()
                ]
        timer.start()

    def _submit_safe(self, request: Request) -> None:
        try:
            self._submit(request)
        except (QueueClosed, OSError):
            # Arrived after shutdown: the message is lost on the wire.
            self._abandon(request)

    def _submit(self, request: Request) -> None:
        raise NotImplementedError

    def _abandon(self, request: Request) -> None:
        """Account an attempt that will never complete."""
        with self._all_done:
            self._outstanding -= 1
            self.stats.dropped += 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    def drain(self, timeout: float = 300.0) -> None:
        """Block until every sent request has completed."""
        with self._all_done:
            if not self._all_done.wait_for(
                lambda: self._outstanding == 0, timeout
            ):
                raise TimeoutError(
                    f"{self._outstanding} requests still outstanding"
                )

    # -- server -> client return path ----------------------------------
    def _on_response(self, request: Request) -> None:
        """Called by the server when processing finishes.

        Default implementation completes in-process (used by the
        integrated transport); socket transports override this to ship
        the response back through their reply path instead.
        """
        self._complete(request)

    def _shed(self, request: Request) -> None:
        """Shed-response path: admission control rejected the request."""
        self._complete(request)

    def _complete(self, request: Request) -> None:
        """Stamp receipt, record, and account the completion."""
        request.response_received_at = self._clock.now()
        handled = False
        if self._completion_hook is not None:
            handled = bool(self._completion_hook(request))
        if (
            not handled
            and request.error is None
            and not request.shed
            and not request.discard
        ):
            self._collector.add(request.finish())
        with self._all_done:
            self._outstanding -= 1
            self.stats.completed += 1
            if request.error is not None:
                self.stats.errored += 1
            if request.shed:
                self.stats.shed += 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    @property
    def server_errors(self):
        return self._server.errors if self._server else []

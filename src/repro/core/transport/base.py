"""Transport interface shared by the three harness configurations.

A transport owns the path between the client (traffic shaper) and the
application's request queue, and the return path for responses. The
three configurations of Fig. 1 are three transports:

- :class:`repro.core.transport.integrated.IntegratedTransport` — client
  and application in one process, direct hand-off (shared memory).
- :class:`repro.core.transport.loopback.LoopbackTransport` — real TCP
  over 127.0.0.1, capturing genuine kernel network-stack overheads.
- :class:`repro.core.transport.networked.NetworkedTransport` — TCP plus
  a modelled NIC/switch delay line, standing in for the multi-machine
  setup (we have one machine; the paper shows the network contributes
  an additive per-end overhead, which is what the delay line injects).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from ..clock import Clock
from ..collector import StatsCollector
from ..queueing import RequestQueue
from ..request import Request
from ..server import Server

__all__ = ["Transport", "TransportStats"]


class TransportStats:
    """Counters a transport maintains for sanity checks."""

    def __init__(self) -> None:
        self.sent = 0
        self.completed = 0
        self.errored = 0


class Transport:
    """Abstract base: lifecycle + completion accounting.

    Subclasses implement :meth:`_submit` (client -> server path) and
    may override :meth:`_start_impl`/:meth:`_stop_impl` for their I/O
    machinery. The base class tracks outstanding requests so
    :meth:`drain` can wait for the last response of an open-loop run.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._collector: Optional[StatsCollector] = None
        self._queue: Optional[RequestQueue] = None
        self._server: Optional[Server] = None
        self._outstanding = 0
        self._lock = threading.Lock()
        self._all_done = threading.Condition(self._lock)
        self._running = False
        self.stats = TransportStats()

    # -- lifecycle -----------------------------------------------------
    def start(self, app, n_threads: int, collector: StatsCollector) -> None:
        if self._running:
            raise RuntimeError("transport already started")
        self._collector = collector
        self._queue = RequestQueue(self._clock)
        self._server = Server(
            app,
            self._queue,
            self._clock,
            n_threads=n_threads,
            respond=self._on_response,
        )
        self._start_impl()
        self._server.start()
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        self._server.shutdown()
        self._stop_impl()
        self._running = False

    def _start_impl(self) -> None:
        """Hook for I/O machinery startup (sockets, threads)."""

    def _stop_impl(self) -> None:
        """Hook for I/O machinery teardown."""

    # -- client side ---------------------------------------------------
    def send(self, generated_at: float, payload: Any) -> None:
        """Submit one request; ``generated_at`` is the ideal instant."""
        if not self._running:
            raise RuntimeError("transport not started")
        request = Request(payload=payload, generated_at=generated_at)
        request.sent_at = self._clock.now()
        with self._lock:
            self._outstanding += 1
            self.stats.sent += 1
        self._submit(request)

    def _submit(self, request: Request) -> None:
        raise NotImplementedError

    def drain(self, timeout: float = 300.0) -> None:
        """Block until every sent request has completed."""
        with self._all_done:
            if not self._all_done.wait_for(
                lambda: self._outstanding == 0, timeout
            ):
                raise TimeoutError(
                    f"{self._outstanding} requests still outstanding"
                )

    # -- server -> client return path ----------------------------------
    def _on_response(self, request: Request) -> None:
        """Called by the server when processing finishes.

        Default implementation completes in-process (used by the
        integrated transport); socket transports override this to ship
        the response back through their reply path instead.
        """
        self._complete(request)

    def _complete(self, request: Request) -> None:
        """Stamp receipt, record, and account the completion."""
        request.response_received_at = self._clock.now()
        if request.error is None:
            self._collector.add(request.finish())
        with self._all_done:
            self._outstanding -= 1
            self.stats.completed += 1
            if request.error is not None:
                self.stats.errored += 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    @property
    def server_errors(self):
        return self._server.errors if self._server else []

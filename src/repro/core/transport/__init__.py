"""The three harness configurations of Fig. 1 as pluggable transports."""

from .base import ServerInstance, Transport, TransportStats
from .integrated import IntegratedTransport
from .loopback import LoopbackTransport
from .networked import DelayLine, NetworkedTransport
from .process import ProcessReplicaHandle, ProcessTransport
from .remote import AppServerProcess, run_harness_multiprocess

__all__ = [
    "ServerInstance",
    "Transport",
    "TransportStats",
    "IntegratedTransport",
    "LoopbackTransport",
    "NetworkedTransport",
    "DelayLine",
    "ProcessTransport",
    "ProcessReplicaHandle",
    "AppServerProcess",
    "run_harness_multiprocess",
]


def make_transport(
    config: str, clock, one_way_delay: float = 25e-6, execution=None
) -> Transport:
    """Build a transport by configuration name.

    ``config`` is one of ``"integrated"``, ``"loopback"``,
    ``"networked"`` — the three setups of Fig. 1. With an
    :class:`~repro.core.config.ExecutionConfig` in ``"process"`` mode,
    the integrated shape is served by :class:`ProcessTransport`
    (replicas in their own OS processes); config validation restricts
    process mode to the integrated configuration.
    """
    if execution is not None and execution.mode == "process":
        if config != "integrated":
            raise ValueError(
                "process execution mode requires the 'integrated' "
                f"configuration, got {config!r}"
            )
        return ProcessTransport(clock, execution=execution)
    if config == "integrated":
        return IntegratedTransport(clock)
    if config == "loopback":
        return LoopbackTransport(clock)
    if config == "networked":
        return NetworkedTransport(clock, one_way_delay=one_way_delay)
    raise ValueError(
        f"unknown harness configuration {config!r}; expected "
        "'integrated', 'loopback', or 'networked'"
    )

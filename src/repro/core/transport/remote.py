"""Multi-process networked harness: the app server in its own process.

The paper's networked configuration runs clients on machines separate
from the application. This module reproduces that process boundary on
one host: the application lives in a child OS process (its own GIL,
allocator, and scheduler context), serving framed TCP requests;
clients (the traffic shaper) run in the parent.

Timestamping across processes follows the multi-machine discipline:
no cross-process clock comparisons. The parent measures sojourn time
from its own clock; the server reports *durations* (queue time,
service time) measured on its clock; the parent reconstructs a
consistent timestamp chain by anchoring those durations to the
response arrival instant — exactly what a cross-machine TailBench
deployment must do, since clocks are not synchronized.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from typing import Any, Dict, Optional

from ..clock import WallClock
from ..collector import StatsCollector
from ..config import HarnessConfig
from ..queueing import RequestQueue
from ..request import Request
from ..server import Server
from ..traffic import (
    ArrivalSchedule,
    DeterministicArrivals,
    PoissonArrivals,
    TrafficShaper,
)
from .protocol import ConnectionClosed, recv_message, send_message

__all__ = ["AppServerProcess", "run_harness_multiprocess"]


def _server_main(app_name: str, app_kwargs: Dict, n_threads: int,
                 port_pipe) -> None:
    """Child-process entry point: build the app and serve TCP requests."""
    from ...apps import create_app  # import inside the child

    app = create_app(app_name, **app_kwargs)
    app.setup()
    clock = WallClock()
    queue = RequestQueue(clock)

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port_pipe.send(listener.getsockname()[1])
    port_pipe.close()

    reply_locks: Dict[int, threading.Lock] = {}
    connections: Dict[int, socket.socket] = {}

    def respond(request: Request) -> None:
        conn_id, request_id = request.payload[0], request.payload[1]
        message = {
            "id": request_id,
            "queue_time": request.service_start_at - request.enqueued_at,
            "service_time": request.service_end_at - request.service_start_at,
            "response": request.response,
            "error": request.error,
        }
        conn = connections.get(conn_id)
        if conn is None:
            return
        with reply_locks[conn_id]:
            try:
                send_message(conn, message)
            except OSError:
                pass

    class _Shim:
        """Unwraps the (conn_id, request_id, payload) envelope."""

        @staticmethod
        def process(payload):
            return app.process(payload[2])

    server = Server(_Shim(), queue, clock, n_threads=n_threads, respond=respond)
    server.start()

    def reader(conn_id: int, conn: socket.socket) -> None:
        while True:
            try:
                message = recv_message(conn)
            except (ConnectionClosed, OSError):
                return
            if message.get("op") == "shutdown":
                queue.close()
                return
            request = Request(
                payload=(conn_id, message["id"], message["payload"]),
                generated_at=0.0,
            )
            request.sent_at = clock.now()
            queue.put(request)

    next_conn = 0
    try:
        while True:
            conn, _ = listener.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connections[next_conn] = conn
            reply_locks[next_conn] = threading.Lock()
            threading.Thread(
                target=reader, args=(next_conn, conn), daemon=True
            ).start()
            next_conn += 1
    except OSError:
        pass  # listener closed during shutdown


class AppServerProcess:
    """Lifecycle wrapper around the child application-server process."""

    def __init__(self, app_name: str, app_kwargs: Dict = None,
                 n_threads: int = 1) -> None:
        self.app_name = app_name
        self.app_kwargs = dict(app_kwargs or {})
        self.n_threads = n_threads
        self._process: Optional[multiprocessing.Process] = None
        self.port: Optional[int] = None

    def start(self, timeout: float = 120.0) -> int:
        if self._process is not None:
            raise RuntimeError("server process already started")
        parent_pipe, child_pipe = multiprocessing.Pipe(duplex=False)
        self._process = multiprocessing.get_context("fork").Process(
            target=_server_main,
            args=(self.app_name, self.app_kwargs, self.n_threads, child_pipe),
            daemon=True,
        )
        self._process.start()
        child_pipe.close()
        if not parent_pipe.poll(timeout):
            self.stop()
            raise TimeoutError("app server did not report its port in time")
        self.port = parent_pipe.recv()
        return self.port

    def connect(self) -> socket.socket:
        if self.port is None:
            raise RuntimeError("server not started")
        conn = socket.create_connection(("127.0.0.1", self.port))
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def stop(self) -> None:
        if self._process is not None:
            self._process.terminate()
            self._process.join(10.0)
            self._process = None



def run_harness_multiprocess(
    app_name: str,
    config: HarnessConfig,
    app_kwargs: Dict = None,
    n_client_connections: int = 2,
):
    """One measurement run against an app in a separate process.

    Multiple client connections avoid client-side queuing (Sec. IV-C);
    requests round-robin across them. Returns a
    :class:`repro.core.harness.HarnessResult`.
    """
    from ..harness import HarnessResult  # deferred: avoids import cycle

    if n_client_connections < 1:
        raise ValueError("need at least one client connection")
    clock = WallClock()
    collector = StatsCollector(warmup_requests=config.warmup_requests)
    server = AppServerProcess(
        app_name, app_kwargs, n_threads=config.n_threads
    )
    server.start()

    pending: Dict[int, Request] = {}
    pending_lock = threading.Lock()
    outstanding = threading.Semaphore(0)
    completed = {"count": 0, "errors": 0}

    def client_reader(conn: socket.socket) -> None:
        while True:
            try:
                message = recv_message(conn)
            except (ConnectionClosed, OSError):
                return
            now = clock.now()
            with pending_lock:
                request = pending.pop(message["id"], None)
            if request is None:
                continue
            # Anchor server-side durations to the response instant
            # (cross-process clocks are not comparable; durations are).
            request.response_received_at = now
            service_end = now
            service_start = service_end - max(message["service_time"], 0.0)
            enqueued = service_start - max(message["queue_time"], 0.0)
            request.enqueued_at = max(enqueued, request.sent_at)
            request.service_start_at = max(service_start, request.enqueued_at)
            request.service_end_at = max(service_end, request.service_start_at)
            request.error = message["error"]
            if request.error is None:
                collector.add(request.finish())
            else:
                completed["errors"] += 1
            completed["count"] += 1
            outstanding.release()

    connections = [server.connect() for _ in range(n_client_connections)]
    readers = [
        threading.Thread(target=client_reader, args=(conn,), daemon=True)
        for conn in connections
    ]
    for thread in readers:
        thread.start()

    # Build payloads in the parent with the app's client generator.
    from ...apps import create_app

    template = create_app(app_name, **(app_kwargs or {}))
    client = template.make_client(seed=config.seed)
    payloads = [client.next_request() for _ in range(config.total_requests)]

    send_locks = [threading.Lock() for _ in connections]
    counter = {"i": 0}

    def send(generated_at: float, payload: Any) -> None:
        request = Request(payload=None, generated_at=generated_at)
        request.sent_at = clock.now()
        with pending_lock:
            pending[request.request_id] = request
        idx = counter["i"] % len(connections)
        counter["i"] += 1
        with send_locks[idx]:
            send_message(
                connections[idx], {"id": request.request_id, "payload": payload}
            )

    process = (
        DeterministicArrivals(config.qps)
        if config.deterministic_arrivals
        else PoissonArrivals(config.qps)
    )
    schedule = ArrivalSchedule.generate(
        process, config.total_requests, seed=config.seed
    )
    shaper = TrafficShaper(clock, schedule)

    started = clock.now()
    try:
        shaper.run(send, payloads)
        for _ in range(config.total_requests):
            if not outstanding.acquire(timeout=120.0):
                raise TimeoutError("responses stopped arriving")
        wall_time = clock.now() - started
    finally:
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        server.stop()

    return HarnessResult(
        config=config,
        stats=collector.snapshot(),
        offered_qps=config.qps,
        achieved_qps=completed["count"] / wall_time if wall_time else 0.0,
        wall_time=wall_time,
        server_errors=tuple(
            ["(remote process)"] * completed["errors"]
        ),
    )

"""Request/response records and their timestamp chain.

TailBench distinguishes *service time* (application processing only)
from *sojourn time* (end-to-end: queueing + service + network), see
Sec. V. Each :class:`Request` carries the full timestamp chain so all
of these can be derived after the fact:

    generated -> sent -> enqueued -> service_start -> service_end
              -> response_received

``generated`` is the ideal open-loop arrival instant produced by the
traffic shaper; measuring latency from this instant (rather than from
the actual send time) is what avoids the coordinated-omission pitfall
[Tene 2013]: a late send does not hide the queueing delay the request
actually suffered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Request", "RequestRecord"]

_request_ids = itertools.count()


@dataclass
class Request:
    """One in-flight request plus its accumulating timestamps (seconds).

    A request is one *attempt* of a logical request: retries and hedges
    share a ``logical_id`` and carry increasing ``attempt`` numbers, so
    the client can match responses back to the logical request they
    answer. ``deadline`` is the absolute instant after which a response
    no longer counts as a success; ``shed`` marks an admission-control
    rejection; ``discard`` marks a fault-injected duplicate whose
    response must be ignored.
    """

    payload: Any
    generated_at: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    sent_at: Optional[float] = None
    enqueued_at: Optional[float] = None
    service_start_at: Optional[float] = None
    service_end_at: Optional[float] = None
    response_received_at: Optional[float] = None
    response: Any = None
    error: Optional[str] = None
    logical_id: Optional[int] = None
    attempt: int = 0
    deadline: Optional[float] = None
    shed: bool = False
    discard: bool = False
    #: Index of the server instance this attempt was routed to (set by
    #: the balancer in multi-server topologies; 0 in the classic
    #: single-server harness shape).
    server_id: Optional[int] = None
    #: Scheduling priority (higher = more urgent). 0 for unclassified
    #: traffic; set by the control plane's request classifier when
    #: priority scheduling is enabled.
    priority: int = 0
    #: Name of the request class the classifier assigned (None for
    #: unclassified traffic); carried onto the record so per-class
    #: latency can be reported.
    request_class: Optional[str] = None
    #: Number of requests co-scheduled in this request's service batch
    #: (1 when batching is off or the batch degenerated to a single
    #: member). Set by the batched worker loop at service start.
    batch_size: int = 1
    #: True when the caching tier answered this request without running
    #: the application (the service window then covers only the
    #: configured hit cost). Set by the server worker (live) or the
    #: simulated server (sim) when a cache lookup hits.
    cache_hit: bool = False

    def finish(self, partial: bool = False) -> "RequestRecord":
        """Freeze into an immutable record; validates the chain.

        By default every stamp must be present and monotone — a
        measured completion with a hole in its chain is a harness bug.
        With ``partial=True``, missing stamps are tolerated (only
        monotonicity among the stamped ones is enforced): shed and
        discarded attempts never reach service, yet their truncated
        chains still need to be representable in traces.
        """
        chain = [
            ("generated_at", self.generated_at),
            ("sent_at", self.sent_at),
            ("enqueued_at", self.enqueued_at),
            ("service_start_at", self.service_start_at),
            ("service_end_at", self.service_end_at),
            ("response_received_at", self.response_received_at),
        ]
        prev_name, prev_val = chain[0]
        for name, val in chain[1:]:
            if val is None:
                if partial:
                    continue
                raise ValueError(f"request {self.request_id}: {name} not stamped")
            if val < prev_val - 1e-9:
                raise ValueError(
                    f"request {self.request_id}: {name}={val} precedes "
                    f"{prev_name}={prev_val}"
                )
            prev_name, prev_val = name, val
        return RequestRecord(
            request_id=self.request_id,
            generated_at=self.generated_at,
            sent_at=self.sent_at,
            enqueued_at=self.enqueued_at,
            service_start_at=self.service_start_at,
            service_end_at=self.service_end_at,
            response_received_at=self.response_received_at,
            server_id=self.server_id if self.server_id is not None else 0,
            logical_id=self.logical_id,
            attempt=self.attempt,
            shed=self.shed,
            request_class=self.request_class,
            batch_size=self.batch_size,
            cache_hit=self.cache_hit,
        )


@dataclass(frozen=True)
class RequestRecord:
    """Immutable timing record of one completed (or rejected) request.

    Records built by ``finish()`` (the strict path) always carry the
    full chain; those built by ``finish(partial=True)`` may have
    ``None`` holes — e.g. a shed attempt never reaches service — and
    answer :attr:`complete` False. The derived-time properties assume
    a complete chain; callers holding partial records (the tracing
    layer) must check :attr:`complete` first.
    """

    request_id: int
    generated_at: float
    sent_at: Optional[float]
    enqueued_at: Optional[float]
    service_start_at: Optional[float]
    service_end_at: Optional[float]
    response_received_at: Optional[float]
    server_id: int = 0
    logical_id: Optional[int] = None
    attempt: int = 0
    shed: bool = False
    request_class: Optional[str] = None
    batch_size: int = 1
    #: Whether the caching tier short-circuited service for this request.
    cache_hit: bool = False

    @property
    def complete(self) -> bool:
        """True when every stamp of the chain is present."""
        return None not in (
            self.sent_at,
            self.enqueued_at,
            self.service_start_at,
            self.service_end_at,
            self.response_received_at,
        )

    @property
    def service_time(self) -> float:
        """Pure application processing time."""
        return self.service_end_at - self.service_start_at

    @property
    def service_share(self) -> float:
        """Per-request cost attribution of a batched service window.

        The whole batch shares one service window; dividing by the
        batch occupancy charges each member its amortized cost, so
        aggregate server busy-time reconstructed from records is not
        inflated ``batch_size``-fold. Equal to :attr:`service_time`
        for unbatched requests.
        """
        return self.service_time / self.batch_size

    @property
    def queue_time(self) -> float:
        """Time spent waiting in the server's request queue."""
        return self.service_start_at - self.enqueued_at

    @property
    def sojourn_time(self) -> float:
        """End-to-end latency from ideal (open-loop) generation instant."""
        return self.response_received_at - self.generated_at

    @property
    def send_delay(self) -> float:
        """Client-side lag between ideal arrival instant and actual send.

        Persistent growth here means the load generator itself cannot
        keep up — a measurement-validity red flag the harness checks.
        """
        return self.sent_at - self.generated_at

    @property
    def network_time(self) -> float:
        """Transport time, both directions (send->enqueue + service_end->recv)."""
        return (self.enqueued_at - self.sent_at) + (
            self.response_received_at - self.service_end_at
        )

"""End-to-end harness orchestration for live (wall-clock) runs.

``run_harness`` wires together the TailBench harness components of
Fig. 1 — application client, traffic shaper, transport, request queue,
worker pool, statistics collector — executes one warm measurement run,
and returns a :class:`HarnessResult`.

Runs may inject faults (``config.faults``) and recover from them
(``config.resilience``): the resilient client bounds each logical
request with a deadline, retries failures with jittered backoff, and
optionally hedges — with retries scheduled off the shaper thread so
the open-loop guarantee survives partial failure. The result then
distinguishes *achieved* throughput (completions) from *goodput*
(deadline-met completions) and reports success-only vs per-attempt
latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults import FaultInjector
from ..stats import LatencySummary
from .clock import Clock, WallClock
from .collector import CollectedStats, StatsCollector
from .config import HarnessConfig
from .resilience import ResilientClient
from .traffic import (
    ArrivalSchedule,
    DeterministicArrivals,
    PoissonArrivals,
    TrafficShaper,
)
from .transport import make_transport

__all__ = ["HarnessResult", "run_harness"]


@dataclass(frozen=True)
class HarnessResult:
    """Outcome of one measurement run."""

    config: HarnessConfig
    stats: CollectedStats
    offered_qps: float
    achieved_qps: float
    wall_time: float
    server_errors: tuple
    outcomes: Dict[str, int] = field(default_factory=dict)
    goodput_qps: float = 0.0
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    @property
    def service(self) -> LatencySummary:
        return self.stats.summary("service")

    @property
    def queue(self) -> LatencySummary:
        return self.stats.summary("queue")

    @property
    def attempt_latency(self) -> LatencySummary:
        """Per-attempt latency summary (every attempt with a response)."""
        return self.stats.attempt_summary()

    @property
    def retry_amplification(self) -> float:
        """Attempts sent per logical request offered (1.0 = no retries)."""
        offered = self.outcomes.get("offered", 0)
        attempts = self.outcomes.get("attempts", 0)
        if offered == 0 or attempts == 0:
            return 1.0
        return attempts / offered

    @property
    def success_rate(self) -> float:
        """Fraction of offered logical requests that met their deadline."""
        offered = self.outcomes.get("offered", 0)
        if offered == 0:
            return 1.0
        return self.outcomes.get("succeeded", 0) / offered

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: the server could not keep up.

        If achieved throughput fell more than 10% below offered load,
        the queue was growing without bound during the run.
        """
        return self.achieved_qps < 0.9 * self.offered_qps

    def describe(self) -> str:
        lines = [
            f"configuration={self.config.configuration} "
            f"qps={self.offered_qps:g} threads={self.config.n_threads}",
            f"achieved_qps={self.achieved_qps:.1f} "
            f"measured={self.stats.count} saturated={self.saturated}",
            f"sojourn: {self.sojourn.describe()}",
            f"service: {self.service.describe()}",
            f"queue:   {self.queue.describe()}",
        ]
        if self.outcomes:
            o = self.outcomes
            lines.append(
                f"goodput_qps={self.goodput_qps:.1f} "
                f"succeeded={o.get('succeeded', 0)} "
                f"timed_out={o.get('timed_out', 0)} "
                f"failed={o.get('failed', 0)} shed={o.get('shed', 0)} "
                f"retries={o.get('retries', 0)} "
                f"amplification={self.retry_amplification:.2f}"
            )
        return "\n".join(lines)


def run_harness(
    app,
    config: HarnessConfig,
    clock: Optional[Clock] = None,
) -> HarnessResult:
    """Execute one live load-testing run against ``app``.

    ``app`` implements the :class:`repro.apps.base.Application`
    interface and must already be set up (indexes built, tables
    loaded). The run generates ``config.total_requests`` requests at
    ``config.qps`` with exponential interarrival times, discards the
    warmup prefix, and measures the rest.
    """
    clock = clock or WallClock()
    collector = StatsCollector(warmup_requests=config.warmup_requests)
    injector = (
        FaultInjector(config.faults, seed=config.seed)
        if config.faults is not None and not config.faults.is_noop
        else None
    )
    transport = make_transport(
        config.configuration, clock, one_way_delay=config.one_way_delay
    )

    client = app.make_client(seed=config.seed)
    payloads: List = [client.next_request() for _ in range(config.total_requests)]

    process = (
        DeterministicArrivals(config.qps)
        if config.deterministic_arrivals
        else PoissonArrivals(config.qps)
    )
    schedule = ArrivalSchedule.generate(
        process, config.total_requests, seed=config.seed
    )
    shaper = TrafficShaper(clock, schedule)

    transport.start(
        app,
        config.n_threads,
        collector,
        injector=injector,
        queue_capacity=config.queue_capacity,
    )
    resilient: Optional[ResilientClient] = None
    if config.resilience.enabled:
        resilient = ResilientClient(
            transport, clock, config.resilience, collector, seed=config.seed
        )
    if injector is not None:
        injector.start_run(clock.now())
    started = clock.now()
    try:
        if resilient is not None:
            shaper.run(resilient.send, payloads)
            resilient.drain()
        else:
            shaper.run(transport.send, payloads)
            transport.drain()
    finally:
        wall_time = clock.now() - started
        if resilient is not None:
            resilient.close()
        transport.stop()

    stats = collector.snapshot()
    outcomes = collector.outcome_counts()
    if not collector.outcomes_used:
        # No resilience layer ran: synthesize the logical tallies from
        # what the transport saw, so downstream reporting is uniform.
        outcomes["offered"] = config.total_requests
        outcomes["attempts"] = config.total_requests
        outcomes["succeeded"] = stats.count + stats.dropped_warmup
        outcomes["errors"] = transport.stats.errored
        outcomes["shed"] = transport.stats.shed
    achieved = config.total_requests / wall_time if wall_time > 0 else 0.0
    goodput = (
        outcomes.get("succeeded", 0) / wall_time if wall_time > 0 else 0.0
    )
    return HarnessResult(
        config=config,
        stats=stats,
        offered_qps=config.qps,
        achieved_qps=achieved,
        wall_time=wall_time,
        server_errors=tuple(transport.server_errors),
        outcomes=outcomes,
        goodput_qps=goodput,
        fault_counts=injector.counts() if injector is not None else {},
    )

"""End-to-end harness orchestration for live (wall-clock) runs.

``run_harness`` wires together the TailBench harness components of
Fig. 1 — application client, traffic shaper, transport, request queue,
worker pool, statistics collector — executes one warm measurement run,
and returns a :class:`HarnessResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..stats import LatencySummary
from .clock import Clock, WallClock
from .collector import CollectedStats, StatsCollector
from .config import HarnessConfig
from .traffic import (
    ArrivalSchedule,
    DeterministicArrivals,
    PoissonArrivals,
    TrafficShaper,
)
from .transport import make_transport

__all__ = ["HarnessResult", "run_harness"]


@dataclass(frozen=True)
class HarnessResult:
    """Outcome of one measurement run."""

    config: HarnessConfig
    stats: CollectedStats
    offered_qps: float
    achieved_qps: float
    wall_time: float
    server_errors: tuple

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    @property
    def service(self) -> LatencySummary:
        return self.stats.summary("service")

    @property
    def queue(self) -> LatencySummary:
        return self.stats.summary("queue")

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: the server could not keep up.

        If achieved throughput fell more than 10% below offered load,
        the queue was growing without bound during the run.
        """
        return self.achieved_qps < 0.9 * self.offered_qps

    def describe(self) -> str:
        lines = [
            f"configuration={self.config.configuration} "
            f"qps={self.offered_qps:g} threads={self.config.n_threads}",
            f"achieved_qps={self.achieved_qps:.1f} "
            f"measured={self.stats.count} saturated={self.saturated}",
            f"sojourn: {self.sojourn.describe()}",
            f"service: {self.service.describe()}",
            f"queue:   {self.queue.describe()}",
        ]
        return "\n".join(lines)


def run_harness(
    app,
    config: HarnessConfig,
    clock: Optional[Clock] = None,
) -> HarnessResult:
    """Execute one live load-testing run against ``app``.

    ``app`` implements the :class:`repro.apps.base.Application`
    interface and must already be set up (indexes built, tables
    loaded). The run generates ``config.total_requests`` requests at
    ``config.qps`` with exponential interarrival times, discards the
    warmup prefix, and measures the rest.
    """
    clock = clock or WallClock()
    collector = StatsCollector(warmup_requests=config.warmup_requests)
    transport = make_transport(
        config.configuration, clock, one_way_delay=config.one_way_delay
    )

    client = app.make_client(seed=config.seed)
    payloads: List = [client.next_request() for _ in range(config.total_requests)]

    process = (
        DeterministicArrivals(config.qps)
        if config.deterministic_arrivals
        else PoissonArrivals(config.qps)
    )
    schedule = ArrivalSchedule.generate(
        process, config.total_requests, seed=config.seed
    )
    shaper = TrafficShaper(clock, schedule)

    transport.start(app, config.n_threads, collector)
    started = clock.now()
    try:
        shaper.run(transport.send, payloads)
        transport.drain()
    finally:
        wall_time = clock.now() - started
        transport.stop()

    achieved = config.total_requests / wall_time if wall_time > 0 else 0.0
    return HarnessResult(
        config=config,
        stats=collector.snapshot(),
        offered_qps=config.qps,
        achieved_qps=achieved,
        wall_time=wall_time,
        server_errors=tuple(transport.server_errors),
    )

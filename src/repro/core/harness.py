"""End-to-end harness orchestration for live (wall-clock) runs.

``run_harness`` wires together the TailBench harness components of
Fig. 1 — application client, traffic shaper, transport, request queue,
worker pool, statistics collector — executes one warm measurement run,
and returns a :class:`HarnessResult`.

Runs may inject faults (``config.faults``) and recover from them
(``config.resilience``): the resilient client bounds each logical
request with a deadline, retries failures with jittered backoff, and
optionally hedges — with retries scheduled off the shaper thread so
the open-loop guarantee survives partial failure. The result then
distinguishes *achieved* throughput (completions) from *goodput*
(deadline-met completions) and reports success-only vs per-attempt
latency percentiles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..faults import FaultInjector, ScenarioDriver, ScenarioInjector
from ..stats import LatencySummary
from .balancer import make_balancer
from .clock import Clock, WallClock
from .collector import CollectedStats, StatsCollector
from .config import HarnessConfig
from .resilience import ResilientClient
from .traffic import (
    ArrivalSchedule,
    DeterministicArrivals,
    PoissonArrivals,
    TrafficShaper,
)
from .transport import make_transport

__all__ = ["HarnessResult", "run_harness"]


@dataclass(frozen=True)
class HarnessResult:
    """Outcome of one measurement run."""

    config: HarnessConfig
    stats: CollectedStats
    offered_qps: float
    achieved_qps: float
    wall_time: float
    server_errors: tuple
    outcomes: Dict[str, int] = field(default_factory=dict)
    goodput_qps: float = 0.0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Workers still serving per server instance at run end; injected
    #: crashes decrement, so capacity loss is observable.
    alive_workers: Tuple[int, ...] = ()
    #: Requests routed to each server instance by the balancer
    #: (lifetime assignments, including warmup and failed attempts).
    routed_counts: Tuple[int, ...] = ()

    #: Observability artifacts (trace events, metric series, snapshot);
    #: None unless ``config.observability.tracing`` was enabled.
    obs: Optional[object] = None

    #: Control-plane tallies (ticks, admitted, per-cause drops, final
    #: AIMD limit, scale actions); empty unless control was enabled.
    control_counts: Dict[str, int] = field(default_factory=dict)
    #: Health-layer tallies (ejections, readmissions, probes, breaker
    #: transitions, retry-budget spends/denials); empty unless
    #: ``config.health.enabled``.
    health_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-shard leaf latencies and critical-shard attribution
    #: (:class:`repro.core.fanout.FanoutStats`); None unless
    #: ``config.fanout.enabled``.
    fanout: Optional[object] = None
    #: Caching-tier tallies (hits, misses, expirations, evictions,
    #: rejections); empty unless ``config.cache.enabled``.
    cache_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-instance ``(server_id, completions, active_seconds)``. The
    #: active window runs from the instance joining the replica set (or
    #: run start, for the initial set) until it drained (or run end) —
    #: so per-server rates stay honest under autoscaling membership
    #: churn instead of dividing a late replica's completions by the
    #: whole run.
    server_activity: Tuple[Tuple[int, int, float], ...] = ()

    def per_server_qps(self) -> Dict[int, float]:
        """Completions per second of *active window*, per instance."""
        return {
            server_id: (completed / active if active > 0 else 0.0)
            for server_id, completed, active in self.server_activity
        }

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    @property
    def service(self) -> LatencySummary:
        return self.stats.summary("service")

    @property
    def queue(self) -> LatencySummary:
        return self.stats.summary("queue")

    @property
    def attempt_latency(self) -> LatencySummary:
        """Per-attempt latency summary (every attempt with a response)."""
        return self.stats.attempt_summary()

    def per_server(self, metric: str = "sojourn") -> Dict[int, LatencySummary]:
        """Per-instance latency summaries (see CollectedStats.per_server)."""
        return self.stats.per_server(metric)

    @property
    def retry_amplification(self) -> float:
        """Attempts sent per logical request offered (1.0 = no retries)."""
        offered = self.outcomes.get("offered", 0)
        attempts = self.outcomes.get("attempts", 0)
        if offered == 0 or attempts == 0:
            return 1.0
        return attempts / offered

    @property
    def success_rate(self) -> float:
        """Fraction of offered logical requests that met their deadline."""
        offered = self.outcomes.get("offered", 0)
        if offered == 0:
            return 1.0
        return self.outcomes.get("succeeded", 0) / offered

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: the server could not keep up.

        If achieved throughput fell more than 10% below offered load,
        the queue was growing without bound during the run.
        """
        return self.achieved_qps < 0.9 * self.offered_qps

    def describe(self) -> str:
        lines = [
            f"configuration={self.config.configuration} "
            f"qps={self.offered_qps:g} threads={self.config.n_threads}",
            f"achieved_qps={self.achieved_qps:.1f} "
            f"measured={self.stats.count} saturated={self.saturated}",
            f"sojourn: {self.sojourn.describe()}",
            f"service: {self.service.describe()}",
            f"queue:   {self.queue.describe()}",
        ]
        audit = self.stats.send_lag_summary()
        if audit is not None:
            p99 = audit.percentiles.get(99.0, audit.maximum)
            lines.append(
                "send-lag audit (coordinated omission): "
                f"p99={p99 * 1e3:.3f} ms max={audit.maximum * 1e3:.3f} ms"
            )
        if self.config.n_servers > 1:
            lines.append(
                f"topology: {self.config.n_servers} servers "
                f"balancer={self.config.balancer} "
                f"routed={list(self.routed_counts)} "
                f"alive_workers={list(self.alive_workers)}"
            )
            for server_id, summary in sorted(self.per_server().items()):
                lines.append(
                    f"  server[{server_id}]: {summary.describe()}"
                )
        if self.control_counts:
            c = self.control_counts
            lines.append(
                f"control: ticks={c.get('ticks', 0)} "
                f"admitted={c.get('admitted', 0)} "
                f"codel_dropped={c.get('codel_dropped', 0)} "
                f"limit_dropped={c.get('limit_dropped', 0)} "
                f"scale_ups={c.get('scale_ups', 0)} "
                f"scale_downs={c.get('scale_downs', 0)} "
                f"active_servers={c.get('active_servers', 0)}"
            )
        if self.cache_counts:
            cc = self.cache_counts
            keyed = cc.get("hits", 0) + cc.get("misses", 0)
            rate = cc.get("hits", 0) / keyed if keyed else 0.0
            lines.append(
                f"cache: hit_rate={rate:.1%} hits={cc.get('hits', 0)} "
                f"misses={cc.get('misses', 0)} "
                f"expirations={cc.get('expirations', 0)} "
                f"evictions={cc.get('evictions', 0)}"
            )
        if self.health_counts:
            h = self.health_counts
            lines.append(
                f"health: ejections={h.get('ejections', 0)} "
                f"readmissions={h.get('readmissions', 0)} "
                f"probes={h.get('probes', 0)} "
                f"breaker_opens={h.get('breaker_opens', 0)} "
                f"retries_denied={h.get('retries_denied', 0)}"
            )
        if self.outcomes:
            o = self.outcomes
            lines.append(
                f"goodput_qps={self.goodput_qps:.1f} "
                f"succeeded={o.get('succeeded', 0)} "
                f"timed_out={o.get('timed_out', 0)} "
                f"failed={o.get('failed', 0)} shed={o.get('shed', 0)} "
                f"retries={o.get('retries', 0)} "
                f"amplification={self.retry_amplification:.2f}"
            )
        return "\n".join(lines)


def run_harness(
    app,
    config: HarnessConfig,
    clock: Optional[Clock] = None,
) -> HarnessResult:
    """Execute one live load-testing run against ``app``.

    ``app`` implements the :class:`repro.apps.base.Application`
    interface and must already be set up (indexes built, tables
    loaded). The run generates ``config.total_requests`` requests at
    ``config.qps`` with exponential interarrival times, discards the
    warmup prefix, and measures the rest.
    """
    clock = clock or WallClock()
    # A load profile measures everything (the transient response to the
    # load change *is* the experiment); steady-state runs keep the
    # warmup-discard methodology.
    warmup = 0 if config.load_profile is not None else config.warmup_requests
    collector = StatsCollector(warmup_requests=warmup)
    if config.scenario is not None:
        injector = ScenarioInjector(
            config.scenario, seed=config.seed, base=config.faults
        )
    else:
        injector = (
            FaultInjector(config.faults, seed=config.seed)
            if config.faults is not None and not config.faults.is_noop
            else None
        )
    transport = make_transport(
        config.configuration,
        clock,
        one_way_delay=config.one_way_delay,
        execution=config.execution,
    )

    if config.load_profile is not None:
        schedule = ArrivalSchedule.piecewise(
            config.load_profile,
            seed=config.seed,
            deterministic=config.deterministic_arrivals,
        )
        profile_time = sum(d for d, _ in config.load_profile)
        offered_qps = len(schedule) / profile_time
    else:
        process = (
            DeterministicArrivals(config.qps)
            if config.deterministic_arrivals
            else PoissonArrivals(config.qps)
        )
        schedule = ArrivalSchedule.generate(
            process, config.total_requests, seed=config.seed
        )
        offered_qps = config.qps
    n_offered = len(schedule)
    shaper = TrafficShaper(clock, schedule)

    client = app.make_client(seed=config.seed)
    payloads: List = [client.next_request() for _ in range(n_offered)]

    # Observability objects are created before transport start so the
    # control plane's admission gates (built with the queues) can hold
    # the tracer; gauge registration still happens after start, once
    # the instances exist.
    tracer = registry = sampler = None
    if config.observability.tracing:
        # Imported lazily: the default (tracing-off) path never touches
        # the obs package at all.
        from ..obs import MetricsRegistry, MetricsSampler, Tracer

        tracer = Tracer(capacity=config.observability.trace_capacity)
        registry = MetricsRegistry()
    live = None
    if config.observability.slo.enabled:
        # Lazy import, same policy as the tracer: runs without the
        # streaming SLO layer never touch repro.obs.live. (Config
        # validation guarantees tracing is on here.)
        from ..obs.live import LiveObs

        live = LiveObs(
            config.observability.slo, tracer=tracer, seed=config.seed
        )
    plane = loop = None
    if config.control.enabled:
        # Same lazy-import policy as observability: disabled runs never
        # touch the control package.
        from ..control import ControlLoop, ControlPlane, LiveControlTarget

        plane = ControlPlane(config.control, seed=config.seed, tracer=tracer)
    batching = None
    if config.batching.enabled:
        # Lazy import, same policy as observability/control: disabled
        # runs never touch the batching package.
        from ..batching import BatchPolicy

        batching = BatchPolicy.from_config(config.batching)
    health = None
    if config.health.enabled:
        # Lazy import, same policy as the other optional subsystems:
        # disabled runs never touch the health package.
        from ..health import HealthManager

        health = HealthManager(config.health, tracer=tracer)
    cache = None
    if config.cache.enabled:
        # Lazy import, same policy as the other optional subsystems:
        # disabled runs never touch the cache package.
        from ..cache import build_cache

        cache = build_cache(config.cache, tracer=tracer)

    transport.start(
        app,
        config.n_threads,
        collector,
        injector=injector,
        queue_capacity=config.queue_capacity,
        n_servers=config.n_servers,
        balancer=make_balancer(config.balancer, seed=config.seed),
        control=plane,
        batching=batching,
        cache=cache,
    )
    if health is not None:
        transport.set_health(health)
    if registry is not None:
        transport.set_observability(tracer, registry)
        if injector is not None:
            injector.register_metrics(registry)
        if health is not None:
            health.register_metrics(registry)
        if cache is not None:
            cache.register_metrics(registry)
        if live is not None:
            transport.set_live(live)
            live.register_metrics(registry)
        sampler = MetricsSampler(
            registry, clock, interval=config.observability.metrics_interval
        )
        sampler.start()
    if plane is not None:
        plane.bind(LiveControlTarget(transport, plane))
        plane.register_metrics(registry)
        loop = ControlLoop(plane, clock)
        loop.start()
    resilient: Optional[ResilientClient] = None
    if config.resilience.enabled:
        resilient = ResilientClient(
            transport, clock, config.resilience, collector, seed=config.seed,
            tracer=tracer, health=health,
        )
    fanout_client = None
    if config.fanout.enabled:
        # Lazy import, same policy as the other optional subsystems.
        from .fanout import FanoutClient, FanoutGatherer

        merge = getattr(app, "merge_responses", None)
        if not callable(merge):
            raise TypeError(
                "fan-out needs a sharded application exposing "
                "merge_responses(partials) — see repro.apps.ShardedApp"
            )
        fanout_client = FanoutClient(
            transport,
            clock,
            FanoutGatherer(
                config.fanout.shards,
                collector,
                merge=merge,
                warmup=warmup,
                tracer=tracer,
            ),
            tracer=tracer,
        )
    if injector is not None:
        injector.start_run(clock.now())
    driver: Optional[ScenarioDriver] = None
    if isinstance(injector, ScenarioInjector):
        driver = ScenarioDriver(injector, clock)
    if resilient is not None:
        send_fn = resilient.send
    elif fanout_client is not None:
        send_fn = fanout_client.send
    else:
        send_fn = transport.send
    started = clock.now()
    if live is not None:
        # Window boundaries anchor at run start (the simulator anchors
        # at virtual 0.0), so alert timing is window-aligned.
        live.set_origin(started)
    if cache is not None:
        # Same anchoring for the cold-restart instant (clear_at).
        cache.set_origin(started)
    if driver is not None:
        driver.start(started)
    try:
        _run_clients(clock, shaper, schedule, send_fn, payloads, config.n_clients)
        if resilient is not None:
            resilient.drain()
        else:
            transport.drain()
    finally:
        run_end = clock.now()
        wall_time = run_end - started
        alive_workers = transport.alive_workers
        routed_counts = tuple(
            instance.routed for instance in transport.instances
        )
        server_activity = tuple(
            (
                instance.server_id,
                instance.completed,
                max(
                    (
                        instance.drained_at
                        if instance.drained_at is not None
                        else run_end
                    )
                    - max(instance.started_at, started),
                    0.0,
                ),
            )
            for instance in transport.instances
        )
        if driver is not None:
            driver.stop()
        if loop is not None:
            loop.stop()
        if sampler is not None:
            sampler.stop()
        if resilient is not None:
            resilient.close()
        transport.stop()

    obs = None
    if tracer is not None:
        from ..obs import ObsResult, prometheus_text

        obs = ObsResult(
            events=tracer.events(),
            dropped=tracer.dropped,
            series=sampler.series,
            snapshot=registry.snapshot(),
            prom=prometheus_text(registry),
            live=live.finish(run_end) if live is not None else None,
        )
    stats = collector.snapshot()
    outcomes = collector.outcome_counts()
    if not collector.outcomes_used:
        # No resilience layer ran: synthesize the logical tallies from
        # what the transport saw, so downstream reporting is uniform.
        # Under fan-out each logical request costs `shards` attempts —
        # the scatter amplification shows up exactly where retry
        # amplification would.
        outcomes["offered"] = n_offered
        outcomes["attempts"] = n_offered * (
            config.fanout.shards if config.fanout.enabled else 1
        )
        outcomes["succeeded"] = stats.count + stats.dropped_warmup
        outcomes["errors"] = transport.stats.errored
        outcomes["shed"] = transport.stats.shed
    # Achieved throughput counts actual completions — responses the
    # servers produced (succeeded + failed), excluding shed rejections
    # — not offered requests: under saturation or shedding the offered
    # count would over-report what the system actually sustained.
    # Under fan-out the transport counts sub-requests, so logical
    # completions are the gathers that merged.
    if fanout_client is not None:
        completions = fanout_client.stats.completed
    else:
        completions = max(
            transport.stats.completed - transport.stats.shed, 0
        )
    achieved = completions / wall_time if wall_time > 0 else 0.0
    goodput = (
        outcomes.get("succeeded", 0) / wall_time if wall_time > 0 else 0.0
    )
    fault_counts = dict(injector.counts()) if injector is not None else {}
    child_counts = getattr(transport, "child_fault_counts", None)
    if callable(child_counts):
        # Process-mode replicas inject worker/app faults in their own
        # processes; merge what the children reported with the parent
        # injector's transport-level counts.
        for key, value in child_counts().items():
            fault_counts[key] = fault_counts.get(key, 0) + value
    return HarnessResult(
        config=config,
        stats=stats,
        offered_qps=offered_qps,
        achieved_qps=achieved,
        wall_time=wall_time,
        server_errors=tuple(transport.server_errors),
        outcomes=outcomes,
        goodput_qps=goodput,
        fault_counts=fault_counts,
        alive_workers=alive_workers,
        routed_counts=routed_counts,
        obs=obs,
        control_counts=plane.counts() if plane is not None else {},
        health_counts=health.counts() if health is not None else {},
        fanout=fanout_client.stats if fanout_client is not None else None,
        cache_counts=cache.counts() if cache is not None else {},
        server_activity=server_activity,
    )


def _run_clients(
    clock: Clock,
    shaper: TrafficShaper,
    schedule: ArrivalSchedule,
    send_fn,
    payloads: List,
    n_clients: int,
) -> None:
    """Drive the arrival schedule from one or many client threads.

    With multiple clients the schedule (and payload stream) is split
    round-robin, each share driven by its own shaper thread against a
    shared wall-clock anchor — the union of arrivals is the original
    schedule regardless of client count, so topology experiments vary
    submission concurrency without changing the offered process.
    """
    if n_clients == 1:
        shaper.run(send_fn, payloads)
        return
    base = clock.now() - schedule.times[0]
    errors: List[BaseException] = []

    def client(share_times: List[float], share_payloads: List) -> None:
        try:
            TrafficShaper(clock, ArrivalSchedule(share_times)).run(
                send_fn, share_payloads, base=base
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            errors.append(exc)

    threads = []
    for i in range(n_clients):
        share_times = schedule.times[i::n_clients]
        if not share_times:
            continue
        threads.append(
            threading.Thread(
                target=client,
                args=(share_times, payloads[i::n_clients]),
                name=f"tb-client-{i}",
                daemon=True,
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]

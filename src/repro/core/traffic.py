"""Open-loop traffic shaping.

The traffic shaper controls the timing of the request stream
(Sec. IV-A). It is *open-loop*: arrival instants are drawn from the
arrival process independently of when (or whether) earlier responses
came back, which is what makes the harness immune to coordinated
omission. A closed-loop process is also provided — not for use in real
measurements, but so tests and examples can demonstrate exactly how
badly a closed loop underestimates tail latency.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "BurstyArrivals",
    "ArrivalSchedule",
    "TrafficShaper",
]


class ArrivalProcess:
    """Generates successive interarrival gaps (seconds)."""

    def next_gap(self, rng: random.Random) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore any mutable draw state to its initial value.

        Called at the start of every schedule generation so that one
        process instance produces identical schedules for identical
        seeds regardless of what was generated from it before.
        Memoryless processes have nothing to restore.
        """

    @property
    def rate(self) -> float:
        """Mean arrival rate in requests/second."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Exponential interarrival times at a configurable rate (QPS).

    Exponentially distributed interarrivals accurately model datacenter
    traffic [Meisner et al., ISCA 2011]; this is the harness default.
    """

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        self._qps = float(qps)

    def next_gap(self, rng: random.Random) -> float:
        return rng.expovariate(self._qps)

    @property
    def rate(self) -> float:
        return self._qps

    def __repr__(self) -> str:
        return f"PoissonArrivals(qps={self._qps:g})"


class DeterministicArrivals(ArrivalProcess):
    """Fixed interarrival gap — useful for calibration and tests."""

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        self._qps = float(qps)

    def next_gap(self, rng: random.Random) -> float:
        return 1.0 / self._qps

    @property
    def rate(self) -> float:
        return self._qps

    def __repr__(self) -> str:
        return f"DeterministicArrivals(qps={self._qps:g})"


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (MMPP-2).

    Datacenter traffic is bursty beyond simple Poisson: load swings
    between calm and burst regimes (diurnal effects, request fan-in
    correlations). This process alternates between a low-rate and a
    high-rate Poisson regime with exponentially distributed dwell
    times, while preserving a configurable *average* rate — so bursty
    and Poisson runs are comparable at equal offered load.

    Parameters
    ----------
    qps:
        Long-run average arrival rate.
    burstiness:
        Ratio of burst-regime rate to calm-regime rate (> 1).
    burst_fraction:
        Fraction of time spent in the burst regime.
    regime_dwell:
        Mean dwell time per regime visit (seconds).
    """

    def __init__(
        self,
        qps: float,
        burstiness: float = 10.0,
        burst_fraction: float = 0.1,
        regime_dwell: float = 0.05,
    ) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        if burstiness <= 1.0:
            raise ValueError("burstiness must exceed 1")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if regime_dwell <= 0:
            raise ValueError("regime_dwell must be positive")
        self._qps = float(qps)
        self.burstiness = float(burstiness)
        self.burst_fraction = float(burst_fraction)
        self.regime_dwell = float(regime_dwell)
        # Solve rates so the time-weighted average equals qps:
        # qps = f * burst_rate + (1 - f) * calm_rate, burst = B * calm.
        denom = burst_fraction * burstiness + (1.0 - burst_fraction)
        self.calm_rate = qps / denom
        self.burst_rate = self.calm_rate * burstiness
        self._in_burst = False
        self._regime_left = 0.0

    def reset(self) -> None:
        # The regime state mutates as gaps are drawn; without this
        # reset a second schedule generated from the same instance
        # would start mid-regime and diverge from a fresh instance
        # even at the same seed.
        self._in_burst = False
        self._regime_left = 0.0

    def next_gap(self, rng: random.Random) -> float:
        gap = 0.0
        while True:
            if self._regime_left <= 0.0:
                self._in_burst = rng.random() < self.burst_fraction
                self._regime_left = rng.expovariate(1.0 / self.regime_dwell)
            rate = self.burst_rate if self._in_burst else self.calm_rate
            candidate = rng.expovariate(rate)
            if candidate <= self._regime_left:
                self._regime_left -= candidate
                return gap + candidate
            # Regime expires before the next arrival: burn the dwell
            # and redraw in the next regime (memorylessness).
            gap += self._regime_left
            self._regime_left = 0.0

    @property
    def rate(self) -> float:
        return self._qps

    def __repr__(self) -> str:
        return (
            f"BurstyArrivals(qps={self._qps:g}, "
            f"burstiness={self.burstiness:g})"
        )


class ArrivalSchedule:
    """A concrete, pre-drawn list of arrival instants.

    Pre-drawing the schedule (instead of sampling gaps on the fly)
    serves two purposes: the load generator never does RNG work on the
    critical path, and the *same* schedule can be replayed against
    different systems/configurations for paired comparisons. The
    harness re-randomizes the schedule seed on every repeated run, per
    the paper's hysteresis countermeasure (Sec. IV-C).
    """

    def __init__(self, times: List[float]) -> None:
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("arrival times must be non-decreasing")
        self.times = list(times)

    @classmethod
    def generate(
        cls,
        process: ArrivalProcess,
        n_requests: int,
        seed: int = 0,
        start: float = 0.0,
    ) -> "ArrivalSchedule":
        if n_requests < 1:
            raise ValueError("need at least one request")
        process.reset()
        rng = random.Random(seed)
        times = []
        t = start
        for _ in range(n_requests):
            t += process.next_gap(rng)
            times.append(t)
        return cls(times)

    @classmethod
    def piecewise(
        cls,
        segments,
        seed: int = 0,
        start: float = 0.0,
        deterministic: bool = False,
    ) -> "ArrivalSchedule":
        """Generate a load-profile schedule from (duration, qps) segments.

        Each segment draws arrivals at its own rate for its duration;
        segments are concatenated on the time axis. The whole schedule
        comes from one seeded RNG, so a profile is exactly reproducible
        and two runs of the same profile are paired. Used for the
        load-step experiments that exercise the control plane (a
        steady-state rate cannot show a controller reacting).
        """
        if not segments:
            raise ValueError("need at least one (duration, qps) segment")
        rng = random.Random(seed)
        times: List[float] = []
        t = start
        for duration, qps in segments:
            if duration <= 0 or qps <= 0:
                raise ValueError("segment durations and qps must be positive")
            segment_end = t + duration
            while True:
                gap = (1.0 / qps) if deterministic else rng.expovariate(qps)
                if t + gap >= segment_end:
                    break
                t += gap
                times.append(t)
            t = segment_end
        if not times:
            raise ValueError("load profile produced no arrivals")
        return cls(times)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[float]:
        return iter(self.times)

    @property
    def duration(self) -> float:
        if not self.times:
            return 0.0
        return self.times[-1] - self.times[0]

    @property
    def observed_qps(self) -> Optional[float]:
        """Empirical rate over the schedule span, or None if undefined.

        A single arrival (or several at the same instant) spans zero
        time, so no rate can be observed; callers get None rather than
        an exception for these degenerate-but-valid schedules.
        """
        if len(self.times) < 2 or self.duration == 0:
            return None
        return (len(self.times) - 1) / self.duration


class TrafficShaper:
    """Paces request submission according to an arrival schedule.

    In live mode it sleeps on the clock until each ideal arrival
    instant and then hands the request to the transport. The ideal
    instant is recorded as ``generated_at`` whether or not the shaper
    managed to send on time, so latencies always include any backlog —
    the open-loop guarantee.
    """

    def __init__(self, clock, schedule: ArrivalSchedule) -> None:
        self._clock = clock
        self._schedule = schedule

    def run(
        self,
        send_fn,
        payloads: Optional[List] = None,
        base: Optional[float] = None,
    ) -> int:
        """Send every scheduled request via ``send_fn(ideal_time, payload)``.

        Returns the number of requests sent. ``payloads`` may be None
        (payload-less pings) or must match the schedule length.
        ``base`` overrides the wall-clock anchor the schedule offsets
        are added to; multiple concurrent shapers (one per client
        thread) pass a shared anchor so their interleaved sub-schedules
        reconstruct the original arrival process exactly.
        """
        times = self._schedule.times
        if payloads is not None and len(payloads) != len(times):
            raise ValueError("payloads must match schedule length")
        if not times:
            return 0
        if base is None:
            # Anchor the schedule at "now": schedule times are offsets.
            base = self._clock.now() - times[0]
        for i, ideal in enumerate(times):
            deadline = base + ideal
            self._clock.sleep_until(deadline)
            payload = payloads[i] if payloads is not None else None
            send_fn(deadline, payload)
        return len(times)

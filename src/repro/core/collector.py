"""Statistics collector.

Aggregates per-request timing into the three latency axes the paper
reports — queue time, service time, and sojourn time. For short runs
it keeps every :class:`RequestRecord` (maximum accuracy, full
distributions); beyond a configurable threshold it switches to HDR
histograms (logarithmic space, <=1% value error), mirroring Sec. IV-C.

Measurements must stay sound under partial failure, so the collector
is *failure-aware* ("Tell-Tale Tail Latencies" shows how easily
retry/timeout artifacts corrupt tails): alongside the success-only
latency series it tallies outcome counts (offered, succeeded,
timed-out, failed logical requests; attempt/retry/hedge/error/shed/
late events) and keeps a separate *per-attempt* latency series over
every attempt that produced a response. Success percentiles and
per-attempt percentiles answer different questions — "what did users
experience when the system worked?" vs "what did the wire see?" — and
diverge as soon as faults are injected.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..stats import HdrHistogram, LatencySummary
from .request import RequestRecord

__all__ = ["StatsCollector", "CollectedStats", "TimelinePoint", "OUTCOME_KEYS"]

_METRICS = ("sojourn", "service", "queue")

#: Outcome tally keys. Logical-request outcomes: ``offered`` (logical
#: requests submitted), ``succeeded`` (first success before deadline),
#: ``timed_out`` (deadline passed unresolved), ``failed`` (failure
#: response with no retry budget and no deadline pending). Attempt
#: events: ``attempts`` (every send, incl. retries/hedges), ``retries``,
#: ``hedges``, ``errors`` (error responses), ``shed`` (admission-control
#: rejections received), ``late`` (responses after resolution).
OUTCOME_KEYS = (
    "offered",
    "succeeded",
    "timed_out",
    "failed",
    "attempts",
    "retries",
    "hedges",
    "errors",
    "shed",
    "late",
)


class TimelinePoint:
    """One point of a time series: a window percentile or a metric sample.

    ``metric`` names the series the point belongs to (a latency metric
    such as ``sojourn``, or a registry metric full name such as
    ``tb_queue_depth{server="0"}``) and ``pct`` the percentile it
    represents (``None`` for instantaneous metric samples) — without
    them, points from different series exported together are
    indistinguishable.
    """

    __slots__ = ("time", "count", "value", "metric", "pct")

    def __init__(
        self,
        time: float,
        count: int,
        value: float,
        metric: str = "",
        pct: Optional[float] = None,
    ) -> None:
        self.time = time
        self.count = count
        self.value = value
        self.metric = metric
        self.pct = pct

    def as_dict(self) -> Dict[str, object]:
        """JSONL-ready mapping (the series exporter's line format)."""
        out: Dict[str, object] = {
            "time": self.time,
            "count": self.count,
            "value": self.value,
            "metric": self.metric,
        }
        if self.pct is not None:
            out["pct"] = self.pct
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.metric or "?"
        if self.pct is not None:
            label += f"@p{self.pct:g}"
        return (
            f"TimelinePoint({label}, t={self.time:.4f}, "
            f"n={self.count}, v={self.value:.6f})"
        )


class CollectedStats:
    """Immutable view over one run's collected latency data."""

    def __init__(
        self,
        records: Optional[List[RequestRecord]],
        histograms: Optional[Dict[str, HdrHistogram]],
        dropped_warmup: int,
        attempt_samples: Optional[List[float]] = None,
        attempt_histogram: Optional[HdrHistogram] = None,
        outcomes: Optional[Dict[str, int]] = None,
        server_histograms: Optional[Dict[int, Dict[str, HdrHistogram]]] = None,
        batch_members: Optional[Dict[int, int]] = None,
        send_lag_hist: Optional[HdrHistogram] = None,
    ) -> None:
        self._records = records
        self._histograms = histograms
        self.dropped_warmup = dropped_warmup
        self._attempt_samples = attempt_samples
        self._attempt_histogram = attempt_histogram
        self._outcomes = dict(outcomes) if outcomes else {}
        self._server_histograms = server_histograms
        self._batch_members = dict(batch_members) if batch_members else {}
        self._send_lag_hist = send_lag_hist

    @property
    def exact(self) -> bool:
        """True when full per-request records were retained."""
        return self._records is not None

    @property
    def count(self) -> int:
        if self._records is not None:
            return len(self._records)
        return self._histograms["sojourn"].total_count

    @property
    def records(self) -> Sequence[RequestRecord]:
        if self._records is None:
            raise ValueError("per-request records were not retained (HDR mode)")
        return tuple(self._records)

    def samples(self, metric: str = "sojourn") -> List[float]:
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; expected {_METRICS}")
        if self._records is None:
            raise ValueError("per-request records were not retained (HDR mode)")
        attr = f"{metric}_time"
        return [getattr(r, attr) for r in self._records]

    def histogram(self, metric: str = "sojourn") -> HdrHistogram:
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; expected {_METRICS}")
        if self._histograms is not None:
            return self._histograms[metric]
        hist = HdrHistogram()
        for value in self.samples(metric):
            hist.record(max(value, 0.0))
        return hist

    def summary(self, metric: str = "sojourn") -> LatencySummary:
        if self.count == 0:
            raise ValueError("no requests were collected")
        if self._records is not None:
            return LatencySummary.from_samples(self.samples(metric))
        return LatencySummary.from_histogram(self._histograms[metric])

    def slo_attainment(self, target: float) -> float:
        """Fraction of collected completions with sojourn <= ``target``.

        The post-hoc cross-check for the streaming layer's
        completion-side accounting (:mod:`repro.obs.live` counts
        send-anchored budget units, which additionally charge work
        that never completed). 1.0 when nothing was collected.
        """
        if target <= 0.0:
            raise ValueError("target must be positive")
        if self.count == 0:
            return 1.0
        if self._records is not None:
            met = sum(1 for r in self._records if r.sojourn_time <= target)
            return met / len(self._records)
        hist = self._histograms["sojourn"]
        return hist.count_between(0.0, target) / hist.total_count

    @property
    def outcomes(self) -> Dict[str, int]:
        """Outcome tally (see :data:`OUTCOME_KEYS`); empty when unused."""
        return dict(self._outcomes)

    # -- coordinated-omission audit ------------------------------------
    def send_lag_summary(self) -> Optional[LatencySummary]:
        """Intended-vs-actual send-time divergence of the load generator.

        Summarizes ``sent_at - generated_at`` over every measured
        completion: how far behind its ideal open-loop instant each
        request actually left the client. Persistent growth means the
        *generator* could not sustain the offered rate — latencies are
        then understated in exactly the way coordinated omission hides
        [Tene 2013] — so every run reports this audit alongside its
        latency numbers. None when nothing was measured.
        """
        if self._send_lag_hist is None or self._send_lag_hist.total_count == 0:
            return None
        return LatencySummary.from_histogram(self._send_lag_hist)

    def send_audit(self) -> Dict[str, float]:
        """The audit as a flat mapping (benchmark-fingerprint form)."""
        summary = self.send_lag_summary()
        if summary is None:
            return {}
        return {
            "send_lag_mean_s": summary.mean,
            "send_lag_p99_s": summary.percentiles.get(99.0, summary.maximum),
            "send_lag_max_s": summary.maximum,
        }

    # -- per-server views (multi-server topologies) --------------------
    @property
    def server_ids(self) -> List[int]:
        """Server instances that produced at least one measured record."""
        if self._records is not None:
            return sorted({r.server_id for r in self._records})
        if self._server_histograms:
            return sorted(self._server_histograms)
        return []

    def server_count(self, server_id: int) -> int:
        """Measured completions served by one instance."""
        if self._records is not None:
            return sum(1 for r in self._records if r.server_id == server_id)
        if self._server_histograms and server_id in self._server_histograms:
            return self._server_histograms[server_id]["sojourn"].total_count
        return 0

    def server_samples(
        self, server_id: int, metric: str = "sojourn"
    ) -> List[float]:
        """One instance's latency samples (exact mode only)."""
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; expected {_METRICS}")
        if self._records is None:
            raise ValueError("per-request records were not retained (HDR mode)")
        attr = f"{metric}_time"
        return [
            getattr(r, attr) for r in self._records if r.server_id == server_id
        ]

    def server_summary(
        self, server_id: int, metric: str = "sojourn"
    ) -> LatencySummary:
        """Latency summary over one instance's measured completions."""
        if self._records is not None:
            samples = self.server_samples(server_id, metric)
            if not samples:
                raise ValueError(f"no requests measured on server {server_id}")
            return LatencySummary.from_samples(samples)
        if not self._server_histograms or server_id not in self._server_histograms:
            raise ValueError(f"no requests measured on server {server_id}")
        return LatencySummary.from_histogram(
            self._server_histograms[server_id][metric]
        )

    def per_server(self, metric: str = "sojourn") -> Dict[int, LatencySummary]:
        """Per-instance latency summaries, keyed by server index.

        The per-server series partition the aggregate: their counts sum
        to :attr:`count` and their merged distribution is exactly the
        distribution :meth:`summary` reports. Summaries cover only what
        each instance actually measured, so replicas that join late or
        drain early contribute exactly their own completions — a
        short-lived replica never dilutes (or inflates) another's
        distribution.
        """
        return {
            server_id: self.server_summary(server_id, metric)
            for server_id in self.server_ids
        }

    # -- per-class views (priority scheduling) -------------------------
    @property
    def request_classes(self) -> List[str]:
        """Request classes with at least one measured record (exact mode)."""
        if self._records is None:
            return []
        return sorted(
            {r.request_class for r in self._records if r.request_class}
        )

    def class_summary(
        self, request_class: str, metric: str = "sojourn"
    ) -> LatencySummary:
        """Latency summary over one request class (exact mode only)."""
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; expected {_METRICS}")
        if self._records is None:
            raise ValueError("per-request records were not retained (HDR mode)")
        attr = f"{metric}_time"
        samples = [
            getattr(r, attr)
            for r in self._records
            if r.request_class == request_class
        ]
        if not samples:
            raise ValueError(f"no requests measured in class {request_class!r}")
        return LatencySummary.from_samples(samples)

    def per_class(self, metric: str = "sojourn") -> Dict[str, LatencySummary]:
        """Per-request-class latency summaries, keyed by class name.

        Empty when no classifier ran (all records unclassified) or in
        HDR mode; the priority-scheduling experiments use exact mode.
        """
        return {
            name: self.class_summary(name, metric)
            for name in self.request_classes
        }

    # -- batching views ------------------------------------------------
    @property
    def batch_occupancy(self) -> Dict[int, int]:
        """Member-weighted batch-occupancy histogram.

        ``{size: n}`` — ``n`` measured requests were served in a batch
        of ``size`` co-scheduled requests. Member-weighted (rather than
        per-batch) counting is exact even when a batch straddles the
        warmup cutoff; the number of whole batches of size ``k`` is
        ``n_k / k``. ``{1: count}`` for unbatched runs; empty when no
        requests were measured.
        """
        return dict(self._batch_members)

    @property
    def mean_batch_size(self) -> float:
        """Request-weighted mean batch occupancy (1.0 when unbatched).

        The average number of co-scheduled requests a measured request
        shared its service window with; together with
        :attr:`~repro.core.request.RequestRecord.service_share` this is
        the collector's per-request cost attribution: a batch's service
        window, divided evenly over its members.
        """
        members = sum(self._batch_members.values())
        if members == 0:
            return 1.0
        weighted = sum(k * n for k, n in self._batch_members.items())
        return weighted / members

    @property
    def attempt_count(self) -> int:
        """Number of per-attempt latency samples recorded."""
        if self._attempt_samples is not None:
            return len(self._attempt_samples)
        if self._attempt_histogram is not None:
            return self._attempt_histogram.total_count
        return 0

    def attempt_samples(self) -> List[float]:
        if self._attempt_samples is None:
            raise ValueError("per-attempt samples were not retained")
        return list(self._attempt_samples)

    def attempt_summary(self) -> LatencySummary:
        """Latency summary over every attempt that got a response.

        Includes retries, hedges, error replies, and shed replies —
        the wire's view, as opposed to ``summary()``'s success-only,
        logical-request view.
        """
        if self.attempt_count == 0:
            raise ValueError("no attempt latencies were collected")
        if self._attempt_samples is not None:
            return LatencySummary.from_samples(self._attempt_samples)
        return LatencySummary.from_histogram(self._attempt_histogram)

    def timeline(
        self, metric: str = "sojourn", n_windows: int = 10, pct: float = 95.0
    ) -> List["TimelinePoint"]:
        """Percentile-over-time: ``pct`` of ``metric`` per time window.

        Splits the measurement interval (by request generation instant)
        into equal windows. A flat timeline indicates steady state; a
        trend means the warmup was too short or the system is drifting
        (the paper's hysteresis concern, Sec. IV-C). Exact mode only.
        """
        if n_windows < 2:
            raise ValueError("need at least 2 windows")
        if not 0.0 < pct < 100.0:
            raise ValueError("pct must be in (0, 100)")
        records = self.records  # raises in HDR mode
        if len(records) < n_windows:
            raise ValueError("fewer records than windows")
        from ..stats import percentile as _percentile

        start = min(r.generated_at for r in records)
        end = max(r.generated_at for r in records)
        span = max(end - start, 1e-12)
        attr = f"{metric}_time"
        buckets: List[List[float]] = [[] for _ in range(n_windows)]
        for record in records:
            idx = min(
                n_windows - 1,
                int((record.generated_at - start) / span * n_windows),
            )
            buckets[idx].append(getattr(record, attr))
        points = []
        for i, bucket in enumerate(buckets):
            if not bucket:
                continue
            mid = start + (i + 0.5) * span / n_windows
            points.append(
                TimelinePoint(
                    mid, len(bucket), _percentile(bucket, pct),
                    metric=metric, pct=pct,
                )
            )
        return points

    def is_steady(
        self,
        metric: str = "sojourn",
        pct: float = 95.0,
        tolerance: float = 0.5,
    ) -> bool:
        """Heuristic steady-state check: first vs second half percentile.

        Returns False when the second half's ``pct`` differs from the
        first half's by more than ``tolerance`` (relative) — the
        signature of an unwarmed or drifting measurement.
        """
        records = self.records
        if len(records) < 20:
            raise ValueError("too few records for a steadiness check")
        from ..stats import percentile as _percentile

        ordered = sorted(records, key=lambda r: r.generated_at)
        half = len(ordered) // 2
        attr = f"{metric}_time"
        first = _percentile([getattr(r, attr) for r in ordered[:half]], pct)
        second = _percentile([getattr(r, attr) for r in ordered[half:]], pct)
        if first == 0 and second == 0:
            return True
        base = max(first, second)
        return abs(second - first) / base <= tolerance


class StatsCollector:
    """Thread-safe sink for completed request records.

    Parameters
    ----------
    warmup_requests:
        Number of initial completions to discard (steady-state only,
        per the paper's warmup rule).
    exact_limit:
        Keep full records up to this many measured requests; past it,
        degrade gracefully to HDR histograms.
    """

    def __init__(
        self, warmup_requests: int = 0, exact_limit: int = 200_000
    ) -> None:
        if warmup_requests < 0:
            raise ValueError("warmup_requests must be >= 0")
        if exact_limit < 1:
            raise ValueError("exact_limit must be >= 1")
        self._warmup = warmup_requests
        self._exact_limit = exact_limit
        self._lock = threading.Lock()
        self._seen = 0
        self._records: Optional[List[RequestRecord]] = []
        self._histograms: Optional[Dict[str, HdrHistogram]] = None
        self._server_histograms: Optional[Dict[int, Dict[str, HdrHistogram]]] = None
        self._dropped = 0
        self._attempt_samples: Optional[List[float]] = []
        self._attempt_histogram: Optional[HdrHistogram] = None
        self._outcomes: Dict[str, int] = dict.fromkeys(OUTCOME_KEYS, 0)
        self._outcomes_used = False
        self._batch_members: Dict[int, int] = {}
        self._send_lag_hist = HdrHistogram()

    def add(self, record: RequestRecord) -> None:
        with self._lock:
            self._seen += 1
            if self._seen <= self._warmup:
                self._dropped += 1
                return
            size = record.batch_size
            self._batch_members[size] = self._batch_members.get(size, 0) + 1
            if record.sent_at is not None:
                # Coordinated-omission audit: how late the generator
                # actually sent, relative to the ideal instant.
                self._send_lag_hist.record(max(record.send_delay, 0.0))
            if self._records is not None:
                self._records.append(record)
                if len(self._records) > self._exact_limit:
                    self._switch_to_histograms_locked()
            else:
                self._record_into_histograms_locked(record)

    def _switch_to_histograms_locked(self) -> None:
        self._histograms = {m: HdrHistogram() for m in _METRICS}
        self._server_histograms = {}
        for rec in self._records:
            self._record_into_histograms_locked(rec)
        self._records = None

    def _record_into_histograms_locked(self, record: RequestRecord) -> None:
        per_server = self._server_histograms.setdefault(
            record.server_id, {m: HdrHistogram() for m in _METRICS}
        )
        for metric in _METRICS:
            value = max(getattr(record, f"{metric}_time"), 0.0)
            self._histograms[metric].record(value)
            per_server[metric].record(value)

    def note(self, kind: str, n: int = 1) -> None:
        """Tally one outcome event (see :data:`OUTCOME_KEYS`)."""
        if kind not in self._outcomes:
            raise ValueError(
                f"unknown outcome {kind!r}; expected one of {OUTCOME_KEYS}"
            )
        with self._lock:
            self._outcomes[kind] += n
            self._outcomes_used = True

    def record_attempt(self, latency: float) -> None:
        """Record one per-attempt latency (every attempt with a response)."""
        with self._lock:
            if self._attempt_samples is not None:
                self._attempt_samples.append(latency)
                if len(self._attempt_samples) > self._exact_limit:
                    self._attempt_histogram = HdrHistogram()
                    for value in self._attempt_samples:
                        self._attempt_histogram.record(max(value, 0.0))
                    self._attempt_samples = None
            else:
                self._attempt_histogram.record(max(latency, 0.0))

    def outcome_counts(self) -> Dict[str, int]:
        """Snapshot of the outcome tally (all zeros when unused)."""
        with self._lock:
            return dict(self._outcomes)

    @property
    def outcomes_used(self) -> bool:
        with self._lock:
            return self._outcomes_used

    @property
    def measured_count(self) -> int:
        with self._lock:
            if self._records is not None:
                return len(self._records)
            return self._histograms["sojourn"].total_count

    def snapshot(self) -> CollectedStats:
        """Freeze current contents into an immutable view."""
        with self._lock:
            attempt_samples = (
                list(self._attempt_samples)
                if self._attempt_samples is not None
                else None
            )
            attempt_histogram = (
                self._attempt_histogram.copy()
                if self._attempt_histogram is not None
                else None
            )
            outcomes = dict(self._outcomes) if self._outcomes_used else None
            send_lag_hist = self._send_lag_hist.copy()
            if self._records is not None:
                return CollectedStats(
                    list(self._records),
                    None,
                    self._dropped,
                    attempt_samples=attempt_samples,
                    attempt_histogram=attempt_histogram,
                    outcomes=outcomes,
                    batch_members=dict(self._batch_members),
                    send_lag_hist=send_lag_hist,
                )
            return CollectedStats(
                None,
                {m: h.copy() for m, h in self._histograms.items()},
                self._dropped,
                attempt_samples=attempt_samples,
                attempt_histogram=attempt_histogram,
                outcomes=outcomes,
                server_histograms={
                    sid: {m: h.copy() for m, h in per_server.items()}
                    for sid, per_server in self._server_histograms.items()
                },
                batch_members=dict(self._batch_members),
                send_lag_hist=send_lag_hist,
            )

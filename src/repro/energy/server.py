"""Energy-aware virtual-time server.

Extends the latency simulation with the two energy mechanisms the
paper's related work studies: per-request DVFS (frequency chosen at
dispatch; only the compute-bound share of service time scales with
clock) and deep idle states (idle workers sleep after a threshold; the
request that wakes one pays the transition latency). Produces both the
usual latency statistics and an energy account, so policies can be
judged on the actual trade: joules saved vs tail latency spent.
"""

from __future__ import annotations

import collections
import random
from dataclasses import dataclass

from ..core.collector import CollectedStats, StatsCollector
from ..core.request import Request
from ..core.traffic import ArrivalSchedule, PoissonArrivals
from ..sim.engine import Engine
from ..stats import Distribution, LatencySummary
from .policies import FrequencyPolicy, NoSleep, SleepPolicy, StaticFrequency
from .power import EnergyAccount, PowerModel

__all__ = ["EnergyResult", "simulate_energy"]


@dataclass(frozen=True)
class EnergyResult:
    """Latency + energy outcome of one policy under one load."""

    stats: CollectedStats
    energy: EnergyAccount
    offered_qps: float
    virtual_time: float

    @property
    def sojourn(self) -> LatencySummary:
        return self.stats.summary("sojourn")

    @property
    def energy_per_request(self) -> float:
        if self.stats.count == 0:
            raise ValueError("no requests measured")
        return self.energy.total_energy / self.stats.count

    @property
    def average_power(self) -> float:
        return self.energy.average_power


class _Worker:
    __slots__ = ("idle_since",)

    def __init__(self, now: float) -> None:
        self.idle_since = now  # None while busy


class _EnergyServer:
    """Single-queue multi-worker server with DVFS and sleep states."""

    def __init__(
        self,
        engine: Engine,
        service: Distribution,
        n_threads: int,
        frequency_policy: FrequencyPolicy,
        sleep_policy: SleepPolicy,
        power_model: PowerModel,
        compute_fraction: float,
        collector: StatsCollector,
        rng: random.Random,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if not 0.0 <= compute_fraction <= 1.0:
            raise ValueError("compute_fraction must be in [0, 1]")
        self._engine = engine
        self._service = service
        self._frequency_policy = frequency_policy
        self._sleep_policy = sleep_policy
        self._compute_fraction = compute_fraction
        self._collector = collector
        self._rng = rng
        self._queue: collections.deque = collections.deque()
        self._idle_workers = [_Worker(engine.now) for _ in range(n_threads)]
        self._busy = 0
        self.account = EnergyAccount(power_model)

    # -- accounting helpers ---------------------------------------------
    def _settle_idle(self, worker: _Worker, now: float) -> bool:
        """Book the worker's idle interval; returns True if it slept."""
        interval = now - worker.idle_since
        threshold = self._sleep_policy.entry_threshold
        if interval > threshold:
            self.account.add_idle(threshold)
            self.account.add_sleep(interval - threshold)
            return True
        self.account.add_idle(interval)
        return False

    # -- events ------------------------------------------------------------
    def submit(self, generated_at: float) -> None:
        request = Request(payload=None, generated_at=generated_at)
        request.sent_at = generated_at
        self._engine.at(generated_at, self._on_arrival, request)

    def _on_arrival(self, request: Request) -> None:
        request.enqueued_at = self._engine.now
        if self._idle_workers:
            self._dispatch(request, self._idle_workers.pop())
        else:
            self._queue.append(request)

    def _dispatch(self, request: Request, worker: _Worker) -> None:
        now = self._engine.now
        was_asleep = self._settle_idle(worker, now)
        self._busy += 1
        wakeup = self._sleep_policy.wakeup_latency if was_asleep else 0.0
        waited = now - request.enqueued_at
        frequency = self._frequency_policy.frequency(len(self._queue), waited)
        base = self._service.sample(self._rng)
        scaled = base * (
            self._compute_fraction / frequency + (1.0 - self._compute_fraction)
        )
        # The wakeup transition delays service start; transition power
        # is charged as active time at the chosen frequency.
        request.service_start_at = now + wakeup
        self.account.add_active(wakeup + scaled, frequency)
        self._engine.after(wakeup + scaled, self._on_completion, request, worker)

    def _on_completion(self, request: Request, worker: _Worker) -> None:
        now = self._engine.now
        request.service_end_at = now
        request.response_received_at = now
        self._collector.add(request.finish())
        self._busy -= 1
        if self._queue:
            self._dispatch_with_busy_worker(self._queue.popleft(), worker)
        else:
            worker.idle_since = now
            self._idle_workers.append(worker)

    def _dispatch_with_busy_worker(self, request: Request, worker: _Worker) -> None:
        """Dispatch without booking idle time (back-to-back hand-off)."""
        worker.idle_since = self._engine.now  # zero-length idle interval
        self._dispatch(request, worker)


def simulate_energy(
    service: Distribution,
    qps: float,
    frequency_policy: FrequencyPolicy = StaticFrequency(1.0),
    sleep_policy: SleepPolicy = NoSleep(),
    power_model: PowerModel = PowerModel(),
    n_threads: int = 1,
    compute_fraction: float = 0.7,
    measure_requests: int = 10_000,
    warmup_requests: int = 1000,
    seed: int = 0,
) -> EnergyResult:
    """Measure latency and energy for one policy at one load.

    Note the warmup applies to latency statistics only; the energy
    account covers the whole run (steady-state energy converges fast
    and the bias is second-order).
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    engine = Engine()
    collector = StatsCollector(warmup_requests=warmup_requests)
    server = _EnergyServer(
        engine,
        service,
        n_threads,
        frequency_policy,
        sleep_policy,
        power_model,
        compute_fraction,
        collector,
        random.Random(seed ^ 0xE9E12),
    )
    schedule = ArrivalSchedule.generate(
        PoissonArrivals(qps), warmup_requests + measure_requests, seed=seed
    )
    for t in schedule:
        server.submit(t)
    engine.run()
    # Close out each idle worker's final interval so total_time is
    # consistent with the virtual span.
    for worker in server._idle_workers:
        server._settle_idle(worker, engine.now)
        worker.idle_since = engine.now
    return EnergyResult(
        stats=collector.snapshot(),
        energy=server.account,
        offered_qps=qps,
        virtual_time=engine.now,
    )

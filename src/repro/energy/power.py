"""Power and energy accounting.

A standard CMOS power model: dynamic power scales cubically with
frequency (voltage tracks frequency), plus static leakage. Frequencies
are expressed relative to nominal (1.0 = Table II's 2.4 GHz), power in
relative units (1.0 = nominal active power), so results read as
fractions of the baseline — absolute watts would imply a calibration
the paper does not provide.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel", "EnergyAccount"]


@dataclass(frozen=True)
class PowerModel:
    """Relative power as a function of state and frequency.

    static_fraction:
        Share of nominal active power that is leakage/uncore (does not
        scale with frequency). ~0.3 for server-class parts.
    idle_fraction:
        Active-idle (C0/C1) power as a fraction of nominal.
    sleep_fraction:
        Deep-sleep power as a fraction of nominal.
    """

    static_fraction: float = 0.30
    idle_fraction: float = 0.45
    sleep_fraction: float = 0.05

    def __post_init__(self) -> None:
        for name in ("static_fraction", "idle_fraction", "sleep_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    def active_power(self, frequency: float) -> float:
        """Relative power while executing at ``frequency`` (of nominal)."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        dynamic = (1.0 - self.static_fraction) * frequency ** 3
        return self.static_fraction + dynamic

    @property
    def idle_power(self) -> float:
        return self.idle_fraction

    @property
    def sleep_power(self) -> float:
        return self.sleep_fraction


class EnergyAccount:
    """Accumulates energy over (state, duration) intervals."""

    def __init__(self, model: PowerModel) -> None:
        self.model = model
        self.active_energy = 0.0
        self.idle_energy = 0.0
        self.sleep_energy = 0.0
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.sleep_time = 0.0

    def add_active(self, duration: float, frequency: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.active_energy += self.model.active_power(frequency) * duration
        self.busy_time += duration

    def add_idle(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.idle_energy += self.model.idle_power * duration
        self.idle_time += duration

    def add_sleep(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.sleep_energy += self.model.sleep_power * duration
        self.sleep_time += duration

    @property
    def total_energy(self) -> float:
        return self.active_energy + self.idle_energy + self.sleep_energy

    @property
    def total_time(self) -> float:
        return self.busy_time + self.idle_time + self.sleep_time

    @property
    def average_power(self) -> float:
        if self.total_time == 0:
            raise ValueError("no time accounted yet")
        return self.total_energy / self.total_time

"""Frequency (DVFS) and sleep-state policies.

The knobs the paper's related work turns: per-request DVFS decisions
[Rubik, Adrenaline, TimeTrader] and idle sleep states [PowerNap,
DreamWeaver]. A :class:`FrequencyPolicy` picks the clock for each
request at dispatch; a :class:`SleepPolicy` decides when an idle
worker enters a deep state and what waking costs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FrequencyPolicy",
    "StaticFrequency",
    "QueueBoost",
    "SleepPolicy",
    "NoSleep",
    "DeepSleep",
]


class FrequencyPolicy:
    """Chooses the relative frequency for the next request."""

    def frequency(self, queue_depth: int, waited: float) -> float:
        """Frequency for a request that waited ``waited`` seconds with
        ``queue_depth`` requests behind it."""
        raise NotImplementedError


@dataclass(frozen=True)
class StaticFrequency(FrequencyPolicy):
    """Fixed clock — the baseline at 1.0, or a lower static setting."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if not 0.1 <= self.value <= 1.5:
            raise ValueError("frequency must be within [0.1, 1.5] of nominal")

    def frequency(self, queue_depth: int, waited: float) -> float:
        return self.value


@dataclass(frozen=True)
class QueueBoost(FrequencyPolicy):
    """Rubik-style reactive DVFS: slow when alone, boost under pressure.

    Runs at ``low`` when the request found an empty queue and did not
    wait; switches to ``high`` when queueing indicates the tail is at
    risk. Reacting per-request is what makes DVFS usable at
    microsecond timescales (the paper's timescale argument).
    """

    low: float = 0.6
    high: float = 1.0
    depth_threshold: int = 1
    wait_threshold: float = 0.0

    def __post_init__(self) -> None:
        if not 0.1 <= self.low <= self.high <= 1.5:
            raise ValueError("need 0.1 <= low <= high <= 1.5")
        if self.depth_threshold < 0 or self.wait_threshold < 0:
            raise ValueError("thresholds must be non-negative")

    def frequency(self, queue_depth: int, waited: float) -> float:
        if queue_depth >= self.depth_threshold or waited > self.wait_threshold:
            return self.high
        return self.low


class SleepPolicy:
    """Decides entry into (and the cost of leaving) a deep idle state."""

    #: Idle time before the worker drops into the deep state.
    entry_threshold: float = float("inf")
    #: Latency paid by the request that wakes a sleeping worker.
    wakeup_latency: float = 0.0


@dataclass(frozen=True)
class NoSleep(SleepPolicy):
    """Workers stay in active-idle; no wakeup cost, higher idle power."""

    entry_threshold: float = float("inf")
    wakeup_latency: float = 0.0


@dataclass(frozen=True)
class DeepSleep(SleepPolicy):
    """PowerNap-style deep state.

    Defaults model the paper's magnitudes: entry after 100 us of
    idleness, several hundred microseconds to wake.
    """

    entry_threshold: float = 100e-6
    wakeup_latency: float = 300e-6

    def __post_init__(self) -> None:
        if self.entry_threshold < 0 or self.wakeup_latency < 0:
            raise ValueError("sleep parameters must be non-negative")

"""Energy modelling: DVFS policies, sleep states, power accounting.

The extension layer the paper motivates: TailBench exists so that
techniques like fast DVFS [Rubik, Adrenaline] and deep idle states
[PowerNap] can be evaluated against tail latency. This package
provides those mechanisms in the virtual-time simulator, with a
relative power model, so energy-vs-tail trade-offs are measurable.
"""

from .policies import (
    DeepSleep,
    FrequencyPolicy,
    NoSleep,
    QueueBoost,
    SleepPolicy,
    StaticFrequency,
)
from .power import EnergyAccount, PowerModel
from .server import EnergyResult, simulate_energy

__all__ = [
    "DeepSleep",
    "FrequencyPolicy",
    "NoSleep",
    "QueueBoost",
    "SleepPolicy",
    "StaticFrequency",
    "EnergyAccount",
    "PowerModel",
    "EnergyResult",
    "simulate_energy",
]

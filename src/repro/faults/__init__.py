"""Fault injection: seeded, composable partial-failure plans.

TailBench's methodology measures tails against a healthy server; this
package extends it to the regime real latency-critical systems live in
— partial failure. A :class:`FaultPlan` names what breaks (transport
drops/delays/duplicates, queue stalls, worker pauses/crashes,
application errors); a :class:`FaultInjector` samples it
deterministically from a seed. Both the live harness
(:func:`repro.core.harness.run_harness`) and the virtual-time
simulator (:func:`repro.sim.latency_sim.simulate_load`) accept the
same plan, so fault experiments can be debugged deterministically in
simulation and replayed for-real over threads and TCP. A
:class:`Scenario` sequences timed plan phases (chaos windows — see
:mod:`repro.faults.scenario`) played back by a scheduler thread live
and by engine events in the simulator.
"""

from .injector import FaultInjector, InjectedFault, TransportAction
from .plan import FaultPlan, StallWindow
from .scenario import (
    SCENARIOS,
    FaultPhase,
    Scenario,
    ScenarioDriver,
    ScenarioInjector,
    crash_recover,
    error_burst,
    retry_storm,
    scenario_names,
    slow_replica,
)

__all__ = [
    "FaultInjector",
    "FaultPhase",
    "FaultPlan",
    "InjectedFault",
    "SCENARIOS",
    "Scenario",
    "ScenarioDriver",
    "ScenarioInjector",
    "StallWindow",
    "TransportAction",
    "crash_recover",
    "error_burst",
    "retry_storm",
    "scenario_names",
    "slow_replica",
]

"""Chaos scenarios: timed sequences of fault plans.

A :class:`Scenario` is pure data — a named sequence of
:class:`FaultPhase` windows, each activating a
:class:`~repro.faults.plan.FaultPlan` for ``[start, start+duration)``
relative to run start. The :class:`ScenarioInjector` plays it back by
swapping the active (merged) plan at phase boundaries:

- **live** — a :class:`ScenarioDriver` thread sleeps to each boundary
  and advances the injector on the run's wall clock;
- **sim** — the harness schedules one engine event per boundary, so
  replay is single-threaded and bit-identical per seed.

Both modes call the same :meth:`ScenarioInjector.advance_to`; fault
*decisions* keep flowing through the inherited
:class:`~repro.faults.injector.FaultInjector` streams, so a scenario
run with the same seed makes the same draws as the equivalent
fixed-plan run while any given phase is active.

Built-in scenarios cover the canonical serving pathologies:
:func:`slow_replica`, :func:`crash_recover`, :func:`error_burst`, and
:func:`retry_storm` — the last being the metastable-failure recipe the
``fig-resilience`` experiment demonstrates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .injector import FaultInjector
from .plan import FaultPlan

__all__ = [
    "FaultPhase",
    "Scenario",
    "ScenarioDriver",
    "ScenarioInjector",
    "SCENARIOS",
    "crash_recover",
    "error_burst",
    "retry_storm",
    "scenario_names",
    "slow_replica",
]


@dataclass(frozen=True)
class FaultPhase:
    """One timed activation window of a fault plan."""

    start: float
    duration: float
    plan: FaultPlan
    label: str = ""

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("phase start must be non-negative")
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, offset: float) -> bool:
        return self.start <= offset < self.end


@dataclass(frozen=True)
class Scenario:
    """A named, timed sequence of fault phases (may overlap)."""

    name: str
    phases: Tuple[FaultPhase, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        phases = tuple(
            sorted(self.phases, key=lambda p: (p.start, p.end, p.label))
        )
        if not phases:
            raise ValueError("scenario needs at least one phase")
        object.__setattr__(self, "phases", phases)

    @property
    def horizon(self) -> float:
        """Instant after which no phase is active (all clear)."""
        return max(phase.end for phase in self.phases)

    def boundaries(self) -> Tuple[float, ...]:
        """Every instant the active plan changes, ascending."""
        edges = set()
        for phase in self.phases:
            edges.add(phase.start)
            edges.add(phase.end)
        return tuple(sorted(edges))

    def plan_at(
        self, offset: float, base: Optional[FaultPlan] = None
    ) -> FaultPlan:
        """The merged plan active ``offset`` seconds into the run.

        Active phases compose via :meth:`FaultPlan.merged` (independent
        probabilities, max durations, ``server_ids`` union — ``None``
        meaning all-servers wins a union). ``base`` is a standing plan
        (``config.faults``) the scenario overlays; it is ignored while
        it is a no-op so a phase's replica scoping survives.
        """
        plan: Optional[FaultPlan] = None
        if base is not None and not base.is_noop:
            plan = base
        for phase in self.phases:
            if phase.active_at(offset):
                plan = phase.plan if plan is None else plan.merged(phase.plan)
        return plan if plan is not None else FaultPlan()

    def timeline(self) -> str:
        """One human-readable line per phase (for experiment reports)."""
        lines = []
        for phase in self.phases:
            label = phase.label or "fault"
            scope = (
                f" on servers {list(phase.plan.server_ids)}"
                if phase.plan.server_ids is not None
                else ""
            )
            lines.append(
                f"  {phase.start:6.2f}s - {phase.end:6.2f}s  {label}{scope}"
            )
        lines.append(f"  {self.horizon:6.2f}s -          all clear")
        return "\n".join(lines)


class _ScenarioServerView:
    """Per-replica decision surface that re-checks scope on every call.

    A plain :class:`FaultInjector` scopes replicas once, at build time
    (``for_server`` returns a null view for out-of-scope ids). Under a
    scenario the active plan — and with it the target set — changes at
    phase boundaries, so the view must consult ``injector.plan`` per
    decision. Out-of-scope calls consume no random draws, matching the
    static null view's behavior.
    """

    __slots__ = ("_injector", "_server_id")

    def __init__(self, injector: "ScenarioInjector", server_id: int) -> None:
        self._injector = injector
        self._server_id = server_id

    def queue_stall_remaining(self, now: float) -> float:
        if not self._injector.plan.applies_to(self._server_id):
            return 0.0
        return self._injector.queue_stall_remaining(now)

    def worker_pause(self) -> float:
        if not self._injector.plan.applies_to(self._server_id):
            return 0.0
        return self._injector.worker_pause()

    def worker_crash(self) -> bool:
        if not self._injector.plan.applies_to(self._server_id):
            return False
        return self._injector.worker_crash()

    def app_error(self) -> bool:
        if not self._injector.plan.applies_to(self._server_id):
            return False
        return self._injector.app_error()


class ScenarioInjector(FaultInjector):
    """Fault injector whose plan follows a scenario's timeline.

    The inherited decision surface reads ``self.plan`` per call, so
    swapping the plan at a boundary retargets every subsequent decision
    without touching the per-layer random streams — a phase's draws are
    the same ones the equivalent fixed plan would have made.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        base: Optional[FaultPlan] = None,
    ) -> None:
        self.scenario = scenario
        self.base = base
        super().__init__(scenario.plan_at(0.0, base), seed=seed)
        self._counts["phase_changes"] = 0

    def advance_to(self, offset: float) -> None:
        """Install the plan active at ``offset`` (a phase boundary)."""
        plan = self.scenario.plan_at(offset, self.base)
        with self._lock:
            self.plan = plan
            self._counts["phase_changes"] += 1

    def for_server(self, server_id: int):
        """Dynamic per-replica view (scope re-checked per decision)."""
        return _ScenarioServerView(self, server_id)


class ScenarioDriver:
    """Live playback: advance a :class:`ScenarioInjector` on the wall clock.

    One daemon thread sleeps to each phase boundary (anchored at
    :meth:`start`'s instant) and swaps the active plan. The simulator
    does not use this class — it schedules ``advance_to`` as engine
    events at the same offsets.
    """

    def __init__(self, injector: ScenarioInjector, clock) -> None:
        self._injector = injector
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._run_start = 0.0

    def start(self, run_start: float) -> None:
        if self._thread is not None:
            raise RuntimeError("driver already started")
        self._run_start = run_start
        self._thread = threading.Thread(
            target=self._loop, name="tb-scenario-driver", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        for offset in self._injector.scenario.boundaries():
            delay = (self._run_start + offset) - self._clock.now()
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            self._injector.advance_to(offset)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None


# -- built-in scenarios --------------------------------------------------

def slow_replica(
    server_id: int = 0,
    start: float = 5.0,
    duration: float = 10.0,
    pause: float = 0.2,
    pause_rate: float = 1.0,
) -> Scenario:
    """One replica serves every request ``pause`` seconds late, then heals."""
    return Scenario(
        name="slow_replica",
        phases=(
            FaultPhase(
                start,
                duration,
                FaultPlan(
                    worker_pause_rate=pause_rate,
                    worker_pause=pause,
                    server_ids=(server_id,),
                ),
                label="slow",
            ),
        ),
    )


def crash_recover(
    server_id: int = 0,
    start: float = 5.0,
    duration: float = 2.0,
    crash_rate: float = 1.0,
) -> Scenario:
    """A burst window in which one replica's workers die permanently.

    Worker crashes do not heal when the window closes (lost capacity
    stays lost, as live) — the *recovery* this scenario exercises is
    the serving layer's: routing away from, and never back to, a
    replica that stopped answering.
    """
    return Scenario(
        name="crash_recover",
        phases=(
            FaultPhase(
                start,
                duration,
                FaultPlan(
                    worker_crash_rate=crash_rate, server_ids=(server_id,)
                ),
                label="crash",
            ),
        ),
    )


def error_burst(
    start: float = 5.0,
    duration: float = 5.0,
    error_rate: float = 0.5,
    server_ids: Optional[Tuple[int, ...]] = None,
) -> Scenario:
    """A window of application-level errors (all replicas by default)."""
    return Scenario(
        name="error_burst",
        phases=(
            FaultPhase(
                start,
                duration,
                FaultPlan(error_rate=error_rate, server_ids=server_ids),
                label="errors",
            ),
        ),
    )


def retry_storm(
    server_id: int = 0,
    start: float = 5.0,
    duration: float = 10.0,
    pause: float = 0.3,
) -> Scenario:
    """The metastable-failure recipe: one replica degrades hard.

    During the window the target replica pauses ``pause`` seconds per
    request — far beyond any sane attempt timeout — so an undefended
    client times out on its share of traffic and retries onto the
    healthy replicas. If the retry amplification pushes offered load
    past the survivors' capacity, the overload *outlives the fault*:
    the backlog and the retries it spawns keep the system saturated
    after the window closes. Defenses (ejection + breakers + retry
    budget) bound the amplification and recover within seconds.
    """
    return Scenario(
        name="retry_storm",
        phases=(
            FaultPhase(
                start,
                duration,
                FaultPlan(
                    worker_pause_rate=1.0,
                    worker_pause=pause,
                    server_ids=(server_id,),
                ),
                label="retry_storm",
            ),
        ),
    )


#: Built-in scenario factories by name.
SCENARIOS: Dict[str, object] = {
    "slow_replica": slow_replica,
    "crash_recover": crash_recover,
    "error_burst": error_burst,
    "retry_storm": retry_storm,
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)

"""Seeded fault sampling shared by live runs and simulation.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into concrete per-event
decisions. Each injection layer draws from its own independent random
stream (derived from the injector seed by hashing the layer name), so
enabling one fault class never perturbs the decisions of another —
the property that makes ablation experiments ("same run, drops only")
meaningful.

Decisions are consumed in call order. The discrete-event simulator is
single-threaded, so two simulated runs with the same plan and seed
make byte-identical decisions; live runs are thread-safe and
statistically faithful to the plan's rates.
"""

from __future__ import annotations

import hashlib
import random
import threading
from typing import Dict, NamedTuple

from .plan import FaultPlan

__all__ = ["FaultInjector", "InjectedFault", "TransportAction"]


class _NullServerInjector:
    """Server-side injector view for instances outside a plan's scope.

    Implements the queue/worker/application decision surface only —
    transport faults model the shared wire and are applied before
    routing, so a scoped-out server never sees this object on that
    path.
    """

    def queue_stall_remaining(self, now: float) -> float:
        return 0.0

    def worker_pause(self) -> float:
        return 0.0

    def worker_crash(self) -> bool:
        return False

    def app_error(self) -> bool:
        return False


class InjectedFault(Exception):
    """Raised by the application layer when the plan injects an error."""


class TransportAction(NamedTuple):
    """The transport layer's verdict for one message."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0


_DELIVER = TransportAction()


def _derive_seed(seed: int, layer: str) -> int:
    digest = hashlib.blake2b(
        f"{seed}/{layer}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FaultInjector:
    """Stateful, thread-safe sampler over a :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The faults to inject.
    seed:
        Root seed; per-layer streams are derived from it.
    """

    _LAYERS = ("transport", "worker", "app")

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._rngs = {
            layer: random.Random(_derive_seed(seed, layer))
            for layer in self._LAYERS
        }
        self._lock = threading.Lock()
        self._run_start = 0.0
        self._counts: Dict[str, int] = {
            "drops": 0,
            "delays": 0,
            "duplicates": 0,
            "pauses": 0,
            "crashes": 0,
            "app_errors": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start_run(self, start_time: float) -> None:
        """Anchor stall windows to the run's start instant."""
        self._run_start = start_time

    def for_server(self, server_id: int):
        """Server-side view of this injector for one instance.

        When the plan's ``server_ids`` covers the instance (or targets
        all servers), the injector itself is returned — counts and
        random streams stay shared. Otherwise a null view is returned
        whose server-side decisions always say "no fault", without
        consuming any random draws, so scoping a plan to one replica
        never perturbs the others' decision streams.
        """
        if self.plan.applies_to(server_id):
            return self
        return _NullServerInjector()

    def counts(self) -> Dict[str, int]:
        """Snapshot of how many faults actually fired."""
        with self._lock:
            return dict(self._counts)

    def register_metrics(self, registry) -> None:
        """Expose fired-fault tallies as callback gauges.

        One ``tb_faults_total{kind=...}`` gauge per fault class, read
        lazily at sample time — the injection hot paths are untouched.
        """
        for kind in self._counts:
            registry.gauge(
                "tb_faults_total",
                help="Injected faults fired, by kind",
                fn=(lambda k=kind: self._counts[k]),
                kind=kind,
            )

    # -- transport layer -----------------------------------------------
    def transport_action(self) -> TransportAction:
        plan = self.plan
        if (
            plan.drop_rate == 0.0
            and plan.delay_rate == 0.0
            and plan.duplicate_rate == 0.0
        ):
            return _DELIVER
        with self._lock:
            rng = self._rngs["transport"]
            if plan.drop_rate and rng.random() < plan.drop_rate:
                self._counts["drops"] += 1
                return TransportAction(drop=True)
            duplicate = bool(
                plan.duplicate_rate and rng.random() < plan.duplicate_rate
            )
            extra_delay = 0.0
            if plan.delay_rate and rng.random() < plan.delay_rate:
                extra_delay = plan.delay
                self._counts["delays"] += 1
            if duplicate:
                self._counts["duplicates"] += 1
            return TransportAction(duplicate=duplicate, extra_delay=extra_delay)

    # -- queue layer ---------------------------------------------------
    def queue_stall_remaining(self, now: float) -> float:
        """Seconds of stall left at ``now`` (0.0 when dequeue may run)."""
        offset = now - self._run_start
        for window in self.plan.queue_stalls:
            if window.start <= offset < window.end:
                return window.end - offset
        return 0.0

    # -- worker layer --------------------------------------------------
    def worker_pause(self) -> float:
        """Pause duration to impose before serving (0.0 = none)."""
        plan = self.plan
        if plan.worker_pause_rate == 0.0:
            return 0.0
        with self._lock:
            if self._rngs["worker"].random() < plan.worker_pause_rate:
                self._counts["pauses"] += 1
                return plan.worker_pause
        return 0.0

    def worker_crash(self) -> bool:
        """Whether the worker dies after the request it just finished."""
        plan = self.plan
        if plan.worker_crash_rate == 0.0:
            return False
        with self._lock:
            if self._rngs["worker"].random() < plan.worker_crash_rate:
                self._counts["crashes"] += 1
                return True
        return False

    # -- application layer ---------------------------------------------
    def app_error(self) -> bool:
        """Whether to raise :class:`InjectedFault` instead of serving."""
        plan = self.plan
        if plan.error_rate == 0.0:
            return False
        with self._lock:
            if self._rngs["app"].random() < plan.error_rate:
                self._counts["app_errors"] += 1
                return True
        return False

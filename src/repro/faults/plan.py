"""Declarative fault plans.

A :class:`FaultPlan` describes *what* can go wrong during a run, one
knob per injection point of the harness architecture (Fig. 1):

- **transport** — message drop, extra in-flight delay, duplication;
- **queue** — stall windows during which no worker dequeues;
- **worker** — GC-style pauses and permanent crashes;
- **application** — an injected exception rate.

Plans are pure data: frozen, hashable, serializable, and composable
via :meth:`FaultPlan.merged`. The *how* (seeded sampling, counters)
lives in :class:`repro.faults.injector.FaultInjector`, so the same
plan drives both the live harness (threads/TCP) and the discrete-event
simulator deterministically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["FaultPlan", "StallWindow"]


@dataclass(frozen=True)
class StallWindow:
    """One queue-stall interval, relative to run start (seconds).

    While a stall window is open no worker dequeues a request — the
    queue keeps accepting arrivals, modelling a wedged dispatch path
    (lock convoy, kernel hiccup, stop-the-world collection on the
    dispatcher).
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("stall start must be non-negative")
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


def _normalize_stalls(stalls) -> Tuple[StallWindow, ...]:
    out = []
    for s in stalls:
        if isinstance(s, StallWindow):
            out.append(s)
        else:
            start, duration = s
            out.append(StallWindow(float(start), float(duration)))
    return tuple(sorted(out, key=lambda w: w.start))


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and how often.

    All ``*_rate`` fields are per-event probabilities in ``[0, 1]``:
    ``drop_rate``/``delay_rate``/``duplicate_rate`` apply per message,
    ``worker_pause_rate``/``worker_crash_rate``/``error_rate`` apply
    per request served.

    Attributes
    ----------
    drop_rate:
        Probability a request message is lost in the transport (the
        server never sees it; only a client deadline recovers it).
    delay_rate / delay:
        Probability a message is held an extra ``delay`` seconds in
        flight (congestion / retransmission stand-in).
    duplicate_rate:
        Probability a message is delivered twice. The duplicate loads
        the server but its response is discarded client-side.
    queue_stalls:
        :class:`StallWindow` sequence (or ``(start, duration)`` pairs)
        during which dequeue is frozen.
    worker_pause_rate / worker_pause:
        Probability a worker pauses ``worker_pause`` seconds before
        serving a request (GC/compaction-style stall inside the
        service window).
    worker_crash_rate:
        Probability a worker thread dies after completing a request,
        permanently reducing capacity.
    error_rate:
        Probability the application layer raises on a request.
    server_ids:
        Server instances the *server-side* faults (queue stalls,
        worker pauses/crashes, application errors) apply to in a
        multi-server topology. ``None`` (default) targets every
        instance; a tuple of indices scopes the blast radius to those
        replicas only — e.g. one degraded replica behind a balancer.
        Transport faults model the shared wire and are never scoped.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay: float = 0.0
    duplicate_rate: float = 0.0
    queue_stalls: Tuple[StallWindow, ...] = ()
    worker_pause_rate: float = 0.0
    worker_pause: float = 0.0
    worker_crash_rate: float = 0.0
    error_rate: float = 0.0
    server_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        for name in (
            "drop_rate", "delay_rate", "duplicate_rate",
            "worker_pause_rate", "worker_crash_rate", "error_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay < 0 or self.worker_pause < 0:
            raise ValueError("delay durations must be non-negative")
        if self.delay_rate > 0 and self.delay == 0:
            raise ValueError("delay_rate set but delay is zero")
        if self.worker_pause_rate > 0 and self.worker_pause == 0:
            raise ValueError("worker_pause_rate set but worker_pause is zero")
        object.__setattr__(
            self, "queue_stalls", _normalize_stalls(self.queue_stalls)
        )
        if self.server_ids is not None:
            ids = tuple(sorted(set(int(i) for i in self.server_ids)))
            if not ids:
                raise ValueError("server_ids must be non-empty (or None)")
            if ids[0] < 0:
                raise ValueError("server_ids must be non-negative")
            object.__setattr__(self, "server_ids", ids)

    def applies_to(self, server_id: int) -> bool:
        """Whether server-side faults target the given instance."""
        return self.server_ids is None or server_id in self.server_ids

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing."""
        return (
            self.drop_rate == 0.0
            and self.delay_rate == 0.0
            and self.duplicate_rate == 0.0
            and not self.queue_stalls
            and self.worker_pause_rate == 0.0
            and self.worker_crash_rate == 0.0
            and self.error_rate == 0.0
        )

    def replace(self, **changes) -> "FaultPlan":
        return dataclasses.replace(self, **changes)

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans into one.

        Probabilities combine as independent events
        (``1 - (1-a)(1-b)``), durations take the maximum, and stall
        windows are concatenated.
        """

        def either(a: float, b: float) -> float:
            return 1.0 - (1.0 - a) * (1.0 - b)

        if self.server_ids is None or other.server_ids is None:
            merged_ids = None  # either side targets all servers
        else:
            merged_ids = tuple(sorted(set(self.server_ids) | set(other.server_ids)))
        return FaultPlan(
            server_ids=merged_ids,
            drop_rate=either(self.drop_rate, other.drop_rate),
            delay_rate=either(self.delay_rate, other.delay_rate),
            delay=max(self.delay, other.delay),
            duplicate_rate=either(self.duplicate_rate, other.duplicate_rate),
            queue_stalls=self.queue_stalls + other.queue_stalls,
            worker_pause_rate=either(
                self.worker_pause_rate, other.worker_pause_rate
            ),
            worker_pause=max(self.worker_pause, other.worker_pause),
            worker_crash_rate=either(
                self.worker_crash_rate, other.worker_crash_rate
            ),
            error_rate=either(self.error_rate, other.error_rate),
        )

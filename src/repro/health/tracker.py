"""Replica health tracking, outlier ejection, and health-aware routing.

The :class:`HealthManager` is the one stateful object of the health
layer. It is fed from the transport completion hook (live) and the
topology sink (sim) with one call per attempt outcome —
:meth:`HealthManager.record_attempt` — and consulted once per routing
decision — :meth:`HealthManager.route` — to shrink the balancer's
candidate set to the healthy replicas.

Per replica it maintains:

- an EWMA of attempt latency (successful responses only — a slow
  replica's *successes* carry the slowness signal; failures carry
  theirs through the failure EWMA);
- an EWMA of failure rate (errors, sheds, and attempt timeouts);
- an ejection flag with probation bookkeeping (1-in-N probes while
  ejected, readmission after K consecutive probe successes);
- a :class:`~repro.health.breaker.CircuitBreaker`.

Plus one global :class:`~repro.health.breaker.RetryBudget` the
resilient client consults before scheduling any retry.

Everything is RNG-free and clocked by caller-passed timestamps, so the
single-threaded simulator replays the identical ejection/breaker event
sequence per seed; live callers are serialized by one internal lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .breaker import CircuitBreaker, RetryBudget
from .config import HealthConfig

__all__ = ["HealthManager", "HealthView", "ReplicaHealthView"]


class _ReplicaState:
    """Mutable health record of one replica (lock-guarded by the manager)."""

    __slots__ = ("server_id", "samples", "failure_ewma", "latency_ewma",
                 "ejected", "probe_successes", "skipped", "breaker")

    def __init__(self, server_id: int,
                 breaker: Optional[CircuitBreaker]) -> None:
        self.server_id = server_id
        self.samples = 0
        self.failure_ewma = 0.0
        self.latency_ewma: Optional[float] = None
        self.ejected = False
        self.probe_successes = 0
        #: Routing decisions skipped since the last probe while ejected.
        self.skipped = 0
        self.breaker = breaker


@dataclass(frozen=True)
class ReplicaHealthView:
    """Read-only snapshot of one replica's health record."""

    server_id: int
    samples: int
    failure_ewma: float
    latency_ewma: Optional[float]
    ejected: bool
    breaker_state: str
    probe_successes: int

    @property
    def healthy(self) -> bool:
        return not self.ejected and self.breaker_state != "open"


@dataclass(frozen=True)
class HealthView:
    """Point-in-time snapshot the balancer (and tests) consult."""

    replicas: Tuple[ReplicaHealthView, ...]
    retry_tokens: Optional[float]

    def replica(self, server_id: int) -> Optional[ReplicaHealthView]:
        for view in self.replicas:
            if view.server_id == server_id:
                return view
        return None

    def healthy_ids(self, active_ids: Sequence[int]) -> List[int]:
        """Active replicas currently routable (never empty when
        ``active_ids`` is non-empty: falls back to the full set)."""
        by_id = {view.server_id: view for view in self.replicas}
        healthy = [
            server_id for server_id in active_ids
            if server_id not in by_id or by_id[server_id].healthy
        ]
        return healthy if healthy else list(active_ids)


class HealthManager:
    """Failure-aware serving state shared by routing and completion paths.

    Parameters
    ----------
    config:
        The run's :class:`~repro.health.config.HealthConfig` (must be
        enabled — disabled runs construct no manager at all).
    tracer:
        Optional :class:`repro.obs.Tracer`; ejection, readmission,
        probe, breaker, and budget-exhausted events are emitted with
        the replica id and the caller's timestamp.
    """

    def __init__(self, config: HealthConfig, tracer=None) -> None:
        if not config.enabled:
            raise ValueError("HealthManager requires an enabled HealthConfig")
        self.config = config
        self._tracer = tracer
        self._lock = threading.Lock()
        self._states: Dict[int, _ReplicaState] = {}
        self._budget = (
            RetryBudget(
                config.retry_budget_ratio,
                config.retry_budget_reserve,
                config.retry_budget_cap,
            )
            if config.retry_budget
            else None
        )
        self._counts: Dict[str, int] = {
            "ejections": 0,
            "readmissions": 0,
            "probes": 0,
            "breaker_opens": 0,
            "breaker_half_opens": 0,
            "breaker_closes": 0,
        }

    # -- state access --------------------------------------------------
    def _state_locked(self, server_id: int) -> _ReplicaState:
        state = self._states.get(server_id)
        if state is None:
            breaker = (
                CircuitBreaker(
                    self.config.breaker_failures,
                    self.config.breaker_reset_after,
                )
                if self.config.breaker
                else None
            )
            state = _ReplicaState(server_id, breaker)
            self._states[server_id] = state
        return state

    def _emit(self, kind: str, now: float, server_id: Optional[int] = None,
              value: Optional[float] = None) -> None:
        if self._tracer is not None:
            self._tracer.emit(kind, now, server_id=server_id, value=value)

    # -- routing path --------------------------------------------------
    def route(
        self, active_ids: Sequence[int], now: float
    ) -> Tuple[List[int], bool]:
        """Filter the active set down to routable replicas.

        Returns ``(candidates, forced)``. ``forced`` is True when the
        single candidate is a probation probe (to an ejected replica)
        or a half-open breaker trial — the caller must route there
        directly instead of consulting the balancer. When every replica
        is unhealthy the *full* active set comes back (fail open,
        matching ``pick_active``'s degrade-gracefully contract): routing
        somewhere beats raising in a storm.
        """
        with self._lock:
            available: List[int] = []
            probe_id: Optional[int] = None
            for server_id in active_ids:
                state = self._state_locked(server_id)
                if state.ejected:
                    state.skipped += 1
                    if (
                        probe_id is None
                        and state.skipped >= self.config.probe_interval
                    ):
                        state.skipped = 0
                        probe_id = server_id
                    continue
                breaker = state.breaker
                if breaker is not None and breaker.state != "closed":
                    was_open = breaker.state == "open"
                    if breaker.allows(now):
                        if was_open:
                            self._counts["breaker_half_opens"] += 1
                            self._emit("breaker_half_open", now,
                                       server_id=server_id)
                        if probe_id is None:
                            probe_id = server_id
                        else:
                            # Another replica won this round's probe
                            # slot; release the trial for a later pick.
                            breaker.trial_inflight = False
                    continue
                available.append(server_id)
            if probe_id is not None:
                self._counts["probes"] += 1
                self._emit("probe", now, server_id=probe_id)
                return [probe_id], True
            if not available:
                return list(active_ids), False
            return available, False

    # -- completion path -----------------------------------------------
    def record_attempt(
        self,
        server_id: int,
        latency: Optional[float],
        ok: bool,
        now: float,
    ) -> None:
        """Feed one attempt outcome (response, shed, error, or timeout).

        ``latency`` is the attempt's send-to-response time for
        successful responses and ``None`` otherwise (a timed-out
        attempt has no response instant to measure against).
        """
        config = self.config
        with self._lock:
            state = self._state_locked(server_id)
            state.samples += 1
            alpha = config.ewma_alpha
            fail = 0.0 if ok else 1.0
            if state.samples == 1:
                state.failure_ewma = fail
            else:
                state.failure_ewma = (
                    alpha * fail + (1.0 - alpha) * state.failure_ewma
                )
            if ok and latency is not None:
                if state.latency_ewma is None:
                    state.latency_ewma = latency
                else:
                    state.latency_ewma = (
                        alpha * latency + (1.0 - alpha) * state.latency_ewma
                    )
            breaker = state.breaker
            if breaker is not None:
                transition = breaker.record(ok, now)
                if transition in ("open", "reopen"):
                    self._counts["breaker_opens"] += 1
                    self._emit("breaker_open", now, server_id=server_id,
                               value=float(breaker.consecutive))
                elif transition == "close":
                    self._counts["breaker_closes"] += 1
                    self._emit("breaker_close", now, server_id=server_id)
            if state.ejected:
                if ok:
                    state.probe_successes += 1
                    if state.probe_successes >= config.readmit_successes:
                        self._readmit_locked(state, now)
                else:
                    state.probe_successes = 0
            elif (
                config.ejection
                and state.samples >= config.min_samples
                and self._is_outlier_locked(state)
                and self._can_eject_locked()
            ):
                self._eject_locked(state, now)

    def _is_outlier_locked(self, state: _ReplicaState) -> bool:
        config = self.config
        if state.failure_ewma >= config.failure_rate_threshold:
            return True
        if config.latency_factor is None or state.latency_ewma is None:
            return False
        peers = sorted(
            other.latency_ewma
            for other in self._states.values()
            if other is not state
            and not other.ejected
            and other.latency_ewma is not None
            and other.samples >= config.min_samples
        )
        if not peers:
            return False
        median = peers[len(peers) // 2]
        return median > 0.0 and state.latency_ewma > (
            config.latency_factor * median
        )

    def _can_eject_locked(self) -> bool:
        ejected = sum(1 for s in self._states.values() if s.ejected)
        return (ejected + 1) <= (
            self.config.max_ejected_fraction * len(self._states)
        )

    def _eject_locked(self, state: _ReplicaState, now: float) -> None:
        state.ejected = True
        state.probe_successes = 0
        state.skipped = 0
        self._counts["ejections"] += 1
        self._emit("eject", now, server_id=state.server_id,
                   value=state.failure_ewma)

    def _readmit_locked(self, state: _ReplicaState, now: float) -> None:
        # Probation proved K consecutive successes: start the replica's
        # statistics (and breaker) from a clean slate so the stale fault
        # window cannot immediately re-eject it.
        state.ejected = False
        state.samples = 0
        state.failure_ewma = 0.0
        state.latency_ewma = None
        state.probe_successes = 0
        state.skipped = 0
        if state.breaker is not None:
            state.breaker.state = "closed"
            state.breaker.consecutive = 0
            state.breaker.trial_inflight = False
        self._counts["readmissions"] += 1
        self._emit("readmit", now, server_id=state.server_id)

    # -- retry budget ---------------------------------------------------
    def on_first_attempt(self) -> None:
        """Credit the retry budget for one first attempt."""
        if self._budget is None:
            return
        with self._lock:
            self._budget.deposit()

    def try_spend_retry(self, now: float) -> bool:
        """Whether a retry may be sent; False = budget exhausted."""
        if self._budget is None:
            return True
        with self._lock:
            allowed = self._budget.try_spend()
            if not allowed:
                self._emit("budget_exhausted", now,
                           value=self._budget.tokens)
        return allowed

    # -- inspection ------------------------------------------------------
    def view(self) -> HealthView:
        """Immutable snapshot of every replica's health record."""
        with self._lock:
            replicas = tuple(
                ReplicaHealthView(
                    server_id=state.server_id,
                    samples=state.samples,
                    failure_ewma=state.failure_ewma,
                    latency_ewma=state.latency_ewma,
                    ejected=state.ejected,
                    breaker_state=(
                        state.breaker.state
                        if state.breaker is not None
                        else "closed"
                    ),
                    probe_successes=state.probe_successes,
                )
                for _, state in sorted(self._states.items())
            )
            tokens = (
                self._budget.tokens if self._budget is not None else None
            )
        return HealthView(replicas=replicas, retry_tokens=tokens)

    def counts(self) -> Dict[str, int]:
        """Lifetime tallies of health-layer actions."""
        with self._lock:
            out = dict(self._counts)
            if self._budget is not None:
                out["retries_budgeted"] = self._budget.spent
                out["retries_denied"] = self._budget.denied
        return out

    def register_metrics(self, registry) -> None:
        """Expose tallies and budget level as callback gauges."""
        for kind in ("ejections", "readmissions", "probes", "breaker_opens",
                     "breaker_half_opens", "breaker_closes"):
            registry.gauge(
                "tb_health_events_total",
                help="Health-layer actions taken, by kind",
                fn=(lambda k=kind: self._counts[k]),
                kind=kind,
            )
        if self._budget is not None:
            budget = self._budget
            registry.gauge(
                "tb_retry_budget_tokens",
                help="Retry-budget tokens currently available",
                fn=(lambda b=budget: b.tokens),
            )
            registry.gauge(
                "tb_health_events_total",
                help="Health-layer actions taken, by kind",
                fn=(lambda b=budget: b.denied),
                kind="retries_denied",
            )

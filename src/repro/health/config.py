"""Failure-aware serving policy knobs.

:class:`HealthConfig` collects every knob of the health layer —
replica health tracking, outlier ejection with probation, per-replica
circuit breakers, and the global retry budget — on one frozen
dataclass attached to ``HarnessConfig``/``SimConfig``. The default
(:data:`NO_HEALTH`) is fully disabled: the harness then constructs no
:class:`~repro.health.tracker.HealthManager` at all, so the hot paths
keep their single ``is None`` test and disabled runs stay bit-identical
to a build without this package.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

__all__ = ["HealthConfig", "NO_HEALTH"]


@dataclass(frozen=True)
class HealthConfig:
    """Failure-aware serving policy for one run.

    Attributes
    ----------
    enabled:
        Master switch. Off (the default) constructs nothing.
    ewma_alpha:
        Smoothing factor of the per-replica EWMAs (attempt latency and
        failure rate). Higher reacts faster; 0.2 weights the last ~10
        attempts.
    ejection:
        Enable outlier ejection (skip unhealthy replicas at routing
        time). Requires ``enabled``.
    min_samples:
        Attempts a replica must have absorbed before it can be judged
        an outlier — protects cold replicas from one bad first sample.
    failure_rate_threshold:
        Eject when the failure-rate EWMA (errors + sheds + attempt
        timeouts over attempts) reaches this level.
    latency_factor:
        Eject when the replica's latency EWMA exceeds this multiple of
        the median latency EWMA of its healthy peers (requires at least
        one peer with ``min_samples``). ``None`` disables the latency
        criterion, leaving failure-rate ejection only.
    max_ejected_fraction:
        Never eject beyond this fraction of the known replica set —
        mass ejection under a global fault would otherwise concentrate
        all load on one survivor.
    probe_interval:
        Probation: every ``probe_interval``-th routing decision sends a
        probe to an ejected replica instead of skipping it.
    readmit_successes:
        Consecutive successful probes required to readmit an ejected
        replica (one failure restarts the count).
    breaker:
        Enable the per-replica circuit breaker. Requires ``enabled``.
    breaker_failures:
        Consecutive failures that trip a closed breaker open.
    breaker_reset_after:
        Seconds an open breaker waits before half-open (one trial
        request; success closes it, failure re-opens).
    retry_budget:
        Enable the global token-bucket retry budget. Requires
        ``enabled``.
    retry_budget_ratio:
        Tokens deposited per first attempt; each retry withdraws 1.0.
        0.1 caps steady-state retry amplification at ~1.1x — the known
        cure for retry storms.
    retry_budget_reserve:
        Initial tokens (and the bucket's floor capacity), so
        low-traffic clients can still retry isolated failures.
    retry_budget_cap:
        Bucket ceiling; bounds the burst of retries a long healthy
        period can bank.
    """

    enabled: bool = False
    ewma_alpha: float = 0.2
    ejection: bool = True
    min_samples: int = 10
    failure_rate_threshold: float = 0.5
    latency_factor: Optional[float] = None
    max_ejected_fraction: float = 0.5
    probe_interval: int = 20
    readmit_successes: int = 3
    breaker: bool = True
    breaker_failures: int = 5
    breaker_reset_after: float = 1.0
    retry_budget: bool = True
    retry_budget_ratio: float = 0.1
    retry_budget_reserve: float = 10.0
    retry_budget_cap: float = 100.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ValueError("failure_rate_threshold must be in (0, 1]")
        if self.latency_factor is not None and self.latency_factor <= 1.0:
            raise ValueError("latency_factor must be > 1 (or None)")
        if not 0.0 <= self.max_ejected_fraction < 1.0:
            raise ValueError("max_ejected_fraction must be in [0, 1)")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.readmit_successes < 1:
            raise ValueError("readmit_successes must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_reset_after <= 0:
            raise ValueError("breaker_reset_after must be positive")
        if not 0.0 < self.retry_budget_ratio <= 1.0:
            raise ValueError("retry_budget_ratio must be in (0, 1]")
        if self.retry_budget_reserve < 0:
            raise ValueError("retry_budget_reserve must be >= 0")
        if self.retry_budget_cap < self.retry_budget_reserve:
            raise ValueError("retry_budget_cap must be >= reserve")

    def replace(self, **changes) -> "HealthConfig":
        return dataclasses.replace(self, **changes)


#: Default: the health layer entirely off (hot paths stay bare).
NO_HEALTH = HealthConfig()

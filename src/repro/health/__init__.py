"""Failure-aware serving: replica health, ejection, breakers, budgets.

TailBench measures tails against healthy replicas; this package adds
the serving-side defenses production systems rely on when replicas are
*not* healthy — and that the ``fig-resilience`` experiment shows are
what separates a transient fault from a metastable failure:

- per-replica health tracking (EWMA latency + failure rate) fed from
  the completion path (:class:`HealthManager.record_attempt`);
- outlier ejection with probation-based readmission, consulted at
  routing time (:meth:`HealthManager.route`);
- per-replica circuit breakers (:class:`CircuitBreaker`);
- a global token-bucket retry budget (:class:`RetryBudget`) bounding
  retry amplification.

Everything hangs off one :class:`HealthConfig` attached to
``HarnessConfig``/``SimConfig``; the default (:data:`NO_HEALTH`) is
fully disabled and constructs nothing, keeping disabled runs
bit-identical per seed. The same manager runs live (wall clock,
transport hook) and in the simulator (virtual clock, engine events).
"""

from .breaker import CircuitBreaker, RetryBudget
from .config import NO_HEALTH, HealthConfig
from .tracker import HealthManager, HealthView, ReplicaHealthView

__all__ = [
    "CircuitBreaker",
    "HealthConfig",
    "HealthManager",
    "HealthView",
    "NO_HEALTH",
    "ReplicaHealthView",
    "RetryBudget",
]

"""Circuit breaker and retry budget: the client-side storm dampers.

Both primitives are deliberately RNG-free and clocked only by the
timestamps their callers pass in, so the discrete-event simulator and
the live harness drive the identical state machines — the simulator
just feeds virtual instants. Neither takes a lock of its own: the
:class:`~repro.health.tracker.HealthManager` serializes access.

**CircuitBreaker** [Nygard, "Release It!"] guards one replica:

- ``closed`` — requests flow; consecutive failures are counted.
- ``open`` — tripped after ``breaker_failures`` consecutive failures;
  the replica is skipped at routing time until ``breaker_reset_after``
  seconds elapse.
- ``half_open`` — one trial request is let through; success closes the
  breaker, failure re-opens it (and restarts the reset clock).

**RetryBudget** is the global token bucket that makes retry storms
structurally impossible [Finagle's ``RetryBudget``; SRE workbook]:
each *first* attempt deposits ``ratio`` tokens, each retry withdraws
one, so sustained retry load can never exceed ``ratio`` times the
offered rate no matter how many individual requests are failing.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker", "RetryBudget"]


class CircuitBreaker:
    """Per-replica closed/open/half-open breaker on consecutive failures."""

    __slots__ = ("failures", "reset_after", "state", "consecutive",
                 "opened_at", "trial_inflight")

    def __init__(self, failures: int, reset_after: float) -> None:
        if failures < 1:
            raise ValueError("failures must be >= 1")
        if reset_after <= 0:
            raise ValueError("reset_after must be positive")
        self.failures = failures
        self.reset_after = reset_after
        self.state = "closed"
        self.consecutive = 0
        self.opened_at = 0.0
        #: A half-open breaker admits exactly one trial at a time.
        self.trial_inflight = False

    def allows(self, now: float) -> bool:
        """Whether a request may be routed to this replica at ``now``.

        Transitions ``open`` -> ``half_open`` once the reset window has
        elapsed; in ``half_open`` only the single trial slot is granted
        (the caller must send the request when this returns True).
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at < self.reset_after:
                return False
            self.state = "half_open"
            self.trial_inflight = False
        if self.trial_inflight:
            return False
        self.trial_inflight = True
        return True

    @property
    def half_opened(self) -> bool:
        """True when the last :meth:`allows` call granted the trial slot."""
        return self.state == "half_open" and self.trial_inflight

    def record(self, ok: bool, now: float) -> str:
        """Feed one attempt outcome; returns the transition made.

        Transitions: ``"open"`` (tripped), ``"close"`` (trial
        succeeded), ``"reopen"`` (trial failed), or ``""`` (none).
        """
        if self.state == "half_open":
            self.trial_inflight = False
            if ok:
                self.state = "closed"
                self.consecutive = 0
                return "close"
            self.state = "open"
            self.opened_at = now
            return "reopen"
        if ok:
            self.consecutive = 0
            return ""
        self.consecutive += 1
        if self.state == "closed" and self.consecutive >= self.failures:
            self.state = "open"
            self.opened_at = now
            return "open"
        return ""


class RetryBudget:
    """Global token bucket bounding retry amplification.

    Tokens are deposited by first attempts (``ratio`` each) and
    withdrawn by retries (1.0 each); the bucket starts at ``reserve``
    and is clamped to ``[0, cap]``. With ``ratio=0.1`` the sustained
    retry rate can never exceed 10% of the first-attempt rate.
    """

    __slots__ = ("ratio", "cap", "tokens", "deposited", "spent", "denied")

    def __init__(self, ratio: float, reserve: float, cap: float) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if reserve < 0 or cap < reserve:
            raise ValueError("need 0 <= reserve <= cap")
        self.ratio = ratio
        self.cap = cap
        self.tokens = reserve
        self.deposited = 0
        self.spent = 0
        self.denied = 0

    def deposit(self) -> None:
        """Credit one first attempt."""
        self.deposited += 1
        if self.tokens < self.cap:
            self.tokens = min(self.tokens + self.ratio, self.cap)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False when the budget is exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False
